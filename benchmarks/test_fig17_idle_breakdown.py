"""Figure 17: breakdown of T_idle by bucket — frequency and period.

Paper's claims: MSPS workloads idle *often* (≈70% of gaps) but briefly,
while FIU/MSRC idle in a minority of gaps (31%/26%); yet in *period*
terms idle dominates everywhere (87-99.8% of total inter-arrival time),
and in FIU/MSRC most idle time sits in the >100 ms bucket.
"""

from __future__ import annotations

from repro.experiments import fig17_idle_breakdown, format_table
from repro.workloads import ALL_WORKLOADS


def test_fig17_idle_breakdown(benchmark, show):
    result = benchmark.pedantic(
        fig17_idle_breakdown,
        kwargs={"workloads": ALL_WORKLOADS, "n_requests": 2000},
        rounds=1,
        iterations=1,
    )
    show(format_table(result.rows(), "Figure 17: T_idle breakdown"))
    freq = result.category_idle_frequency()
    period = result.category_idle_period()
    show(format_table([
        {"category": c, "idle_freq%": round(freq[c] * 100, 1), "idle_period%": round(period[c] * 100, 1)}
        for c in freq
    ]))

    # MSPS idles most often by count.
    assert freq["MSPS"] > freq["FIU"]
    assert freq["MSPS"] > freq["MSRC"]
    # Idle dominates duration in every family (paper: 87-99.8%).
    for category in ("MSPS", "FIU", "MSRC"):
        assert period[category] > 0.8, category
    # FIU/MSRC: the long bucket holds most of the idle *period*.
    for name in ("ikki", "wdev", "rsrch"):
        b = result.breakdowns[name]
        assert b.period[">100ms"] > 0.5, name
