"""Diff a fresh benchmark run against a committed ``BENCH_*.json``.

The committed benchmark files record one point in time; this tool turns
a fresh run plus the committed baseline into a readable per-stage trend
table and a CI verdict:

- **speedup stages** (``stages``: before/after engine pairs) compare
  machine-independent speedup ratios;
- **absolute pipeline stages** (``pipeline``) are normalised by the
  calibration workload's ratio between the two runs, so the comparison
  survives machine changes;
- **parse benchmarks** (``kind: "parse"``: ``dialects`` / ``store``)
  compare dialect speedups, which are machine-independent.

Both benchmark files share one versioned document schema (``kind``
selects the comparison; version-1 files without the stamp are sniffed
by shape), and stages present in only one document are reported but
never fatal — the committed baseline lags the code by one
regeneration, so stages appear and disappear legitimately.

``--history`` renders the trend table of an append-only
``BENCH_history.jsonl`` instead: one benchmark run per line (written
by the drivers' ``--history`` flag), per-stage speedups over commits.

Exit status is non-zero when any stage regresses by more than
``--tolerance`` (default 1.5x) — the CI ``perf`` job gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick --out fresh.json
    python benchmarks/compare.py fresh.json BENCH_pipeline.json
    python benchmarks/compare.py fresh_parse.json BENCH_parse.json
    python benchmarks/compare.py --history BENCH_history.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE))
try:  # editable install or PYTHONPATH=src both work; fall back to the tree
    import repro  # noqa: F401
except ModuleNotFoundError:
    sys.path.insert(0, str(_HERE.parent / "src"))

from bench_pipeline import check_regressions  # noqa: E402


def _fmt_ratio(ratio: float) -> str:
    """Human trend marker: >1 improved, <1 regressed."""
    if ratio >= 1.05:
        return f"{ratio:5.2f}x better"
    if ratio <= 0.95:
        return f"{ratio:5.2f}x worse"
    return f"{ratio:5.2f}x ~flat"


def trend_table_pipeline(fresh: dict, baseline: dict) -> list[str]:
    """Per-stage trend lines for the ``bench_pipeline`` schema."""
    lines = ["stage trends (baseline -> fresh):"]
    for name, base in baseline.get("stages", {}).items():
        now = fresh.get("stages", {}).get(name)
        if now is None:
            lines.append(f"  {name:>28}: retired since the baseline (skipped)")
            continue
        ratio = now["speedup"] / base["speedup"] if base["speedup"] else float("inf")
        lines.append(
            f"  {name:>28}: speedup {base['speedup']:6.2f}x -> {now['speedup']:6.2f}x  "
            f"({_fmt_ratio(ratio)})"
        )
    for name in fresh.get("stages", {}):
        if name not in baseline.get("stages", {}):
            lines.append(f"  {name:>28}: NEW stage (fresh speedup "
                         f"{fresh['stages'][name]['speedup']}x)")
    scale = fresh["calibration_s"] / baseline["calibration_s"]
    lines.append(f"  machine scale (fresh/baseline calibration): {scale:.2f}")
    for name, base_s in baseline.get("pipeline", {}).items():
        now_s = fresh.get("pipeline", {}).get(name)
        if now_s is None:
            lines.append(f"  {name:>28}: retired since the baseline (skipped)")
            continue
        ratio = (base_s * scale) / now_s if now_s else float("inf")
        lines.append(
            f"  {name:>28}: {base_s * 1e3:8.1f} ms -> {now_s * 1e3:8.1f} ms  "
            f"({_fmt_ratio(ratio)}, machine-normalised)"
        )
    return lines


def trend_table_parse(
    fresh: dict, baseline: dict, tolerance: float = 1.5
) -> tuple[list[str], list[str]]:
    """Trend lines + regression problems for the ``bench_parse`` schema."""
    lines = ["dialect trends (baseline -> fresh):"]
    problems: list[str] = []
    return _parse_trends(fresh, baseline, lines, problems, tolerance)


def _parse_trends(
    fresh: dict, baseline: dict, lines: list[str], problems: list[str],
    tolerance: float = 1.5,
) -> tuple[list[str], list[str]]:
    for dialect, base in baseline.get("dialects", {}).items():
        now = fresh.get("dialects", {}).get(dialect)
        if now is None:
            lines.append(f"  {dialect:>10}: retired since the baseline (skipped)")
            continue
        ratio = now["speedup"] / base["speedup"] if base["speedup"] else float("inf")
        lines.append(
            f"  {dialect:>10}: speedup {base['speedup']:6.2f}x -> {now['speedup']:6.2f}x  "
            f"({_fmt_ratio(ratio)})"
        )
        if now["speedup"] * tolerance < base["speedup"]:
            problems.append(
                f"{dialect}: speedup {now['speedup']}x is >{tolerance}x below "
                f"baseline {base['speedup']}x"
            )
    return lines, problems


def history_table(runs: list[dict], kind: str | None = None) -> list[str]:
    """Per-stage speedup trajectory across an append-only history.

    One section per ``kind`` present (optionally filtered), one line
    per stage, oldest run first: ``stage: 2.74 -> 3.10 -> 4.05`` with
    the commit/date range in the section header.  Stages that appear or
    disappear along the way simply have shorter series.
    """
    lines: list[str] = []
    kinds = [kind] if kind else sorted({run.get("kind", "pipeline") for run in runs})
    for section in kinds:
        selected = [run for run in runs if run.get("kind", "pipeline") == section]
        if not selected:
            lines.append(f"no {section!r} runs in history")
            continue
        first, last = selected[0], selected[-1]
        lines.append(
            f"{section} history: {len(selected)} run(s), "
            f"{first.get('commit', '?')} ({first.get('date', '?')}) -> "
            f"{last.get('commit', '?')} ({last.get('date', '?')})"
        )
        stages: list[str] = []
        for run in selected:
            for name in run["speedups"]:
                if name not in stages:
                    stages.append(name)
        for name in stages:
            series = [run["speedups"].get(name) for run in selected]
            shown = " -> ".join("     -" if v is None else f"{v:6.2f}x" for v in series)
            lines.append(f"  {name:>28}: {shown}")
    return lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: trend table to stdout, non-zero exit on regression."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="?", default=None, help="freshly measured benchmark JSON")
    parser.add_argument("baseline", nargs="?", default=None, help="committed BENCH_*.json baseline")
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="allowed regression factor (default 1.5)",
    )
    parser.add_argument(
        "--history", type=str, default=None,
        help="render the trend table of a BENCH_history.jsonl instead of diffing two files",
    )
    parser.add_argument(
        "--kind", choices=("pipeline", "parse"), default=None,
        help="with --history: restrict the trend table to one benchmark kind",
    )
    args = parser.parse_args(argv)
    if args.history:
        from history import load_history

        runs = load_history(args.history)
        if not runs:
            print(f"no usable runs in {args.history}", file=sys.stderr)
            return 1
        for line in history_table(runs, kind=args.kind):
            print(line)
        return 0
    if not args.fresh or not args.baseline:
        parser.error("fresh and baseline JSON files are required (or use --history)")
    fresh = json.loads(Path(args.fresh).read_text(encoding="utf-8"))
    baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))

    kind = baseline.get("kind", "parse" if "dialects" in baseline else "pipeline")
    if kind == "parse":
        lines, problems = trend_table_parse(fresh, baseline, args.tolerance)
    else:
        lines = trend_table_pipeline(fresh, baseline)
        problems = check_regressions(fresh, baseline, args.tolerance)
    for line in lines:
        print(line)
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    print(f"no regressions vs {args.baseline} (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
