"""Figure 9: spline vs pchip interpolation of discrete CDFs.

Paper's claim: natural cubic splines oscillate and over/undershoot on
steep CDF knots, whereas pchip preserves shape — which is why the
steepness analysis interpolates with pchip.
"""

from __future__ import annotations

from repro.experiments import fig9_interpolation, format_table


def test_fig09_interpolation(benchmark, show):
    result = benchmark.pedantic(fig9_interpolation, rounds=3, iterations=1)
    show(format_table(result.rows(), "Figure 9: interpolation behaviour"))

    # Pchip never exceeds the CDF's range.
    assert result.overshoot["pchip"] == 0.0
    assert result.undershoot["pchip"] == 0.0
    # The spline overshoots on the steep step.
    assert result.overshoot["spline"] > 0.0
    # Both locate the same steepest region, so the paper's choice is
    # about robustness, not about disagreement on easy cases.
    assert abs(
        result.argmax_location_us["pchip"] - result.argmax_location_us["spline"]
    ) < 0.2 * result.argmax_location_us["pchip"]
