"""Benchmark harness configuration.

Every bench regenerates one table or figure of the paper via
:mod:`repro.experiments`, times the run with pytest-benchmark, prints
the regenerated rows (run pytest with ``-s`` to see them), and asserts
the paper's qualitative *shape* — who wins, by roughly what factor,
where crossovers fall.  Absolute numbers come from our simulators and
are not expected to match the authors' physical testbed.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def show(capsys):
    """Print a report so it survives pytest's capture (shown with -s)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
