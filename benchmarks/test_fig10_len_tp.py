"""Figure 10: Len(TP) — recovered idle length vs injected idle period.

Paper's claims: with injected idles of ≥1 ms the reconstruction
recovers ≥90% of each idle's length; 100 µs injections blur into the
new device's latency band and verify worse; Detection(TP) spans
82.2-99.7%.  The measured-T_sdev path is more exact than the inferred
path.  (Note: the paper's "known"/"unknown" group labels are swapped in
its own prose; we label groups by what they actually are.)
"""

from __future__ import annotations

from repro.experiments import fig10_len_tp, format_table


def test_fig10_len_tp(benchmark, show):
    result = benchmark.pedantic(
        fig10_len_tp, kwargs={"n_requests": 3000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 10: Len(TP) and Detection by injected period"))

    for sweep in (result.known, result.unknown):
        scores = sweep.scores
        # Length recovery is high for comfortably-long idles (the
        # inference path gives some length back to mechanical-delay
        # misestimates, hence the looser bound).
        assert scores[10_000.0].len_tp > 0.6, sweep.group
        assert scores[100_000.0].len_tp > 0.6, sweep.group
        # Detection improves with the injected period.
        assert scores[100_000.0].detection_tp >= scores[100.0].detection_tp, sweep.group
        # Long injections are essentially always detected.
        assert scores[100_000.0].detection_tp > 0.95, sweep.group
    # The measured-tsdev group detects small injections at least as
    # well as the inference group (its device times are exact).
    assert (
        result.known.scores[100.0].detection_tp
        >= result.unknown.scores[100.0].detection_tp - 0.05
    )
