"""Trace ingestion throughput: bulk parsers and binary store vs the oracle.

Generates a deterministic synthetic trace (default 150k requests),
writes it in every supported text dialect plus the binary ``.npz``
store, and times:

- the line-by-line oracle parsers (``engine="line"``),
- the vectorised bulk parsers (``engine="bulk"``),
- binary store save, load, and memory-mapped load.

Results (requests/second, plus bulk-over-line speedups) go to stdout
and, with ``--out``, to a JSON file the CI workflow uploads as
``BENCH_parse.json``.  Not a pytest file on purpose: parser throughput
is a scalar worth tracking as an artifact, not a pass/fail assertion.

Usage::

    PYTHONPATH=src python benchmarks/bench_parse.py [--requests N] [--out BENCH_parse.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.trace import BlockTrace, load_trace, load_trace_npz, save_trace_npz, write_csv

#: Timing repetitions; the best of N is reported (steady-state figure).
_REPS = 3

#: Unified benchmark document schema version (see ``bench_pipeline``).
SCHEMA_VERSION = 2


def synthetic_trace(n: int) -> BlockTrace:
    """Field magnitudes match the real collections: a ~2 TB volume
    (sector LBAs < 2^32), multi-sector requests, ms-scale device times."""
    rng = np.random.default_rng(20170701)
    ts = np.cumsum(rng.integers(1, 10**4, n)).astype(np.float64)
    ts -= ts[0]
    return BlockTrace(
        timestamps=ts,
        lbas=rng.integers(0, 1 << 32, n),
        sizes=rng.integers(1, 256, n),
        ops=rng.integers(0, 2, n).astype(np.int8),
        issues=ts + 2.0,
        completes=ts + 2.0 + rng.integers(50, 10**4, n),
        syncs=rng.random(n) < 0.7,
        name="bench",
    )


def write_dialects(trace: BlockTrace, root: Path) -> dict[str, Path]:
    n = len(trace)
    ops = ["Read" if int(o) == 0 else "Write" for o in trace.ops]
    dev = (trace.completes - trace.issues).astype(np.int64)
    files = {}
    files["msrc"] = root / "bench.msrc"
    files["msrc"].write_text(
        "\n".join(
            f"{int(trace.timestamps[i] * 10)},host,0,{ops[i]},"
            f"{int(trace.lbas[i]) * 512},{int(trace.sizes[i]) * 512},{int(dev[i]) * 10}"
            for i in range(n)
        )
    )
    files["fiu"] = root / "bench.fiu"
    files["fiu"].write_text(
        "\n".join(
            f"{trace.timestamps[i] / 1e6:.6f} 12 proc {int(trace.lbas[i])} "
            f"{int(trace.sizes[i])} {ops[i][0]} 8 1"
            for i in range(n)
        )
    )
    files["msps"] = root / "bench.msps"
    files["msps"].write_text(
        "\n".join(
            f"{trace.timestamps[i]:.3f} {trace.timestamps[i] + dev[i]:.3f} "
            f"{ops[i][0]} {int(trace.lbas[i])} {int(trace.sizes[i])}"
            for i in range(n)
        )
    )
    files["internal"] = root / "bench.csv"
    with files["internal"].open("w") as handle:
        write_csv(trace, handle)
    return files


def best_of(fn) -> float:
    best = float("inf")
    for _ in range(_REPS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=150_000)
    parser.add_argument("--out", type=str, default=None, help="write JSON here")
    parser.add_argument(
        "--history", type=str, default=None,
        help="append this run (speedups + commit + date) to a BENCH_history.jsonl",
    )
    args = parser.parse_args(argv)
    n = args.requests
    trace = synthetic_trace(n)
    results: dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "kind": "parse",
        "n_requests": n,
        "dialects": {},
        "store": {},
    }
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        files = write_dialects(trace, root)
        for fmt, path in files.items():
            line_s = best_of(lambda: load_trace(path, fmt=fmt, engine="line"))
            bulk_s = best_of(lambda: load_trace(path, fmt=fmt, engine="bulk"))
            entry = {
                "line_requests_per_s": round(n / line_s),
                "bulk_requests_per_s": round(n / bulk_s),
                "speedup": round(line_s / bulk_s, 2),
            }
            results["dialects"][fmt] = entry  # type: ignore[index]
            print(
                f"{fmt:9s} line {n / line_s:>12,.0f} req/s   "
                f"bulk {n / bulk_s:>12,.0f} req/s   {line_s / bulk_s:.1f}x"
            )
        npz = root / "bench.npz"
        save_s = best_of(lambda: save_trace_npz(trace, npz))
        load_s = best_of(lambda: load_trace_npz(npz))
        mmap_s = best_of(lambda: load_trace_npz(npz, mmap=True))
        results["store"] = {
            "save_requests_per_s": round(n / save_s),
            "load_requests_per_s": round(n / load_s),
            "mmap_load_requests_per_s": round(n / mmap_s),
        }
        print(
            f"{'npz store':9s} save {n / save_s:>12,.0f} req/s   "
            f"load {n / load_s:>12,.0f} req/s   mmap {n / mmap_s:>12,.0f} req/s"
        )
    if args.out:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.history:
        from history import append_history

        line = append_history(results, args.history)
        print(f"history line appended to {args.history} (commit {line['commit']})")
    best_speedup = max(d["speedup"] for d in results["dialects"].values())  # type: ignore[union-attr]
    print(f"best bulk speedup: {best_speedup}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
