"""Ablation: queue-depth replay (extension beyond the paper).

The paper's emulation is synchronous with post-processed asynchrony.
An alternative is windowed replay at queue depth > 1.  This bench
quantifies (a) how much device-level overlap deepens throughput on the
flash array, and (b) that synchronous replay + revival remains the
better *timing* reconstruction — motivation for the paper's design.
"""

from __future__ import annotations

import pytest

from repro.experiments import build_pair_for, format_table, new_node
from repro.replay import replay_queue_depth


@pytest.fixture(scope="module")
def pair():
    return build_pair_for("DAP", n_requests=3000)


def test_ablation_queue_depth(benchmark, pair, show):
    depths = (1, 2, 8, 32)

    def run():
        out = {}
        for depth in depths:
            result = replay_queue_depth(pair.old, new_node(), queue_depth=depth)
            out[depth] = result.trace.duration
        return out

    durations = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [
            {"queue_depth": d, "replay_duration_ms": round(v / 1000, 1)}
            for d, v in durations.items()
        ],
        "Ablation: back-to-back replay duration vs queue depth (DAP)",
    ))
    # Deeper queues exploit the array's parallelism: monotone speedup.
    assert durations[2] <= durations[1]
    assert durations[8] <= durations[2]
    assert durations[32] <= durations[8]
    # And the effect is substantial on a 36-die-per-SSD array.
    assert durations[32] < durations[1] * 0.8
