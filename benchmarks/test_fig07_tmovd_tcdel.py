"""Figure 7: T_movd calibration (7a) and T_cdel profile (7b) on FIU workloads.

Paper's claims: replaying ten FIU workloads on an enterprise disk gives
moving-delay CDFs with consistent gradient-change locations across
workloads (licensing one representative T_movd); channel delay differs
somewhat between reads and writes but by <8%/<6% between random and
sequential access.
"""

from __future__ import annotations

from repro.experiments import fig7_tmovd_tcdel, format_table


def test_fig07_tmovd_tcdel(benchmark, show):
    result = benchmark.pedantic(
        fig7_tmovd_tcdel, kwargs={"n_requests": 2000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 7: T_movd representatives and T_cdel profile"))
    show(
        f"overall T_movd representative: {result.tmovd_overall_us / 1000:.2f} ms"
        f"  (cross-workload spread {result.tmovd_spread:.2f}x)"
    )

    # Mechanical scale: milliseconds.
    assert 1_000 < result.tmovd_overall_us < 30_000
    # The Figure 7a observation: workloads agree on the moving delay.
    assert result.tmovd_spread < 6.0
    # Figure 7b: random vs sequential channel delay nearly identical.
    for name, profile in result.tcdel.items():
        if "SeqR" in profile and "RandR" in profile:
            assert abs(profile["SeqR"] - profile["RandR"]) / profile["SeqR"] < 0.25, name
        if "SeqW" in profile and "RandW" in profile:
            assert abs(profile["SeqW"] - profile["RandW"]) / profile["SeqW"] < 0.25, name
