"""Figure 13: T_intt gap between TraceTracker and the other methods.

Paper's claims: Acceleration and Revision, having no idle model, sit
seconds away from TraceTracker on average (7.08 s / 7.15 s); Fixed-th
and Dynamic are far closer (1.3 ms / 0.035 ms) but still differ.
"""

from __future__ import annotations

from repro.experiments import fig13_intt_gap, format_table
from repro.workloads import ALL_WORKLOADS


def test_fig13_intt_gap(benchmark, show):
    # A representative slice of the catalog keeps the bench snappy;
    # pass ALL_WORKLOADS for the full Figure 13 sweep.
    workloads = tuple(ALL_WORKLOADS[::3])
    result = benchmark.pedantic(
        fig13_intt_gap,
        kwargs={"workloads": workloads, "n_requests": 2000},
        rounds=1,
        iterations=1,
    )
    show(format_table(result.rows(), "Figure 13: mean |T_intt gap| to TraceTracker (us)"))
    means = result.method_means()
    show(format_table([{"method": m, "mean_gap_us": round(g, 1)} for m, g in means.items()]))

    # Idle-blind methods are orders of magnitude further away.
    assert means["acceleration-100x"] > 100 * means["fixed-th-10ms"]
    assert means["revision"] > 100 * means["fixed-th-10ms"]
    # Dynamic (same inference, no post-processing) is the nearest.
    assert means["dynamic"] < means["fixed-th-10ms"]
    # Acceleration/Revision gaps are in the hundreds of ms or more.
    assert means["acceleration-100x"] > 100_000
    assert means["revision"] > 100_000
