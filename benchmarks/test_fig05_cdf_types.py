"""Figure 5: the three CDF shape classes of inter-arrival distributions.

The paper motivates its steepness machinery by showing CDFs come in a
single-steep-rise form (5a), a smooth "chunky middle" (5b), and a
multi-maxima form (5c) where naive differential analysis fails.
"""

from __future__ import annotations

from repro.experiments import fig5_cdf_types, format_table


def test_fig05_cdf_types(benchmark, show):
    result = benchmark.pedantic(
        fig5_cdf_types, kwargs={"n_requests": 3000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 5: CDF shape classes"))

    # The constructed archetypes land in their intended classes.
    assert result.synthetic["unimodal"] == "global-maxima"
    assert result.synthetic["diffuse"] == "chunky-middle"
    assert result.synthetic["bimodal"] == "multi-maxima"
    # Real workloads are classified into the taxonomy (any class).
    valid = {"global-maxima", "chunky-middle", "multi-maxima"}
    assert set(result.workloads.values()) <= valid
