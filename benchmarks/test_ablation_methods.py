"""Ablations on the baseline methods' parameters.

- Fixed-th threshold sweep (the paper tried 10-100 ms and picked 10 ms);
- Acceleration factor sweep (the paper borrows 100x from prior work).
"""

from __future__ import annotations

import pytest

from repro.core import Acceleration, FixedThreshold
from repro.experiments import build_pair_for, format_table, new_node
from repro.metrics import ks_distance


@pytest.fixture(scope="module")
def pair():
    return build_pair_for("MSNFS", n_requests=4000)


def test_ablation_fixed_threshold_sweep(benchmark, pair, show):
    thresholds = (1_000.0, 10_000.0, 50_000.0, 100_000.0)

    def run():
        return {
            th: ks_distance(FixedThreshold(th).reconstruct(pair.old, new_node()), pair.new)
            for th in thresholds
        }

    ks = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"threshold_ms": th / 1000, "ks_to_target": round(v, 4)} for th, v in ks.items()],
        "Ablation: Fixed-th threshold sweep (paper picked 10 ms)",
    ))
    # The paper's 10 ms choice must beat the overly-loose 100 ms one
    # (100 ms swallows real idles into the assumed service time).
    assert ks[10_000.0] <= ks[100_000.0]
    # All thresholds yield valid reconstructions.
    assert all(0.0 <= v <= 1.0 for v in ks.values())


def test_ablation_acceleration_factor_sweep(benchmark, pair, show):
    factors = (10.0, 100.0, 1000.0)

    def run():
        return {
            f: ks_distance(Acceleration(f).reconstruct(pair.old, new_node()), pair.new)
            for f in factors
        }

    ks = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"factor": f, "ks_to_target": round(v, 4)} for f, v in ks.items()],
        "Ablation: acceleration factor sweep (paper uses 100x)",
    ))
    # No static factor gets close to the target distribution — the
    # point of the paper's critique: acceleration rescales idle and
    # service time indiscriminately, so even the best factor stays far
    # from the target, and the published 100x is no better.
    assert min(ks.values()) > 0.15
    assert ks[100.0] > 0.25
