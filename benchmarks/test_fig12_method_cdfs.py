"""Figure 12: T_intt CDFs of all five reconstruction methods (MSNFS).

Paper's claims: Acceleration merely left-shifts the old CDF; Revision
reflects the new device but loses idle; Fixed-th loses ~65% of idle;
Dynamic runs ~30% long without async revival; TraceTracker hugs the
target distribution closest.
"""

from __future__ import annotations

from repro.experiments import fig12_method_cdfs, format_cdf_series, format_table


def test_fig12_method_cdfs(benchmark, show):
    result = benchmark.pedantic(
        fig12_method_cdfs, kwargs={"n_requests": 5000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 12: KS distance to the target CDF"))
    show(format_cdf_series(result.series))

    ks = result.ks_to_target
    errors = result.mean_gap_error_us
    # TraceTracker is the closest method to the target...
    for other in ("acceleration-100x", "revision", "fixed-th-10ms"):
        assert ks["tracetracker"] < ks[other], other
    # ...and the async post-processing does not hurt the distribution
    # while improving (or matching) the per-gap error.
    assert ks["tracetracker"] <= ks["dynamic"] + 0.01
    assert errors["tracetracker"] <= errors["dynamic"] + 1.0
    # Revision is badly off: no idle at all.
    assert ks["revision"] > 2 * ks["tracetracker"]
