"""Table I: characteristics of the reconstructed workload catalog.

Regenerates the per-workload rows (trace counts, average request sizes,
payload totals) and checks them against the published table: 577 traces
overall, and the average data sizes the paper lists per workload.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table, table1_characteristics
from repro.workloads import TABLE1_N_TRACES

#: Published "Avg data size (KB)" per workload (Table I).
PAPER_AVG_KB = {
    "24HR": 8.27, "24HRS": 28.79, "BS": 20.73, "CFS": 9.71, "DADS": 28.66,
    "DAP": 74.42, "DDR": 24.78, "MSNFS": 10.71,
    "ikki": 4.64, "madmax": 4.11, "online": 4.00, "topgun": 3.87,
    "webmail": 4.00, "casa": 4.04, "webresearch": 4.00, "webusers": 4.20,
    "mail+online": 4.0, "homes": 5.23,
    "mds": 33.0, "prn": 15.4, "proj": 29.6, "prxy": 8.6, "rsrch": 8.4,
    "src1": 35.7, "src2": 40.9, "stg": 26.2, "web": 7.0, "wdev": 34.0,
    "usr": 38.65, "hm": 15.16, "ts": 9.0,
}


def test_table1_characteristics(benchmark, show):
    result = benchmark.pedantic(
        table1_characteristics,
        kwargs={"traces_per_workload": 2, "n_requests": 1500},
        rounds=1,
        iterations=1,
    )
    show(format_table(result.rows(), "Table I: workload characteristics (regenerated)"))

    # The catalog carries the full published trace inventory.
    assert result.total_traces() == 577
    assert result.paper_n_traces == TABLE1_N_TRACES
    # Every regenerated average request size tracks the published one.
    for name, row in result.rows_by_workload.items():
        assert row.avg_data_size_kb == pytest.approx(PAPER_AVG_KB[name], rel=0.35), name
    # Families are complete.
    categories = {row.category for row in result.rows_by_workload.values()}
    assert categories == {"MSPS", "FIU", "MSRC"}
