"""Figure 11: Len(FP) — the damage of falsely predicted idle periods.

Paper's claims: false positives on measured-T_sdev traces are tiny
(~7 µs average — sub-channel-delay noise), while the inference path's
false positives sit in the milliseconds (~6.4 ms average, >98% below
6 ms) because they come from mechanical-delay misestimates.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig11_len_fp, format_table


def test_fig11_len_fp(benchmark, show):
    result = benchmark.pedantic(
        fig11_len_fp, kwargs={"n_requests": 3000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 11: Len(FP) distributions"))

    known, unknown = result.known_fp_us, result.unknown_fp_us
    # The measured path barely hallucinates idle at all...
    if known.size:
        assert float(np.median(known)) < 100.0
    # ...while the inferred path's FPs are mechanical-delay sized.
    assert unknown.size > 0
    assert 200.0 < float(np.median(unknown)) < 20_000.0
    # And the two regimes are clearly separated.
    if known.size:
        assert float(np.median(unknown)) > 10 * float(np.median(known))
