"""Figure 16: average idle period per workload.

Paper's claims: MSPS averages ~0.27 s of idle per idle event — an
order of magnitude below FIU (~2.80 s) and MSRC (~2.25 s); madmax,
rsrch and wdev are extreme outliers (20.5 s / 69.2 s / 403 s).
"""

from __future__ import annotations

from repro.experiments import fig16_avg_idle, format_table
from repro.workloads import ALL_WORKLOADS


def test_fig16_avg_idle(benchmark, show):
    result = benchmark.pedantic(
        fig16_avg_idle,
        kwargs={"workloads": ALL_WORKLOADS, "n_requests": 2000},
        rounds=1,
        iterations=1,
    )
    show(format_table(result.rows(), "Figure 16: average T_idle per workload"))
    means = result.category_means_us()
    show(format_table([{"category": c, "avg_idle_s": round(v / 1e6, 2)} for c, v in means.items()]))

    # MSPS idles are much shorter than FIU/MSRC idles.
    assert means["MSPS"] < means["FIU"] / 3
    assert means["MSPS"] < means["MSRC"] / 3
    # The published outliers stand out inside their families.  (The
    # factor is looser than the paper's ~7x because the inference path
    # admits some mechanical-delay false positives that dilute the
    # average on FIU-style traces.)
    assert result.avg_idle_us["madmax"] > 2 * result.avg_idle_us["ikki"]
    assert result.avg_idle_us["rsrch"] > 3 * result.avg_idle_us["mds"]
    assert result.avg_idle_us["wdev"] > result.avg_idle_us["rsrch"]
    # Scales: MSPS sub-second, FIU seconds.
    assert means["MSPS"] < 1e6
    assert means["FIU"] > 5e5
