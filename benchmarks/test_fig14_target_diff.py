"""Figure 14: T_intt differences, target (old) traces vs TraceTracker traces.

Paper's claims: reconstructed gaps are shorter than the old traces' on
average (0.677 ms mean shortening; median 2 ms → 0.02 ms) because the
flash target services requests orders of magnitude faster, while the
preserved idles keep the difference bounded.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig14_target_diff, format_table
from repro.workloads import ALL_WORKLOADS


def test_fig14_target_diff(benchmark, show):
    workloads = tuple(ALL_WORKLOADS[::3])
    result = benchmark.pedantic(
        fig14_target_diff,
        kwargs={"workloads": workloads, "n_requests": 2000},
        rounds=1,
        iterations=1,
    )
    show(format_table(result.rows(), "Figure 14: old-vs-reconstructed T_intt differences"))
    shortening = result.overall_mean_shortening_us()
    show(f"mean shortening: {shortening / 1000:.3f} ms (paper: 0.677 ms)")

    # Gaps get shorter on the flash target, not longer.
    assert shortening > 0
    # Millisecond scale, not seconds: idle is preserved, only service
    # time shrinks.
    assert shortening < 1_000_000
    # Every workload shows a max difference >= its average difference.
    for name in workloads:
        assert result.max_us[name] >= result.avg_us[name]
    # Per-workload variation exists (paper: "differs among the 31
    # workloads because of specific workload characteristics").
    avgs = np.array(list(result.avg_us.values()))
    assert avgs.max() > 1.3 * avgs.min()
