"""Append-only benchmark history (``BENCH_history.jsonl``).

The committed ``BENCH_*.json`` files record one point in time and are
overwritten on every regeneration; this module keeps the *trajectory*.
Each line of ``BENCH_history.jsonl`` is one benchmark run reduced to
its machine-independent core — the per-stage speedup ratios — stamped
with the git commit and date it was measured at:

``{"schema_version": 2, "kind": "pipeline", "commit": "66a81df",
"date": "2026-08-08", "n_requests": 4000, "calibration_s": 0.41,
"speedups": {"qdepth_replay": 11.2, ...}}``

Both benchmark drivers append here via ``--history`` and
``compare.py --history`` renders the per-stage trend table.  Lines are
self-contained JSON, so a torn or hand-mangled line is skipped, not
fatal, and the file merges trivially (append-only, one run per line).
"""

from __future__ import annotations

import datetime
import json
import subprocess
from pathlib import Path

__all__ = ["append_history", "load_history", "summarize"]


def _git_commit(repo_dir: Path) -> str:
    """Short commit hash of ``repo_dir``'s checkout, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


def summarize(results: dict) -> dict:
    """Reduce one benchmark document to its history line payload.

    Keeps exactly the machine-independent ratios (stage/dialect
    speedups) plus the calibration time that lets absolute comparisons
    be reconstructed later; drops the raw per-stage seconds, which are
    machine-bound noise over a history that spans boxes.
    """
    kind = results.get("kind", "parse" if "dialects" in results else "pipeline")
    if kind == "parse":
        speedups = {
            name: entry["speedup"] for name, entry in results.get("dialects", {}).items()
        }
    else:
        speedups = {
            name: entry["speedup"] for name, entry in results.get("stages", {}).items()
        }
    line = {
        "schema_version": results.get("schema_version", 1),
        "kind": kind,
        "n_requests": results.get("n_requests"),
        "speedups": speedups,
    }
    if "calibration_s" in results:
        line["calibration_s"] = results["calibration_s"]
    return line


def append_history(results: dict, path: str | Path) -> dict:
    """Append one benchmark run to the history file; returns the line.

    The commit stamp comes from the repository containing ``path`` (the
    history file lives at the repo root), the date is the measurement
    day in UTC.
    """
    path = Path(path)
    line = summarize(results)
    line["commit"] = _git_commit(path.resolve().parent)
    line["date"] = datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d")
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(line, sort_keys=True) + "\n")
    return line


def load_history(path: str | Path) -> list[dict]:
    """Every parseable run line of a history file, in append order."""
    runs: list[dict] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return runs
    for raw in text.splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            data = json.loads(raw)
        except json.JSONDecodeError:
            continue  # torn or hand-mangled line; history is best-effort
        if isinstance(data, dict) and isinstance(data.get("speedups"), dict):
            runs.append(data)
    return runs
