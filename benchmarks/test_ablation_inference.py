"""Ablations on the inference design choices DESIGN.md calls out.

- pchip vs spline interpolation for the steepness location (the paper's
  Figure 9 rationale, quantified on the actual estimation task);
- Algorithm 1's outlier margin (var/2) vs stricter/looser margins;
- the two-pass async refinement vs the paper's single pass.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import build_pair_for, format_table, new_node
from repro.inference import InferenceConfig, estimate_model
from repro.metrics import ks_distance
from repro.core import TraceTracker, TraceTrackerConfig
from repro.storage import HDDModel


@pytest.fixture(scope="module")
def bare_pair():
    """One FIU-style OLD/NEW pair shared by the ablations."""
    return build_pair_for("MSNFS", n_requests=5000, old_has_device_times=False)


def _model_error(config: InferenceConfig, trace) -> dict[str, float]:
    """Relative error of inferred coefficients vs the OLD node's truth.

    The truth includes the channel's per-sector transfer time: timing
    analysis cannot separate the link's per-byte cost from the
    medium's, so the inferred slope estimates their sum.
    """
    from repro.storage import SATA_300

    hdd = HDDModel()
    true_slope = hdd.geometry.transfer_us_per_sector + 512 / SATA_300.bandwidth_mb_s
    report = estimate_model(trace, config)
    model = report.model
    return {
        "beta_rel_err": abs(model.beta_us_per_sector - true_slope) / true_slope,
        "eta_rel_err": abs(model.eta_us_per_sector - true_slope) / true_slope,
        "tmovd_us": model.tmovd_us,
    }


def test_ablation_interpolation_choice(benchmark, bare_pair, show):
    def run():
        return {
            method: _model_error(InferenceConfig(interpolation=method), bare_pair.old)
            for method in ("pchip", "spline")
        }

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"interpolation": m, **{k: round(v, 3) for k, v in e.items()}} for m, e in errors.items()],
        "Ablation: interpolation method",
    ))
    # Both must produce usable models; pchip must not be worse.
    assert errors["pchip"]["beta_rel_err"] < 1.0
    assert errors["pchip"]["beta_rel_err"] <= errors["spline"]["beta_rel_err"] + 0.25


def test_ablation_outlier_margin(benchmark, bare_pair, show):
    def run():
        out = {}
        for factor in (0.1, 0.5, 2.0):
            cfg = InferenceConfig(margin_factor=factor)
            out[factor] = _model_error(cfg, bare_pair.old)
        return out

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"margin_factor": f, **{k: round(v, 3) for k, v in e.items()}} for f, e in errors.items()],
        "Ablation: Algorithm 1 outlier margin (paper: 0.5)",
    ))
    # The paper's var/2 margin must be competitive with the alternatives.
    best = min(e["beta_rel_err"] for e in errors.values())
    assert errors[0.5]["beta_rel_err"] <= best + 0.3


def test_ablation_refinement_passes(benchmark, bare_pair, show):
    hdd = HDDModel()

    def run():
        out = {}
        for passes in (0, 1, 2):
            cfg = InferenceConfig(refine_passes=passes)
            report = estimate_model(bare_pair.old, cfg)
            out[passes] = report.model.tmovd_us
        return out

    tmovd = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"refine_passes": p, "tmovd_ms": round(v / 1000, 2)} for p, v in tmovd.items()],
        f"Ablation: async refinement (disk movd ~ {hdd.expected_movd_us / 1000:.1f} ms)",
    ))
    # Refinement must not make the moving-delay estimate worse, and the
    # refined estimate must land at mechanical (ms) scale.
    assert tmovd[1] >= tmovd[0] * 0.5
    assert tmovd[1] > 1_000.0
    # A second pass changes little (the refinement converges fast).
    assert tmovd[2] == pytest.approx(tmovd[1], rel=0.5)


def test_ablation_postprocess_value(benchmark, bare_pair, show):
    def run():
        target_truth = bare_pair.new
        with_pp = TraceTracker(TraceTrackerConfig(postprocess=True)).reconstruct(
            bare_pair.old, new_node()
        ).trace
        without_pp = TraceTracker(TraceTrackerConfig(postprocess=False)).reconstruct(
            bare_pair.old, new_node()
        ).trace
        return {
            "with_postprocess": ks_distance(with_pp, target_truth),
            "without_postprocess": ks_distance(without_pp, target_truth),
        }

    ks = benchmark.pedantic(run, rounds=1, iterations=1)
    show(format_table(
        [{"variant": k, "ks_to_target": round(v, 4)} for k, v in ks.items()],
        "Ablation: async post-processing",
    ))
    # Post-processing never hurts closeness to the target.
    assert ks["with_postprocess"] <= ks["without_postprocess"] + 0.02
