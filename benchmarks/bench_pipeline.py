"""End-to-end pipeline throughput: every stage, before/after engines.

``bench_parse.py`` tracks trace ingestion; this benchmark tracks
everything downstream — the full reconstruction pipeline the figures
and campaigns run:

- **pipeline stages** — collect (generate + device emulation),
  inference (latency-model estimation), reconstruct (TraceTracker
  remaster onto the new node), metrics (gap statistics), plus one
  whole figure (fig9) and one campaign grid point, timed per stage;
- **engine stages** — hot paths that keep a scalar oracle around are
  timed under *both* engines and reported as before/after speedups:
  queue-depth replay (scalar loop vs plan/FIFO-window engine, on the
  flash array and on the HDD), the device-model kernels (scalar
  per-page occupancy walks vs the columnar wave kernel, and the
  per-request ``_service_batch`` loops vs the grouped unique-shape
  kernels, on the flash device and the array), the fig9 interpolation
  kernels (knot-at-a-time slopes/grids vs vectorised), the Algorithm 1
  group scoring (per-group loop vs fused pass), campaign checkpointing
  (JSON-per-point vs append-only segments), the result lake's
  cross-run incremental skip (cold recompute vs warm catalog hits),
  and the streaming service's incremental session (recompute the
  whole prefix at every arrival vs feed each chunk once);
- **calibration** — a fixed NumPy workload timed in the same run, so
  the CI regression gate can compare absolute stage times across
  machines of different speeds.

Results go to stdout and, with ``--out``, to ``BENCH_pipeline.json``
(committed at the repo root; CI re-measures and fails on >1.5x
regressions via ``--check``).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--quick] [--out BENCH_pipeline.json]
    PYTHONPATH=src python benchmarks/bench_pipeline.py --quick --check BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis.distribution import EmpiricalCDF
from repro.analysis.interpolation import (
    _derivative_grid,
    _derivative_grid_scalar,
    _natural_spline_slopes,
    _natural_spline_slopes_scalar,
    _pchip_slopes,
    _pchip_slopes_scalar,
)
from repro.analysis.steepness import select_steepest, steepness_score
from repro.campaign.engine import _SegmentWriter, _scan_checkpoints, _write_checkpoint
from repro.core.baselines import TraceTrackerMethod
from repro.experiments import build_pair_for, fig9_interpolation, new_node, old_node
from repro.inference.decompose import estimate_model
from repro.inference.grouping import group_intervals
from repro.metrics.comparison import intt_gap_stats
from repro.perf import PerfRecorder
from repro.replay import replay_queue_depth, replay_queue_depth_scalar
from repro.workloads.catalog import get_spec
from repro.workloads.generator import collect_trace, generate_intents

#: Timing repetitions; the best of N is reported (steady-state figure).
_REPS = 3

#: Version stamp of the unified benchmark document schema.  Version 2
#: adds ``schema_version`` and ``kind`` (``"pipeline"`` / ``"parse"``)
#: to the two ``BENCH_*.json`` files so one comparator can read both;
#: version-1 documents (no stamp) are still accepted everywhere.
SCHEMA_VERSION = 2


def _best_of(fn, reps: int = _REPS) -> float:
    """Fastest wall-clock run of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _calibration_s() -> float:
    """A fixed CPU workload for cross-machine normalisation.

    Mixes NumPy array work with Python-loop work in roughly the
    proportions the pipeline stages do, so the ratio of two machines'
    calibration times predicts the ratio of their stage times well
    enough for a 1.5x regression gate.
    """

    def work() -> None:
        rng = np.random.default_rng(0)
        a = rng.random(200_000)
        for _ in range(10):
            a = np.sort(a + 0.1) * 0.99
        total = 0.0
        for v in a[:50_000].tolist():
            total += v * 1.000001
        assert total > 0

    return _best_of(work)


# ----------------------------------------------------------------------
# Pipeline stages (absolute seconds per stage)
# ----------------------------------------------------------------------


def bench_pipeline_stages(n_requests: int) -> dict[str, float]:
    """Time collect -> inference -> reconstruct -> metrics + one figure
    and one campaign point, at ``n_requests`` scale."""
    perf = PerfRecorder()
    wspec = get_spec("MSNFS").scaled(n_requests)
    with perf.stage("collect"):
        old = collect_trace(generate_intents(wspec), old_node(), record_device_times=False)
    with perf.stage("inference"):
        estimate_model(old)
    method = TraceTrackerMethod()
    with perf.stage("reconstruct"):
        new = method.reconstruct(old, new_node())
    with perf.stage("metrics"):
        intt_gap_stats(old, new)
    with perf.stage("fig9_figure"):
        fig9_interpolation()
    with perf.stage("campaign_point"):
        from repro.campaign import CampaignSpec, DeviceSpec
        from repro.campaign.engine import run_point
        from repro.campaign.plan import expand

        spec = CampaignSpec(
            name="bench-point",
            action="reconstruct",
            workloads=("MSNFS",),
            devices=(DeviceSpec("new", "new-node"),),
            methods=("revision",),
            n_requests=(min(n_requests, 500),),
        )
        run_point(spec, expand(spec).points[0])
    return {name: stats.best_s for name, stats in perf.stages.items()}


# ----------------------------------------------------------------------
# Engine stages (before/after the optimisation, same inputs)
# ----------------------------------------------------------------------


def bench_qdepth(n_requests: int, device_factory, label: str) -> dict[str, float]:
    """Scalar oracle vs production queue-depth engine on one device.

    The two engines are timed as *interleaved* pairs (scalar, then
    production, repeated) so both sides sample the same co-tenant load
    regimes on a shared box; each side reports the minimum of its
    series (the quiet-moment floor, the measurement protocol described
    in docs/architecture.md "Measured limits").
    """
    pair = build_pair_for("DAP", n_requests=n_requests)
    idle = np.full(len(pair.old) - 1, 250.0)
    before = float("inf")
    after = float("inf")
    for _ in range(_REPS + 1):
        start = time.perf_counter()
        replay_queue_depth_scalar(
            pair.old, device_factory(), idle_us=idle, queue_depth=8
        )
        before = min(before, time.perf_counter() - start)
        start = time.perf_counter()
        replay_queue_depth(pair.old, device_factory(), idle_us=idle, queue_depth=8)
        after = min(after, time.perf_counter() - start)
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_flash_read_pages(n_pages: int = 1024, reps_per_run: int = 50) -> dict[str, float]:
    """Per-page occupancy walk vs the columnar wave kernel (large read).

    1024 pages is an 8 MB extent on the default geometry — the
    large-sequential regime where the wave decomposition engages
    (``COLUMNAR_MIN_PAGES``); its advantage grows with extent size.
    """
    from repro.storage import FlashSSD
    from repro.storage.kernels import read_wave_kernel

    ssd = FlashSSD()
    g = ssd.geometry
    rng = np.random.default_rng(5)
    die0 = rng.uniform(0.0, 500.0, g.total_dies).tolist()
    chan0 = rng.uniform(0.0, 300.0, g.channels).tolist()

    def scalar_run() -> None:
        for _ in range(reps_per_run):
            ssd._die_busy = list(die0)
            ssd._chan_busy = list(chan0)
            ssd._read_pages(range(7, 7 + n_pages), 100.0)

    def columnar_run() -> None:
        for _ in range(reps_per_run):
            die = list(die0)
            chan = list(chan0)
            read_wave_kernel(
                7, n_pages, 100.0, die, chan, g.channels, g.total_dies,
                g.read_us, g.page_transfer_us, g.planes_per_die, True,
            )

    before = _best_of(scalar_run)
    after = _best_of(columnar_run)
    ssd.reset()
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_flash_service_batch(n_requests: int = 4_000) -> dict[str, float]:
    """Per-request ``_service_batch`` loop vs the grouped shape kernel.

    Fixed stream size (like the other kernel stages): the grouped
    kernel's advantage is amortisation over the stream, so the speedup
    is a function of input scale, and the CI gate compares ratios.
    """
    from repro.storage import FlashSSD

    pair = build_pair_for("DAP", n_requests=n_requests)
    ops, lbas, sizes = pair.old.ops, pair.old.lbas, pair.old.sizes
    ssd = FlashSSD()
    ssd._service_batch_columnar(ops, lbas, sizes)  # warm the shape memo
    before = _best_of(lambda: ssd._service_batch_scalar(ops, lbas, sizes))
    after = _best_of(lambda: ssd._service_batch_columnar(ops, lbas, sizes))
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_array_service_batch(n_requests: int = 4_000) -> dict[str, float]:
    """Array fan-out: scalar fragment walk vs the columnar kernel.

    Fixed stream size, see :func:`bench_flash_service_batch`.
    """
    pair = build_pair_for("DAP", n_requests=n_requests)
    ops, lbas, sizes = pair.old.ops, pair.old.lbas, pair.old.sizes
    array = new_node()
    array._service_batch_columnar(ops, lbas, sizes)  # warm the shape memo
    before = _best_of(lambda: array._service_batch_scalar(ops, lbas, sizes))
    after = _best_of(lambda: array._service_batch_columnar(ops, lbas, sizes))
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_interpolation(n_knots: int = 200, reps_per_run: int = 40) -> dict[str, float]:
    """Fig9-style interpolation kernels: scalar loops vs vectorised."""
    rng = np.random.default_rng(9)
    samples = np.concatenate(
        [rng.normal(200.0, 2.0, 2400), np.exp(rng.uniform(np.log(1e3), np.log(1e6), 600))]
    )
    xs, ys = EmpiricalCDF(samples).knots()
    idx = np.unique(np.linspace(0, len(xs) - 1, n_knots).astype(int))
    xs, ys = xs[idx], ys[idx]

    def run(slopes_pchip, slopes_spline, grid) -> None:
        for _ in range(reps_per_run):
            slopes_pchip(xs, ys)
            slopes_spline(xs, ys)
            grid(xs, 16, True)

    before = _best_of(
        lambda: run(_pchip_slopes_scalar, _natural_spline_slopes_scalar, _derivative_grid_scalar)
    )
    after = _best_of(lambda: run(_pchip_slopes, _natural_spline_slopes, _derivative_grid))
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_steepness(n_requests: int) -> dict[str, float]:
    """Algorithm 1 group scoring: per-group loop vs fused pass."""
    pair = build_pair_for("MSNFS", n_requests=n_requests)
    groups = group_intervals(pair.old, min_samples=8)

    def before_run() -> None:
        scored = [
            (key, steepness_score(np.asarray(v, dtype=np.float64)))
            for key, v in groups.items()
        ]
        scored.sort(key=lambda p: (-p[1].steepness, str(p[0])))

    before = _best_of(before_run)
    after = _best_of(lambda: select_steepest(groups, k=len(groups), min_samples=8))
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_campaign_scheduling(n_points: int = 120, jobs: int = 2) -> dict[str, float]:
    """Static round-robin shards vs the work-stealing chunk queue.

    A deliberately *adversarial* skew for the static scheduler: point
    costs alternate heavy/light along the plan, so round-robin
    assignment piles every heavy point onto one shard and the campaign
    waits for it.  The stealing scheduler drains the same grid as a
    chunk queue, so the heavy points spread across whichever workers
    are free.  The synthetic action burns deterministic CPU with no
    traces or devices; both runs aggregate in memory (no checkpoint
    I/O) and produce identical tables, so the stage times scheduling
    and nothing else.
    """
    from repro.campaign import CampaignEngine, CampaignSpec, DeviceSpec

    sizes: list[int] = []
    for i in range(n_points // 2):
        sizes.extend((2_000 + i, 50 + i))  # heavy, light, heavy, light...
    spec = CampaignSpec(
        name="bench-scheduling",
        action="synthetic",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=tuple(sizes),
        options={"iters_per_request": 40},
    )

    def run(scheduler: str) -> None:
        CampaignEngine(spec, out_dir=None, jobs=jobs, scheduler=scheduler).run()

    before = _best_of(lambda: run("static"))
    after = _best_of(lambda: run("stealing"))
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_checkpointing(n_points: int = 384) -> dict[str, float]:
    """Campaign checkpoint write+rescan: JSON-per-point vs segments."""
    keys = [f"{i:020d}" for i in range(n_points)]
    row = {"workload": "MSNFS", "speedup": 3.25, "method_name": "tracetracker"}

    def json_per_point() -> None:
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp)
            for key in keys:
                _write_checkpoint(out, key, row)
            assert len(_scan_checkpoints(out, keys)) == n_points

    def segments() -> None:
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp)
            writer = _SegmentWriter(out)
            for key in keys:
                writer.append(key, row)
            writer.close()
            assert len(_scan_checkpoints(out, keys)) == n_points

    before = _best_of(json_per_point)
    after = _best_of(segments)
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_campaign_incremental_skip(n_points: int = 64) -> dict[str, float]:
    """Recompute-everything vs warm result-lake catalog hits.

    The cross-run incremental path: ``before`` runs the grid cold into
    a fresh directory (every point computed); ``after`` runs the same
    grid into *another* fresh directory against a lake some prior
    campaign already filled, so every point loads from the catalog and
    zero are computed.  The synthetic action keeps the per-point cost
    deterministic; the speedup is the campaign-level win of
    ``repro-campaign run --lake`` on previously-covered grids.
    """
    from repro.campaign import CampaignEngine, CampaignSpec, DeviceSpec

    spec = CampaignSpec(
        name="bench-lake-skip",
        action="synthetic",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=tuple(range(300, 300 + n_points)),
        options={"iters_per_request": 40},
    )

    def cold() -> None:
        with tempfile.TemporaryDirectory() as tmp:
            result = CampaignEngine(spec, out_dir=Path(tmp) / "out").run()
            assert result.n_computed == n_points

    with tempfile.TemporaryDirectory() as tmp:
        lake = Path(tmp) / "lake.sqlite"
        CampaignEngine(spec, out_dir=Path(tmp) / "seed", lake=lake).run()

        def warm() -> None:
            with tempfile.TemporaryDirectory() as out:
                result = CampaignEngine(
                    spec, out_dir=Path(out) / "out", lake=lake
                ).run()
                assert result.n_computed == 0 and result.n_lake_hits == n_points

        before = _best_of(cold)
        after = _best_of(warm)
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


def bench_streaming_reconstruct(n_requests: int, n_chunks: int = 8) -> dict[str, float]:
    """Recompute-from-scratch per arrival vs the incremental session.

    The always-on service's reason to exist as a *stateful* daemon:
    when a stream delivers ``n_chunks`` batches, the naive way to keep
    the reconstruction current is to re-run the whole pipeline over
    everything received so far at each arrival — O(k·n) total work.
    The :class:`~repro.core.stages.StreamingReconstructionSession` the
    daemon drives instead feeds each chunk once under the
    carry-one-request invariant — O(n) — and its advantage grows
    linearly with stream length.  Both sides produce the same final
    trace; the chunk count is fixed so the ratio is scale-stable.
    """
    from repro.core.pipeline import TraceTracker

    pair = build_pair_for("MSNFS", n_requests=n_requests)
    step = max(1, len(pair.old) // n_chunks)
    bounds = list(range(step, len(pair.old), step)) + [len(pair.old)]
    tracker = TraceTracker()

    def naive_recompute() -> None:
        for hi in bounds:
            tracker.pipeline.run(pair.old[:hi], new_node())

    def incremental() -> None:
        session = tracker.stream_session(new_node())
        lo = 0
        for hi in bounds:
            session.feed(pair.old[lo:hi])
            lo = hi
        session.finish()

    before = _best_of(naive_recompute)
    after = _best_of(incremental)
    return {"before_s": before, "after_s": after, "speedup": round(before / after, 2)}


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _nvme_mq_node():
    """A multi-queue NVMe device at bench scale (fresh instance)."""
    from repro.campaign.devices import build_device

    return build_device("nvme_mq", {"n_queues": 4})


def _degraded_raid_node():
    """A rebuilding RAID-1 of HDDs at bench scale (fresh instance)."""
    from repro.campaign.devices import build_device

    return build_device(
        "raid1",
        {
            "n": 2,
            "member": {"kind": "hdd"},
            "failed_member": 0,
            "rebuild_every": 16,
            "rebuild_chunk": 64,
        },
    )


def run_benchmarks(n_requests: int) -> dict:
    """Measure every stage; returns the JSON-able result document."""
    results: dict = {
        "schema_version": SCHEMA_VERSION,
        "kind": "pipeline",
        "n_requests": n_requests,
        "calibration_s": round(_calibration_s(), 6),
    }
    results["pipeline"] = {
        name: round(seconds, 6) for name, seconds in bench_pipeline_stages(n_requests).items()
    }
    results["stages"] = {
        # The headline qdepth bench exercises the precomputed-service
        # (service_batch + FIFO window) engine on the OLD node; the
        # flash array cannot take that path at depth > 1 (its latencies
        # are state-dependent under overlap), so its stage tracks the
        # plan-based event engine, whose win is bounded by the
        # irreducible per-fragment state bookkeeping the scalar oracle
        # shares (see docs/architecture.md, "Device-model kernels").
        "qdepth_replay": bench_qdepth(n_requests, old_node, "hdd"),
        "qdepth_replay_flash_array": bench_qdepth(n_requests, new_node, "flash-array"),
        "qdepth_replay_nvme_mq": bench_qdepth(n_requests, _nvme_mq_node, "nvme-mq"),
        "qdepth_replay_degraded_raid": bench_qdepth(
            n_requests, _degraded_raid_node, "degraded-raid"
        ),
        "flash_read_pages": bench_flash_read_pages(),
        "flash_service_batch": bench_flash_service_batch(),
        "array_service_batch": bench_array_service_batch(),
        "fig09_interpolation": bench_interpolation(),
        "steepness_select": bench_steepness(n_requests),
        "campaign_checkpoint": bench_checkpointing(),
        "campaign_scheduling": bench_campaign_scheduling(),
        "campaign_incremental_skip": bench_campaign_incremental_skip(),
        "streaming_reconstruct": bench_streaming_reconstruct(n_requests),
    }
    for stage in results["stages"].values():
        stage["before_s"] = round(stage["before_s"], 6)
        stage["after_s"] = round(stage["after_s"], 6)
    return results


def check_regressions(measured: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression report against a committed baseline (empty = pass).

    Speedup stages compare machine-independent before/after ratios;
    absolute pipeline stages are normalised by the calibration
    workload's ratio between the two runs.  Stages present in only one
    document are tolerated — a stage the baseline has never seen has
    nothing to regress against, and a stage the baseline still carries
    but this run dropped was removed on purpose by whatever commit
    removed it (the committed baseline lags the code by one
    regeneration) — so schema growth never trips the gate.
    """
    problems: list[str] = []
    for name, base in baseline.get("stages", {}).items():
        now = measured.get("stages", {}).get(name)
        if now is None:
            continue  # stage retired since the baseline was committed
        if now["speedup"] * tolerance < base["speedup"]:
            problems.append(
                f"{name}: speedup {now['speedup']}x is >{tolerance}x below baseline "
                f"{base['speedup']}x"
            )
    scale = measured["calibration_s"] / baseline["calibration_s"]
    for name, base_s in baseline.get("pipeline", {}).items():
        now_s = measured.get("pipeline", {}).get(name)
        if now_s is None:
            continue  # stage retired since the baseline was committed
        limit = base_s * scale * tolerance
        if now_s > limit:
            problems.append(
                f"pipeline {name}: {now_s:.4f}s exceeds {limit:.4f}s "
                f"(baseline {base_s:.4f}s x machine scale {scale:.2f} x tolerance {tolerance})"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=4_000,
        help="requests per generated trace (default 4000)",
    )
    parser.add_argument("--quick", action="store_true", help="quarter-size CI pass")
    parser.add_argument("--out", type=str, default=None, help="write results JSON here")
    parser.add_argument(
        "--history", type=str, default=None,
        help="append this run (speedups + commit + date) to a BENCH_history.jsonl",
    )
    parser.add_argument(
        "--check", type=str, default=None,
        help="compare against a baseline BENCH_pipeline.json; non-zero exit on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.5,
        help="allowed regression factor for --check (default 1.5)",
    )
    args = parser.parse_args(argv)
    n = max(500, args.requests // 4) if args.quick else args.requests
    results = run_benchmarks(n)

    print(f"pipeline stages (n={n}, best of {_REPS}):")
    for name, seconds in results["pipeline"].items():
        print(f"  {name:>16}: {seconds * 1e3:8.1f} ms")
    print("engine stages (before -> after):")
    for name, stage in results["stages"].items():
        print(
            f"  {name:>28}: {stage['before_s'] * 1e3:8.1f} ms -> "
            f"{stage['after_s'] * 1e3:8.1f} ms  ({stage['speedup']}x)"
        )
    if args.out:
        Path(args.out).write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
        print(f"results written to {args.out}")
    if args.history:
        from history import append_history

        line = append_history(results, args.history)
        print(f"history line appended to {args.history} (commit {line['commit']})")
    if args.check:
        baseline = json.loads(Path(args.check).read_text(encoding="utf-8"))
        problems = check_regressions(results, baseline, args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION: {problem}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.check} (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
