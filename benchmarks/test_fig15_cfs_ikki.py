"""Figure 15: distribution detail for CFS (MSPS) and ikki (FIU).

Paper's claims: the reconstructed distribution leans toward shorter
times — for CFS the median drops from 17 ms to 0.6 ms; for ikki the
value that bounded 1% of old gaps bounds ~90% of reconstructed ones.
"""

from __future__ import annotations

from repro.experiments import fig15_distribution, format_table


def test_fig15_cfs_ikki(benchmark, show):
    result = benchmark.pedantic(
        fig15_distribution, kwargs={"n_requests": 5000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 15: median T_intt, target vs TraceTracker"))

    for workload in ("CFS", "ikki"):
        medians = result.median_us[workload]
        # The reconstruction leans toward the short side...
        assert medians["TraceTracker"] < medians["Target"], workload
        # ...by a large factor (flash vs disk service times).
        assert medians["Target"] / medians["TraceTracker"] > 3, workload
