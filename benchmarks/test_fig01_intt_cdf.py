"""Figure 1: CDFs of inter-arrival times — OLD, NEW, Revision, Acceleration.

Paper's claims: Acceleration's curve is a pure left-shift of OLD that
undercuts the real NEW timing and loses ~98% of user idle time;
Revision tracks NEW's latency scale but still loses most idle periods.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig1_intt_cdf, format_cdf_series, format_table


def test_fig01_intt_cdf(benchmark, show):
    result = benchmark.pedantic(
        fig1_intt_cdf, kwargs={"n_requests": 5000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 1: inter-arrival time summary"))
    show(format_cdf_series(result.series))

    # NEW is much faster than OLD (flash vs disk).
    assert result.median_us["NEW"] < result.median_us["OLD"] / 3
    # Acceleration is a blind 100x left-shift of OLD.
    assert result.median_us["Acceleration"] * 100 == pytest.approx(result.median_us["OLD"])
    # Both naive methods land below the genuine NEW timing at the median.
    assert result.median_us["Acceleration"] < result.median_us["NEW"]
    assert result.median_us["Revision"] < result.median_us["NEW"]
    # Both lose the overwhelming majority of user idle time.
    assert result.idle_loss_vs_new["Acceleration"] > 0.9
    assert result.idle_loss_vs_new["Revision"] > 0.6
