"""Figure 3: longer/equal/shorter breakdown of reconstructed T_intt.

Paper's claims: ~98.6% of Acceleration's gaps are shorter than the real
NEW gaps; Revision is mostly shorter too (77.8% average) with a small
'equal' slice (17.8%) and a few longer gaps from replaying async
requests synchronously.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig3_breakdown, format_table
from repro.experiments.figures import FIG3_WORKLOADS


def test_fig03_breakdown(benchmark, show):
    result = benchmark.pedantic(
        fig3_breakdown, kwargs={"n_requests": 3000}, rounds=1, iterations=1
    )
    show(format_table(result.rows(), "Figure 3: T_intt breakdown vs real system"))

    for name in FIG3_WORKLOADS:
        acc = result.acceleration[name]
        rev = result.revision[name]
        # Acceleration: the overwhelming majority of gaps too short.
        assert acc.shorter > 0.7, name
        # Revision: mostly shorter as well — idles and async overlap lost.
        assert rev.shorter > 0.5, name
        # Revision keeps a small but non-trivial equal band on average.
        assert rev.shorter > rev.longer, name
    mean_acc_shorter = float(np.mean([b.shorter for b in result.acceleration.values()]))
    mean_rev_shorter = float(np.mean([b.shorter for b in result.revision.values()]))
    assert mean_acc_shorter > 0.75
    assert mean_rev_shorter > 0.6
