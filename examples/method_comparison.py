#!/usr/bin/env python3
"""Compare the five reconstruction methods against ground truth.

Reproduces the core of the paper's Figures 1/12 interactively: one
workload, one OLD/NEW trace pair sharing the same user behaviour, five
reconstruction methods scored on how closely their timing matches the
trace genuinely collected on the target system.

Run:  python examples/method_comparison.py [workload]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import standard_methods
from repro.experiments import build_pair_for, format_table, format_us, new_node
from repro.metrics import intt_breakdown, intt_gap_stats, ks_distance


def main(workload: str = "MSNFS") -> None:
    pair = build_pair_for(workload, n_requests=6_000)
    print(f"workload {workload}: OLD on {pair.old.metadata['collected_on']}, "
          f"ground truth on {pair.new.metadata['collected_on']}")
    print(f"OLD duration {format_us(pair.old.duration)}, "
          f"NEW duration {format_us(pair.new.duration)}")
    print()

    rows = []
    for method in standard_methods():
        reconstructed = method.reconstruct(pair.old, new_node())
        breakdown = intt_breakdown(reconstructed, pair.new).as_percentages()
        stats = intt_gap_stats(reconstructed, pair.new)
        rows.append(
            {
                "method": method.name,
                "ks_to_truth": round(ks_distance(reconstructed, pair.new), 4),
                "mean_gap_err": format_us(stats["mean_us"]),
                "equal%": breakdown["equal"],
                "shorter%": breakdown["shorter"],
                "longer%": breakdown["longer"],
                "duration": format_us(reconstructed.duration),
                "median_intt": format_us(float(np.median(reconstructed.inter_arrival_times()))),
            }
        )
    rows.append(
        {
            "method": "(ground truth)",
            "ks_to_truth": 0.0,
            "mean_gap_err": "0 us",
            "equal%": 100.0,
            "shorter%": 0.0,
            "longer%": 0.0,
            "duration": format_us(pair.new.duration),
            "median_intt": format_us(float(np.median(pair.new.inter_arrival_times()))),
        }
    )
    print(format_table(rows, f"Reconstruction accuracy on {workload}"))
    print()
    print("Reading the table: Acceleration/Revision collapse the idle structure")
    print("(tiny durations, large KS); TraceTracker preserves it and lands the")
    print("closest to the trace actually collected on the flash node.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "MSNFS")
