#!/usr/bin/env python3
"""Verify the idle inference with known injected idle periods.

Reproduces the Section V-A methodology end to end: idle periods of a
known length are injected at known places into an old trace; the trace
is reconstructed on the flash array; then the injected idles are looked
for in the *reconstructed* trace and scored (Detection, Len(TP),
Len(FP)).

Run:  python examples/verify_inference.py
"""

from __future__ import annotations

import numpy as np

from dataclasses import replace

from repro import TraceTracker, collect_trace, generate_intents, get_spec, inject_idles
from repro.experiments import format_table, format_us, new_node, old_node
from repro.metrics import score_inference
from repro.workloads import IdleProcess


def verify(workload: str, period_us: float, known_tsdev: bool) -> dict[str, object]:
    """One verification run: inject -> reconstruct -> score.

    The workload's *natural* idles are switched off so the injected
    idles are the only idle ground truth — otherwise every genuine user
    idle the model (correctly) finds would be scored as a false
    positive.  This mirrors the Figure 10/11 harness.
    """
    spec = replace(
        get_spec(workload).scaled(5_000),
        idle=IdleProcess(idle_fraction=0.0, cpu_burst_mean_us=3.0, cpu_burst_sigma=0.4),
    )
    old = collect_trace(generate_intents(spec), old_node(), record_device_times=known_tsdev)
    injected, record = inject_idles(old, period_us=period_us, fraction=0.10, seed=11)

    result = TraceTracker().reconstruct(injected, new_node())
    new = result.trace
    estimated_idle = np.clip(new.inter_arrival_times() - new.device_times()[:-1], 0.0, None)
    score = score_inference(record, estimated_idle, min_idle_us=10.0)
    return {
        "workload": workload,
        "tsdev": "measured" if known_tsdev else "inferred",
        "injected": format_us(period_us),
        "detection_tp%": round(score.detection_tp * 100, 1),
        "len_tp%": round(score.len_tp * 100, 1),
        "detection_fp%": round(score.detection_fp * 100, 1),
        "len_fp": format_us(score.len_fp_us),
    }


def main() -> None:
    rows = []
    for period in (100.0, 1_000.0, 10_000.0, 100_000.0):
        rows.append(verify("CFS", period, known_tsdev=True))
        rows.append(verify("ikki", period, known_tsdev=False))
    print(format_table(rows, "Idle-inference verification (paper Section V-A)"))
    print()
    print("Expected shapes: detection climbs with the injected period (small")
    print("idles hide inside device latency); the measured-T_sdev path has")
    print("near-zero false positives, the inferred path pays a mechanical-")
    print("delay-sized Len(FP) — exactly the paper's Figure 10/11 story.")


if __name__ == "__main__":
    main()
