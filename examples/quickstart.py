#!/usr/bin/env python3
"""Quickstart: reconstruct an old block trace for a modern flash array.

The three-step TraceTracker flow:

1. get an "old" block trace (here: collected on a simulated 2007-era
   HDD server from a synthetic MSNFS-like workload);
2. run the hardware/software co-evaluation — infer the old system's
   latency model, extract per-request idle time, replay on the target;
3. inspect the remastered trace.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FlashArray,
    HDDModel,
    TraceTracker,
    collect_trace,
    generate_intents,
    get_spec,
)
from repro.experiments import format_us
from repro.trace import trace_statistics


def main() -> None:
    # -- step 1: an old trace ------------------------------------------------
    # Real users would load one with repro.load_trace(path, fmt="msrc").
    spec = get_spec("MSNFS").scaled(8_000)
    old_trace = collect_trace(generate_intents(spec), HDDModel())
    print("OLD trace:", old_trace)
    print("  ", trace_statistics(old_trace).as_dict())

    # -- step 2: reconstruct for the new system -------------------------------
    target = FlashArray()  # 4x NVMe SSDs, the paper's evaluation node
    tracker = TraceTracker()
    result = tracker.reconstruct(old_trace, target)

    # -- step 3: inspect -------------------------------------------------------
    new_trace = result.trace
    print("NEW trace:", new_trace)
    print("  ", trace_statistics(new_trace).as_dict())

    extraction = result.extraction
    print()
    print(f"idle-bearing gaps : {extraction.idle_frequency():.1%}")
    print(f"total idle kept   : {format_us(extraction.total_idle_us())}")
    print(f"async submissions : {len(result.async_indices)} gaps revived")
    speedup = old_trace.duration / new_trace.duration
    print(f"trace duration    : {format_us(old_trace.duration)} -> "
          f"{format_us(new_trace.duration)}  ({speedup:.2f}x denser)")
    if extraction.report is not None:
        print("inferred model    :", extraction.report.model.describe())
    else:
        print("device times were measured (T_sdev-known trace); inference skipped")


if __name__ == "__main__":
    main()
