#!/usr/bin/env python3
"""Bring your own workload and your own hardware.

Shows the extension points a downstream user needs:

- a custom :class:`WorkloadSpec` (a bursty OLTP-like log writer);
- a custom old system (a slow 5400 rpm laptop disk);
- a custom target (a single small SSD rather than the 4-wide array);
- the full reconstruction plus the idle breakdown analysis.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro import (
    FlashGeometry,
    FlashSSD,
    HDDGeometry,
    HDDModel,
    TraceTracker,
    collect_trace,
    generate_intents,
)
from repro.experiments import format_table, format_us
from repro.metrics import idle_breakdown
from repro.workloads import IdleProcess, SizeMix, WorkloadSpec


def main() -> None:
    # An OLTP-ish pattern: small synchronous log appends (sequential
    # writes) mixed with random index reads, short think times, rare
    # but long user idles (batch windows).
    oltp = WorkloadSpec(
        name="oltp-log",
        category="custom",
        n_requests=6_000,
        read_fraction=0.35,
        seq_run_continue=0.6,
        size_mix=SizeMix(sizes=(8, 16, 128), weights=(0.6, 0.3, 0.1)),
        idle=IdleProcess(
            idle_fraction=0.05,
            idle_median_us=2_000_000.0,  # 2 s batch pauses
            idle_sigma=1.2,
            cpu_burst_mean_us=25.0,
        ),
        async_fraction=0.3,
        seed=77,
    )

    laptop_disk = HDDModel(
        geometry=HDDGeometry(rpm=5400.0, avg_seek_ms=12.0, sectors_per_track=1200)
    )
    small_ssd = FlashSSD(
        geometry=FlashGeometry(channels=4, dies_per_channel=2, write_buffer_kb=128)
    )

    old = collect_trace(generate_intents(oltp), laptop_disk, record_device_times=False)
    print(f"old trace on {laptop_disk.name}: {old}")

    result = TraceTracker().reconstruct(old, small_ssd)
    print(f"new trace on {small_ssd.name}: {result.trace}")
    report = result.extraction.report
    assert report is not None, "bare trace must go through inference"
    print("\ninferred latency model of the laptop disk:")
    print(format_table([
        {"coefficient": k, "value": round(v, 3)} for k, v in report.model.describe().items()
    ]))
    if report.fallbacks:
        print("inference notes:", *report.fallbacks, sep="\n  - ")

    breakdown = idle_breakdown(result.extraction, min_idle_us=100.0)
    print()
    print(format_table(
        [
            {"bucket": k, "frequency%": round(breakdown.frequency[k] * 100, 1),
             "period%": round(breakdown.period[k] * 100, 1)}
            for k in breakdown.frequency
        ],
        "Idle breakdown of the reconstructed workload",
    ))
    print(f"\ndurations: {format_us(old.duration)} (disk) -> "
          f"{format_us(result.trace.duration)} (ssd)")


if __name__ == "__main__":
    main()
