#!/usr/bin/env python3
"""Regenerate the workload catalog and its Table I style report.

Walks the 31-workload catalog (FIU, MSPS, MSRC), collects one trace per
workload on the OLD node, prints the characteristics table, and
round-trips one trace through every supported on-disk format.

Run:  python examples/catalog_report.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import collect_trace, generate_intents, get_spec, load_trace, workload_names
from repro.experiments import format_table, old_node
from repro.trace import dump_trace, trace_statistics
from repro.workloads import TABLE1_N_TRACES


def main() -> None:
    rows = []
    sample_trace = None
    for name in workload_names():
        spec = get_spec(name).scaled(2_000)
        trace = collect_trace(generate_intents(spec), old_node())
        stats = trace_statistics(trace)
        rows.append(
            {
                "workload": name,
                "category": spec.category,
                "paper_traces": TABLE1_N_TRACES[name],
                "avg_kb": round(stats.mean_request_kb, 2),
                "read%": round(stats.read_fraction * 100, 1),
                "seq%": round(stats.sequential_fraction * 100, 1),
                "iops": round(stats.iops, 1),
            }
        )
        if name == "MSNFS":
            sample_trace = trace
    print(format_table(rows, "Workload catalog (Table I shape, scaled)"))
    total = sum(TABLE1_N_TRACES.values())
    print(f"\npaper trace inventory: {total} block traces across {len(rows)} workloads")

    # Round-trip the MSNFS trace through every writer/parser pair.
    assert sample_trace is not None
    with tempfile.TemporaryDirectory() as tmp:
        for fmt in ("internal", "msrc", "blktrace"):
            path = dump_trace(sample_trace, Path(tmp) / f"msnfs.{fmt}", fmt=fmt)
            size_kb = path.stat().st_size / 1024
            note = ""
            if fmt in ("internal", "msrc"):
                reloaded = load_trace(path, fmt=fmt)
                note = f"-> reloaded {len(reloaded)} requests"
            print(f"wrote {fmt:9s} {size_kb:8.1f} KB  {note}")


if __name__ == "__main__":
    main()
