"""The figure sweeps are campaign instances — bit-identically.

Each test recomputes a figure the way `experiments.figures` did before
the campaign refactor (inline loops over `build_pair_for` /
`collect_trace_cached`) and asserts the campaign-backed figure function
returns *exactly* the same floats.
"""

from __future__ import annotations

from repro.core.baselines import (
    Acceleration,
    Dynamic,
    FixedThreshold,
    Revision,
    TraceTrackerMethod,
)
from repro.experiments import figures
from repro.experiments.nodes import new_node, old_node
from repro.experiments.pairs import build_pair_for
from repro.inference.idle import extract_idle
from repro.metrics.breakdown import average_idle_us, idle_breakdown
from repro.metrics.comparison import intt_gap_stats
from repro.workloads.catalog import get_spec
from repro.workloads.materialize import collect_trace_cached

WORKLOADS = ("MSNFS", "ikki")
N = 600


def test_fig13_campaign_path_bit_identical():
    result = figures.fig13_intt_gap(workloads=WORKLOADS, n_requests=N)
    for name in WORKLOADS:
        pair = build_pair_for(name, n_requests=N)
        tt = TraceTrackerMethod().reconstruct(pair.old, new_node())
        for method in (Acceleration(100.0), Revision(), FixedThreshold(10_000.0), Dynamic()):
            expected = intt_gap_stats(method.reconstruct(pair.old, new_node()), tt)["mean_us"]
            assert result.gaps_us[name][method.name] == expected


def test_fig14_campaign_path_bit_identical():
    result = figures.fig14_target_diff(workloads=WORKLOADS, n_requests=N)
    for name in WORKLOADS:
        pair = build_pair_for(name, n_requests=N)
        tt = TraceTrackerMethod().reconstruct(pair.old, new_node())
        stats = intt_gap_stats(pair.old, tt)
        assert result.avg_us[name] == stats["mean_us"]
        assert result.max_us[name] == stats["max_us"]
        assert result.signed_avg_us[name] == stats["mean_signed_us"]


def _old_trace(name: str):
    spec = get_spec(name)
    return spec, collect_trace_cached(
        spec.scaled(N),
        old_node(),
        record_device_times=spec.category in ("MSPS", "MSRC"),
    )


def test_fig16_campaign_path_bit_identical():
    result = figures.fig16_avg_idle(workloads=WORKLOADS, n_requests=N)
    for name in WORKLOADS:
        spec, old = _old_trace(name)
        expected = average_idle_us(
            extract_idle(old), min_idle_us=figures.USER_IDLE_THRESHOLD_US
        )
        assert result.avg_idle_us[name] == expected
        assert result.category_of[name] == spec.category


def test_fig17_campaign_path_bit_identical():
    result = figures.fig17_idle_breakdown(workloads=WORKLOADS, n_requests=N)
    for name in WORKLOADS:
        __, old = _old_trace(name)
        expected = idle_breakdown(
            extract_idle(old), min_idle_us=figures.USER_IDLE_THRESHOLD_US
        )
        assert result.breakdowns[name] == expected


def test_campaign_specs_are_well_formed():
    for builder in (
        figures.fig13_campaign_spec,
        figures.fig14_campaign_spec,
        figures.fig16_campaign_spec,
        figures.fig17_campaign_spec,
    ):
        spec = builder(workloads=WORKLOADS, n_requests=N)
        # Round-trips through the dict form (what shard workers receive).
        from repro.campaign import CampaignSpec, expand

        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert len(expand(spec)) >= len(WORKLOADS)
