"""Unit tests for interval helpers and Table-I style statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    BlockTrace,
    OpType,
    interval_after_mask,
    read_fraction,
    sequentiality_fraction,
    summarize_pattern,
    trace_statistics,
    workload_table,
)


def ladder_trace() -> BlockTrace:
    # gaps: 10, 20, 30, 40
    return BlockTrace(
        timestamps=[0.0, 10.0, 30.0, 60.0, 100.0],
        lbas=[0, 8, 100, 108, 300],
        sizes=[8, 8, 8, 8, 8],
        ops=[0, 1, 0, 1, 0],
        name="ladder",
    )


class TestIntervalHelpers:
    def test_interval_after_mask_attributes_gaps_to_leading_request(self):
        t = ladder_trace()
        reads = t.read_mask()
        gaps = interval_after_mask(t, reads)
        # Reads at indices 0, 2 (index 4 has no following gap).
        np.testing.assert_allclose(gaps, [10.0, 30.0])

    def test_interval_after_mask_checks_length(self):
        t = ladder_trace()
        with pytest.raises(ValueError, match="length"):
            interval_after_mask(t, np.ones(3, dtype=bool))

    def test_interval_after_mask_short_trace(self):
        t = BlockTrace([0.0], [0], [8], [0])
        assert interval_after_mask(t, np.array([True])).size == 0

    def test_fractions(self):
        t = ladder_trace()
        assert read_fraction(t) == pytest.approx(3 / 5)
        # Sequential only at index 1 (8 == 0+8) and 3 (108 == 100+8).
        assert sequentiality_fraction(t) == pytest.approx(2 / 5)

    def test_fractions_on_empty(self):
        t = BlockTrace([], [], [], [])
        assert read_fraction(t) == 0.0
        assert sequentiality_fraction(t) == 0.0

    def test_summarize_pattern(self):
        s = summarize_pattern(ladder_trace())
        assert s.n_requests == 5
        assert s.mean_intt_us == pytest.approx(25.0)
        assert s.median_intt_us == pytest.approx(25.0)
        assert s.distinct_sizes == 1
        assert s.duration_us == pytest.approx(100.0)
        d = s.as_dict()
        assert d["n_requests"] == 5


class TestStatistics:
    def test_trace_statistics_values(self):
        t = ladder_trace()
        st = trace_statistics(t)
        assert st.n_requests == 5
        assert st.mean_request_kb == pytest.approx(4.0)
        assert st.total_gb == pytest.approx(5 * 8 * 512 / 1024**3)
        assert st.iops == pytest.approx(5 / (100e-6))
        assert st.as_dict()["name"] == "ladder"

    def test_workload_table_aggregates(self):
        traces = [ladder_trace(), ladder_trace()]
        row = workload_table(traces, workload="ladder", category="test")
        assert row.n_traces == 2
        assert row.avg_data_size_kb == pytest.approx(4.0)
        assert row.total_size_gb == pytest.approx(2 * 5 * 8 * 512 / 1024**3)

    def test_workload_table_empty(self):
        row = workload_table([], workload="none")
        assert row.n_traces == 0
        assert row.avg_data_size_kb == 0.0

    def test_workload_table_weighted_mean(self):
        small = BlockTrace([0.0, 1.0], [0, 8], [8, 8], [0, 0])
        big = BlockTrace([0.0, 1.0], [0, 64], [64, 64], [0, 0])
        row = workload_table([small, big], workload="mix")
        # 2 requests of 8 sectors + 2 of 64 => mean 36 sectors = 18 KB.
        assert row.avg_data_size_kb == pytest.approx(18.0)
