"""Bit-identity of the optional compiled replay kernels.

``repro.replay.fastpath`` keeps three tiers of the same serial chains:
the pure-Python reference, the strict-serial NumPy accumulation, and
(behind the ``repro[fast]`` extra) the numba-compiled loops.  Every
tier must produce bit-for-bit identical IEEE-754 stamps — the compiled
kernels are built without ``fastmath`` precisely so the operation
order is preserved.  The NumPy-tier tests run everywhere; the compiled
comparisons skip unless numba is importable (the dedicated CI leg
installs it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.replay import fastpath
from repro.replay.fastpath import (
    HAVE_NUMBA,
    ack_chain,
    ack_chain_np,
    ack_chain_py,
    fifo_chain,
    fifo_chain_py,
)


def _chain_inputs(n: int, seed: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Adversarial float columns: mixed magnitudes so any reassociation
    of the additions would show up at rounding level."""
    rng = np.random.default_rng(seed)
    t_cdel = np.exp(rng.uniform(np.log(1e-3), np.log(1e4), n))
    svc = np.exp(rng.uniform(np.log(1e-1), np.log(1e5), n))
    idle = np.exp(rng.uniform(np.log(1e-6), np.log(1e6), n - 1))
    return t_cdel, svc, idle


@pytest.mark.parametrize("seed", [0, 7, 23])
@pytest.mark.parametrize("n,i0,i1", [(1, 0, 1), (64, 0, 64), (64, 10, 50), (64, 63, 64)])
def test_ack_chain_np_matches_py(seed: int, n: int, i0: int, i1: int):
    t_cdel, __, idle = _chain_inputs(n, seed)
    acks_py = np.zeros(n)
    acks_np = np.zeros(n)
    clock_py = ack_chain_py(t_cdel, idle, 123.456, i0, i1, n, acks_py)
    clock_np = ack_chain_np(t_cdel, idle, 123.456, i0, i1, n, acks_np)
    np.testing.assert_array_equal(acks_py, acks_np)
    assert clock_py == clock_np


@pytest.mark.parametrize("seed", [1, 11])
@pytest.mark.parametrize("queue_depth", [1, 4])
def test_fifo_chain_dispatcher_matches_py(seed: int, queue_depth: int):
    n = 96
    t_cdel, svc, idle = _chain_inputs(n, seed)
    cols_py = [np.zeros(n) for _ in range(4)]
    cols_dsp = [np.zeros(n) for _ in range(4)]
    fifo_chain_py(t_cdel, svc, idle, queue_depth, *cols_py)
    fifo_chain(t_cdel, svc, idle, queue_depth, *cols_dsp)
    for a, b in zip(cols_py, cols_dsp):
        np.testing.assert_array_equal(a, b)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed (repro[fast] extra)")
class TestCompiledTier:
    """Compiled kernels vs the Python reference, bit for bit."""

    @pytest.fixture(autouse=True)
    def _force_numba(self):
        previous = fastpath.numba_enabled()
        fastpath.set_use_numba(True)
        yield
        fastpath.set_use_numba(previous)

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_compiled_ack_chain_bit_identical(self, seed: int):
        n = 128
        t_cdel, __, idle = _chain_inputs(n, seed)
        acks_py = np.zeros(n)
        acks_jit = np.zeros(n)
        clock_py = ack_chain_py(t_cdel, idle, 9.25, 0, n, n, acks_py)
        clock_jit = ack_chain(t_cdel, idle, 9.25, 0, n, n, acks_jit)
        np.testing.assert_array_equal(acks_py, acks_jit)
        assert clock_py == clock_jit

    @pytest.mark.parametrize("seed", [1, 11])
    @pytest.mark.parametrize("queue_depth", [1, 4])
    def test_compiled_fifo_chain_bit_identical(self, seed: int, queue_depth: int):
        n = 96
        t_cdel, svc, idle = _chain_inputs(n, seed)
        cols_py = [np.zeros(n) for _ in range(4)]
        cols_jit = [np.zeros(n) for _ in range(4)]
        fifo_chain_py(t_cdel, svc, idle, queue_depth, *cols_py)
        fifo_chain(t_cdel, svc, idle, queue_depth, *cols_jit)
        for a, b in zip(cols_py, cols_jit):
            np.testing.assert_array_equal(a, b)

    def test_compiled_engine_replay_bit_identical(self):
        """Whole-replay check: the engine with compiled chains enabled
        matches the engine with them disabled, stamp for stamp."""
        from repro.experiments import build_pair_for, new_node
        from repro.replay import replay_queue_depth
        from test_replay_batch import assert_replays_identical

        pair = build_pair_for("DAP", n_requests=300)
        idle = np.full(len(pair.old) - 1, 250.0)
        compiled = replay_queue_depth(pair.old, new_node(), idle_us=idle, queue_depth=8)
        fastpath.set_use_numba(False)
        python = replay_queue_depth(pair.old, new_node(), idle_us=idle, queue_depth=8)
        assert_replays_identical(compiled, python)
