"""Bulk parsers vs the line-by-line oracle: column identity + hardening.

The vectorised parsers in :mod:`repro.trace.io.bulk` must produce
column-identical traces to the row-wise parsers (the temporary test
oracle) on every dialect, including the optional issue/completion and
sync columns, and must harden the same way: CRLF line endings,
trailing whitespace, and malformed rows that raise a
:class:`TraceParseError` carrying the 1-based line number.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    BlockTrace,
    OpType,
    ParseError,
    TraceParseError,
    load_trace,
    parse_fiu,
    parse_fiu_bulk,
    parse_internal,
    parse_internal_bulk,
    parse_msps,
    parse_msps_bulk,
    parse_msrc,
    parse_msrc_bulk,
    write_csv,
)

_COLUMNS = ("timestamps", "lbas", "sizes", "ops", "issues", "completes", "syncs")


def assert_column_identical(a: BlockTrace, b: BlockTrace) -> None:
    for column in _COLUMNS:
        ca, cb = getattr(a, column), getattr(b, column)
        assert (ca is None) == (cb is None), f"column {column} presence differs"
        if ca is not None:
            np.testing.assert_array_equal(ca, cb, err_msg=f"column {column}")


@st.composite
def trace_texts(draw):
    """Random rows for every dialect, plus op-spelling variety."""
    n = draw(st.integers(min_value=1, max_value=80))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    ts = np.cumsum(rng.integers(1, 10**7, n))
    lbas = rng.integers(0, 1 << 40, n)
    sizes = rng.integers(1, 512, n)
    ops = rng.integers(0, 2, n)
    dev = rng.integers(1, 10**6, n)
    read_spelling = draw(st.sampled_from(["R", "r", "Read", "read", "0"]))
    write_spelling = draw(st.sampled_from(["W", "w", "Write", "write", "1"]))
    spell = [read_spelling if o == 0 else write_spelling for o in ops]
    return ts, lbas, sizes, ops, dev, spell


class TestColumnIdentity:
    @given(trace_texts())
    @settings(max_examples=25, deadline=None)
    def test_msrc(self, data):
        ts, lbas, sizes, _, dev, spell = data
        lines = [
            f"{ts[i]},host,0,{spell[i]},{lbas[i] * 512},{sizes[i] * 512},{dev[i]}"
            for i in range(len(ts))
        ]
        assert_column_identical(parse_msrc(lines), parse_msrc_bulk(lines))

    @given(trace_texts())
    @settings(max_examples=25, deadline=None)
    def test_fiu(self, data):
        ts, lbas, sizes, _, _, spell = data
        # Ragged rows: the optional trailing md5 appears on some lines.
        lines = [
            f"{ts[i] / 1e6:.6f} 12 proc {lbas[i]} {sizes[i]} {spell[i]} 8 1"
            + (" d41d8cd9" if i % 2 else "")
            for i in range(len(ts))
        ]
        assert_column_identical(parse_fiu(lines), parse_fiu_bulk(lines))

    @given(trace_texts())
    @settings(max_examples=25, deadline=None)
    def test_msps(self, data):
        ts, lbas, sizes, _, dev, spell = data
        lines = [
            f"{ts[i]:.3f} {ts[i] + dev[i]:.3f} {spell[i]} {lbas[i]} {sizes[i]}"
            for i in range(len(ts))
        ]
        assert_column_identical(parse_msps(lines), parse_msps_bulk(lines))

    @given(trace_texts(), st.booleans(), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_internal_round_trip(self, data, with_dev, with_sync):
        ts, lbas, sizes, ops, dev, _ = data
        rng_sync = np.arange(len(ts)) % 3 == 0
        trace = BlockTrace(
            timestamps=ts.astype(float) - float(ts[0]),
            lbas=lbas,
            sizes=sizes,
            ops=ops.astype(np.int8),
            issues=ts.astype(float) - float(ts[0]) if with_dev else None,
            completes=ts - float(ts[0]) + dev.astype(float) if with_dev else None,
            syncs=rng_sync if with_sync else None,
            name="prop",
        )
        buffer = io.StringIO()
        write_csv(trace, buffer)
        text = buffer.getvalue()
        line = parse_internal(text.split("\n"), name="prop")
        bulk = parse_internal_bulk(text, name="prop")
        assert_column_identical(line, bulk)
        assert line.has_device_times == with_dev
        assert line.has_sync_flags == with_sync

    def test_unsorted_input_sorts_identically(self):
        lines = [
            "300.0 400.0 R 0 8",
            "100.0 150.0 W 8 16",
            "100.0 120.0 R 16 8",  # tie: stable order must hold
            "200.0 210.0 W 24 8",
        ]
        assert_column_identical(parse_msps(lines), parse_msps_bulk(lines))


class TestHardening:
    """CRLF, trailing whitespace, malformed rows — both engines."""

    MSRC = "1000,host,0,Read,4096,8192,1200"

    @pytest.mark.parametrize("parse", [parse_msrc, parse_msrc_bulk])
    def test_crlf_and_trailing_whitespace(self, parse):
        clean = parse([self.MSRC, self.MSRC.replace("1000", "2000")])
        messy = parse(f"{self.MSRC}  \r\n{self.MSRC.replace('1000', '2000')}\t\r\n".split("\n"))
        assert_column_identical(clean, messy)

    @pytest.mark.parametrize("parse", [parse_msrc_bulk])
    def test_crlf_whole_string_input(self, parse):
        text = f"{self.MSRC}\r\n{self.MSRC.replace('1000', '2000')}\r\n"
        assert len(parse(text)) == 2

    @pytest.mark.parametrize(
        "parse,line,match",
        [
            (parse_msrc, "1,2,3", "line 2"),
            (parse_msrc_bulk, "1,2,3", "line 2"),
            (parse_msrc, "x,host,0,Read,0,512,1", "line 2"),
            (parse_msrc_bulk, "x,host,0,Read,0,512,1", "line 2"),
            (parse_msrc, "1,host,0,Read,0,0,1", "size"),
            (parse_msrc_bulk, "1,host,0,Read,0,0,1", "size"),
            (parse_fiu, "1.0 1 p 0 8", "line 2"),
            (parse_fiu_bulk, "1.0 1 p 0 8", "line 2"),
            (parse_msps, "100.0 50.0 R 0 8", "precedes"),
            (parse_msps_bulk, "100.0 50.0 R 0 8", "precedes"),
            (parse_msps, "1.0 2.0 Q 0 8", "line 2"),
            (parse_msps_bulk, "1.0 2.0 Q 0 8", "line 2"),
        ],
    )
    def test_malformed_rows_raise_with_line_number(self, parse, line, match):
        with pytest.raises(TraceParseError, match=match):
            parse(["# leading comment", line])

    @pytest.mark.parametrize("parse", [parse_msrc, parse_msrc_bulk])
    def test_line_number_points_at_offender(self, parse):
        good = self.MSRC
        with pytest.raises(TraceParseError) as info:
            parse([good, "", "# note", "broken,row"])
        assert info.value.lineno == 4
        assert "broken,row" in info.value.line

    @pytest.mark.parametrize("parse", [parse_internal, parse_internal_bulk])
    def test_internal_header_missing_complete(self, parse):
        with pytest.raises(TraceParseError, match="complete_us"):
            parse(["timestamp_us,lba,size_sectors,op,issue_us", "0.0,0,8,R,1.0"])

    @pytest.mark.parametrize("parse", [parse_internal, parse_internal_bulk])
    def test_internal_bad_header(self, parse):
        with pytest.raises(TraceParseError, match="header"):
            parse(["foo,bar,baz,qux", "1,2,3,R"])

    def test_parse_error_alias(self):
        assert ParseError is TraceParseError

    @pytest.mark.parametrize(
        "parse", [parse_msrc, parse_msrc_bulk, parse_fiu, parse_fiu_bulk,
                  parse_msps, parse_msps_bulk, parse_internal, parse_internal_bulk]
    )
    def test_empty_and_comment_only(self, parse):
        assert len(parse([])) == 0
        assert len(parse(["# only a comment", "", "   "])) == 0


class TestFastPathStaysFast:
    """The vectorised path must succeed *without* the oracle fallback.

    The public parsers fall back silently on data-shaped errors, so a
    broken fast path would make every parity test vacuously compare
    the oracle to itself; pinning the private fast functions directly
    keeps the >=5x ingestion speedup observable in CI.
    """

    def test_fast_paths_parse_canonical_inputs(self):
        from repro.trace.io import bulk

        msrc = "1000,host,0,Read,4096,8192,1200\n2000,host,0,Write,0,512,10\n"
        assert len(bulk._parse_msrc_fast(msrc, "m", True)) == 2
        fiu = "1.0 1 p 0 8 R 8 1\n2.0 1 p 8 8 W 8 1 md5\n"
        assert len(bulk._parse_fiu_fast(fiu, "f", True)) == 2
        msps = "0.0 150.0 R 0 8\n200.0 900.0 W 8 16\n"
        assert len(bulk._parse_msps_fast(msps, "s", True)) == 2
        internal = "timestamp_us,lba,size_sectors,op\n0.0,0,8,R\n5.0,8,16,W\n"
        assert len(bulk._parse_internal_fast(internal, "i", True)) == 2


class TestLoadTraceEngines:
    def test_engines_agree_on_disk(self, tmp_path):
        trace = BlockTrace([0.0, 5.0, 9.0], [0, 8, 64], [8, 8, 16], [0, 1, 0], name="d")
        path = tmp_path / "d.csv"
        with path.open("w") as handle:
            write_csv(trace, handle)
        bulk = load_trace(path)
        line = load_trace(path, engine="line")
        assert_column_identical(bulk, line)
        assert bulk.name == "d"

    def test_crlf_file_on_disk(self, tmp_path):
        path = tmp_path / "m.msrc"
        path.write_bytes(b"1000,h,0,Read,0,512,10\r\n2000,h,0,Write,512,512,10\r\n")
        assert len(load_trace(path, fmt="msrc")) == 2

    def test_unknown_engine_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("timestamp_us,lba,size_sectors,op\n")
        with pytest.raises(ValueError, match="engine"):
            load_trace(path, engine="warp")
