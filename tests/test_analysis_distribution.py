"""Unit tests for empirical distributions and CDF shape classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import DiscretePMF, EmpiricalCDF, cdf_shape_class, log_spaced_grid, quantize


class TestQuantize:
    def test_rounds_to_multiples(self):
        np.testing.assert_allclose(quantize(np.array([1.2, 2.6, 3.49]), 1.0), [1.0, 3.0, 3.0])

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            quantize(np.array([1.0]), 0.0)


class TestLogGrid:
    def test_covers_bounds(self):
        g = log_spaced_grid(1.0, 1000.0, points_per_decade=10)
        assert g[0] == pytest.approx(1.0)
        assert g[-1] == pytest.approx(1000.0)
        assert np.all(np.diff(g) > 0)

    def test_single_point_when_degenerate(self):
        assert len(log_spaced_grid(5.0, 5.0)) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            log_spaced_grid(0.0, 10.0)
        with pytest.raises(ValueError):
            log_spaced_grid(10.0, 1.0)


class TestEmpiricalCDF:
    def test_step_values(self):
        cdf = EmpiricalCDF(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == pytest.approx(0.25)
        assert cdf(2.5) == pytest.approx(0.5)
        assert cdf(10.0) == 1.0

    def test_vector_evaluation(self):
        cdf = EmpiricalCDF(np.array([1.0, 2.0]))
        out = cdf(np.array([0.0, 1.5, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_quantile_inverts(self):
        data = np.arange(1, 101, dtype=float)
        cdf = EmpiricalCDF(data)
        assert cdf.quantile(0.5) == pytest.approx(50.0)
        assert cdf.quantile(1.0) == 100.0
        assert cdf.quantile(0.0) == 1.0

    def test_quantile_bounds_checked(self):
        cdf = EmpiricalCDF(np.array([1.0]))
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([]))

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(np.array([1.0, np.nan]))

    def test_knots_are_strictly_increasing_and_end_at_one(self):
        cdf = EmpiricalCDF(np.array([3.0, 1.0, 3.0, 2.0, 3.0]))
        xs, ys = cdf.knots()
        assert np.all(np.diff(xs) > 0)
        assert ys[-1] == pytest.approx(1.0)
        assert np.all(np.diff(ys) > 0)

    def test_support_grid_positive(self):
        cdf = EmpiricalCDF(np.array([0.0, 1.0, 100.0]))
        g = cdf.support_grid()
        assert np.all(g > 0)


class TestDiscretePMF:
    def test_masses_sum_to_one(self):
        pmf = DiscretePMF.from_samples(np.array([1.0, 1.0, 2.0, 3.0]))
        assert pmf.masses.sum() == pytest.approx(1.0)
        assert pmf.mass_at(1.0) == pytest.approx(0.5)
        assert pmf.mass_at(99.0) == 0.0

    def test_quantisation_merges_atoms(self):
        pmf = DiscretePMF.from_samples(np.array([10.1, 10.2, 9.9, 50.0]), resolution=1.0)
        assert pmf.mass_at(10.0) == pytest.approx(0.75)

    def test_mode(self):
        pmf = DiscretePMF.from_samples(np.array([5.0, 5.0, 7.0]))
        assert pmf.mode() == 5.0

    def test_entropy_zero_for_single_atom(self):
        pmf = DiscretePMF.from_samples(np.array([4.0, 4.0]))
        assert pmf.entropy() == pytest.approx(0.0)

    def test_entropy_increases_with_spread(self):
        tight = DiscretePMF.from_samples(np.array([1.0] * 9 + [2.0]))
        flat = DiscretePMF.from_samples(np.arange(10, dtype=float))
        assert flat.entropy() > tight.entropy()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscretePMF.from_samples(np.array([]))


class TestShapeClass:
    def test_global_maxima(self, rng):
        # One tight mode: classic "global maxima" shape (Figure 5a).
        samples = rng.lognormal(np.log(200.0), 0.15, size=4000)
        assert cdf_shape_class(EmpiricalCDF(samples)) == "global-maxima"

    def test_multi_maxima(self, rng):
        # Two well-separated modes (Figure 5c).
        a = rng.lognormal(np.log(100.0), 0.2, size=2000)
        b = rng.lognormal(np.log(50_000.0), 0.2, size=2000)
        samples = np.concatenate([a, b])
        assert cdf_shape_class(EmpiricalCDF(samples)) == "multi-maxima"

    def test_chunky_middle(self, rng):
        # Mass spread over four decades with no dominant mode (Figure 5b).
        samples = np.exp(rng.uniform(np.log(10.0), np.log(1e5), size=4000))
        assert cdf_shape_class(EmpiricalCDF(samples)) == "chunky-middle"
