"""The shipped example campaign specs stay loadable and runnable.

Documented commands must not rot: every ``examples/*.yaml`` spec must
parse, expand to a non-empty grid (the device sweep to its advertised
>= 24 points), and the cheap ones must execute end-to-end.
"""

from __future__ import annotations

from pathlib import Path

import pytest

pytest.importorskip("yaml")

from repro.campaign import CampaignEngine, expand, load_spec

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
SPEC_PATHS = sorted(EXAMPLES_DIR.glob("*.yaml"))


def test_examples_exist():
    assert len(SPEC_PATHS) >= 4


@pytest.mark.parametrize("path", SPEC_PATHS, ids=lambda p: p.name)
def test_spec_loads_and_expands(path: Path):
    spec = load_spec(path)
    plan = expand(spec)
    assert len(plan) >= 1
    # Keys are unique across the grid and stable across expansions.
    assert len(set(plan.keys())) == len(plan)
    assert plan.keys() == expand(spec).keys()
    # Every device description resolves to a concrete simulator.
    for device in spec.devices:
        assert device.build().fingerprint()


def test_device_sweep_is_at_least_24_points():
    plan = expand(load_spec(EXAMPLES_DIR / "device_workload_sweep.yaml"))
    assert len(plan) >= 24
    assert len({p.device.name for p in plan.points}) >= 4


def test_raid_width_sweep_runs_end_to_end(tmp_path: Path):
    spec = load_spec(EXAMPLES_DIR / "raid_width_sweep.yaml").with_limit(2)
    result = CampaignEngine(spec, out_dir=tmp_path / "raid").run()
    assert result.n_computed == 2
    assert (tmp_path / "raid" / "report.md").exists()
    speedups = result.table.column("speedup")
    assert all(s > 0 for s in speedups)


def test_degraded_flash_sweep_smoke(tmp_path: Path):
    spec = load_spec(EXAMPLES_DIR / "degraded_flash_sweep.yaml").with_limit(2)
    result = CampaignEngine(spec, out_dir=tmp_path / "degflash").run()
    assert result.n_computed == 2
    # The full grid pairs every fault shape with the healthy baseline.
    full = expand(load_spec(EXAMPLES_DIR / "degraded_flash_sweep.yaml"))
    assert {p.device.name for p in full.points} == {
        "flash-healthy", "flash-offline", "flash-throttled", "flash-slow",
    }


def test_degraded_raid_ab_report(tmp_path: Path):
    """The A/B example emits confidence intervals and a verdict."""
    spec = load_spec(EXAMPLES_DIR / "degraded_raid_ab.yaml")
    assert spec.options["ab"] == {"baseline": "healthy", "treatment": "degraded"}
    result = CampaignEngine(spec, out_dir=tmp_path / "degraid").run()
    assert result.n_computed == len(expand(spec)) == 6
    report = (tmp_path / "degraid" / "report.md").read_text(encoding="utf-8")
    assert "A/B: degraded* vs healthy*" in report
    assert "ci95" in report and "verdict" in report
    assert "significant" in report
    # Three replicates per arm: the speedup row carries a real CI.
    speedups = result.table.column("speedup")
    assert len(speedups) == 6 and all(s > 0 for s in speedups)


def test_method_grid_exclude_filter_applies():
    spec = load_spec(EXAMPLES_DIR / "method_grid.yaml")
    plan = expand(spec)
    assert len(plan) == 3 * 5 - 1
    assert not any(
        p.workload == "prxy" and p.method == "acceleration:100" for p in plan.points
    )
