"""Unit tests for request grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import GroupKey, group_intervals, random_groups, sequential_size_groups
from repro.trace import BlockTrace, OpType


def grouped_trace() -> BlockTrace:
    # Requests: [rand R8, seq R8, rand W16, seq W16, rand R8]
    # gaps:       10        20       30        40
    return BlockTrace(
        timestamps=[0.0, 10.0, 30.0, 60.0, 100.0],
        lbas=[0, 8, 500, 516, 2000],
        sizes=[8, 8, 16, 16, 8],
        ops=[0, 0, 1, 1, 0],
    )


class TestGroupIntervals:
    def test_keys_and_membership(self):
        groups = group_intervals(grouped_trace())
        # Leading requests 0..3 contribute gaps.
        assert set(groups) == {
            GroupKey(False, OpType.READ, 8),
            GroupKey(True, OpType.READ, 8),
            GroupKey(False, OpType.WRITE, 16),
            GroupKey(True, OpType.WRITE, 16),
        }
        np.testing.assert_allclose(groups[GroupKey(False, OpType.READ, 8)], [10.0])
        np.testing.assert_allclose(groups[GroupKey(True, OpType.WRITE, 16)], [40.0])

    def test_min_samples_filters(self):
        groups = group_intervals(grouped_trace(), min_samples=2)
        assert groups == {}

    def test_gap_mask_restricts(self):
        mask = np.array([True, False, True, False])
        groups = group_intervals(grouped_trace(), gap_mask=mask)
        total = sum(len(v) for v in groups.values())
        assert total == 2

    def test_gap_mask_length_checked(self):
        with pytest.raises(ValueError, match="length"):
            group_intervals(grouped_trace(), gap_mask=np.array([True]))

    def test_gap_mask_all_false(self):
        mask = np.zeros(4, dtype=bool)
        assert group_intervals(grouped_trace(), gap_mask=mask) == {}

    def test_short_trace(self):
        t = BlockTrace([0.0], [0], [8], [0])
        assert group_intervals(t) == {}

    def test_total_gaps_partitioned(self):
        t = grouped_trace()
        groups = group_intervals(t)
        assert sum(len(v) for v in groups.values()) == len(t) - 1

    def test_large_trace_partition_is_consistent(self, old_trace_bare):
        groups = group_intervals(old_trace_bare)
        assert sum(len(v) for v in groups.values()) == len(old_trace_bare) - 1
        # Spot-check one group against a manual mask.
        key = max(groups, key=lambda k: len(groups[k]))
        seq = old_trace_bare.sequential_mask()[:-1]
        ops = old_trace_bare.ops[:-1]
        sizes = old_trace_bare.sizes[:-1]
        manual = old_trace_bare.inter_arrival_times()[
            (seq == key.sequential) & (ops == int(key.op)) & (sizes == key.size)
        ]
        np.testing.assert_allclose(np.sort(groups[key]), np.sort(manual))


class TestGroupViews:
    def test_sequential_size_groups(self):
        groups = group_intervals(grouped_trace())
        reads = sequential_size_groups(groups, OpType.READ)
        assert set(reads) == {8}
        writes = sequential_size_groups(groups, OpType.WRITE)
        assert set(writes) == {16}

    def test_random_groups(self):
        groups = group_intervals(grouped_trace())
        rand = random_groups(groups)
        assert all(not k.sequential for k in rand)
        assert len(rand) == 2

    def test_group_key_str(self):
        assert str(GroupKey(True, OpType.READ, 8)) == "seq-R-8"
        assert str(GroupKey(False, OpType.WRITE, 64)) == "rand-W-64"
