"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import (
    DiscretePMF,
    EmpiricalCDF,
    PchipInterpolator,
    paper_line_fit,
    steepness_score,
)
from repro.inference import LatencyModel
from repro.metrics.comparison import intt_breakdown
from repro.replay import revive_async
from repro.trace import BlockTrace, OpType
from repro.workloads import inject_idles

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

finite_floats = st.floats(
    min_value=1e-3, max_value=1e8, allow_nan=False, allow_infinity=False
)

samples_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=finite_floats,
)


@st.composite
def block_traces(draw, min_n: int = 2, max_n: int = 60, with_dev: bool = False):
    """Random valid BlockTrace with non-decreasing timestamps."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    gaps = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=n - 1,
            elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        )
    )
    ts = np.concatenate([[0.0], np.cumsum(gaps)])
    lbas = draw(
        hnp.arrays(dtype=np.int64, shape=n, elements=st.integers(min_value=0, max_value=10**9))
    )
    sizes = draw(
        hnp.arrays(dtype=np.int64, shape=n, elements=st.integers(min_value=1, max_value=2048))
    )
    ops = draw(hnp.arrays(dtype=np.int8, shape=n, elements=st.sampled_from([0, 1])))
    if with_dev:
        dev = draw(
            hnp.arrays(
                dtype=np.float64,
                shape=n,
                elements=st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
            )
        )
        return BlockTrace(ts, lbas, sizes, ops, issues=ts, completes=ts + dev)
    return BlockTrace(ts, lbas, sizes, ops)


# ----------------------------------------------------------------------
# CDF / PMF invariants
# ----------------------------------------------------------------------


class TestCDFProperties:
    @given(samples_arrays)
    def test_cdf_bounded_and_monotone(self, samples):
        cdf = EmpiricalCDF(samples)
        grid = np.linspace(samples.min() - 1, samples.max() + 1, 50)
        values = cdf.evaluate_on(grid)
        assert np.all(values >= 0) and np.all(values <= 1)
        assert np.all(np.diff(values) >= 0)
        assert cdf(samples.max()) == 1.0

    @given(samples_arrays)
    def test_quantile_is_pseudo_inverse(self, samples):
        cdf = EmpiricalCDF(samples)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            x = cdf.quantile(q)
            assert cdf(x) >= q - 1e-12

    @given(samples_arrays)
    def test_pmf_masses_sum_to_one(self, samples):
        pmf = DiscretePMF.from_samples(samples)
        assert abs(pmf.masses.sum() - 1.0) < 1e-9
        assert np.all(np.diff(pmf.values) > 0)

    @given(samples_arrays, st.floats(min_value=0.01, max_value=100.0))
    def test_quantised_pmf_still_sums_to_one(self, samples, resolution):
        pmf = DiscretePMF.from_samples(samples, resolution=resolution)
        assert abs(pmf.masses.sum() - 1.0) < 1e-9


class TestPchipProperties:
    @given(
        st.lists(finite_floats, min_size=3, max_size=20, unique=True),
    )
    def test_pchip_preserves_monotone_cdf(self, xs):
        x = np.sort(np.asarray(xs))
        y = np.linspace(0.1, 1.0, len(x))
        p = PchipInterpolator(x, y)
        grid = np.linspace(x[0], x[-1], 200)
        values = np.asarray(p(grid))
        assert np.all(np.diff(values) >= -1e-9)
        assert values.min() >= y[0] - 1e-9
        assert values.max() <= y[-1] + 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=15, unique=True))
    def test_pchip_interpolates_knots(self, xs):
        x = np.sort(np.asarray(xs))
        y = np.linspace(0.0, 1.0, len(x))
        p = PchipInterpolator(x, y)
        np.testing.assert_allclose(np.asarray(p(x)), y, atol=1e-9)


class TestSteepnessProperties:
    @given(samples_arrays)
    @settings(max_examples=50)
    def test_score_is_finite_and_bounded(self, samples):
        # An outlier sits strictly above the fit line (score > 0); the
        # line itself may dip negative, so the only upper bound is the
        # mass (<= 1) minus the line's value — finite in all cases.
        result = steepness_score(samples, resolution=1.0)
        assert np.isfinite(result.steepness)
        assert result.steepness >= 0.0
        if result.has_outlier:
            assert result.utmost_mass <= 1.0 + 1e-9

    @given(samples_arrays)
    @settings(max_examples=50)
    def test_fit_line_passes_through_mean(self, samples):
        pmf = DiscretePMF.from_samples(samples)
        if len(pmf) < 2:
            return
        fit = paper_line_fit(pmf.values, pmf.masses)
        assert abs(fit(np.mean(pmf.values)) - np.mean(pmf.masses)) < 1e-9


# ----------------------------------------------------------------------
# Trace transformation invariants
# ----------------------------------------------------------------------


class TestTraceProperties:
    @given(block_traces())
    @settings(max_examples=50)
    def test_gaps_non_negative_and_consistent(self, trace):
        gaps = trace.inter_arrival_times()
        assert (gaps >= 0).all()
        assert len(gaps) == len(trace) - 1
        np.testing.assert_allclose(gaps.sum(), trace.duration)

    @given(block_traces(), st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=50)
    def test_shift_preserves_gaps(self, trace, delta):
        shifted = trace.shifted(delta)
        np.testing.assert_allclose(
            shifted.inter_arrival_times(), trace.inter_arrival_times(), rtol=1e-9, atol=1e-6
        )

    @given(block_traces(min_n=3))
    @settings(max_examples=50)
    def test_rebase_starts_at_zero(self, trace):
        assert trace.rebased().timestamps[0] == 0.0

    @given(block_traces(min_n=2, with_dev=True))
    @settings(max_examples=50)
    def test_injection_monotone_and_accounted(self, trace):
        injected, record = inject_idles(trace, period_us=123.0, fraction=0.5, seed=1)
        assert np.all(np.diff(injected.timestamps) >= -1e-9)
        extra = injected.duration - trace.duration
        np.testing.assert_allclose(extra, record.total_injected_us(), rtol=1e-9, atol=1e-6)

    @given(block_traces(min_n=3, with_dev=True), st.data())
    @settings(max_examples=50)
    def test_revive_async_never_lengthens(self, trace, data):
        n_gaps = len(trace) - 1
        indices = data.draw(
            st.lists(st.integers(min_value=0, max_value=n_gaps - 1), unique=True, max_size=n_gaps)
        )
        out = revive_async(trace, np.asarray(sorted(indices), dtype=int))
        assert out.duration <= trace.duration + 1e-6
        assert np.all(np.diff(out.timestamps) >= -1e-9)


class TestModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        st.integers(min_value=1, max_value=4096),
    )
    def test_latency_model_ordering(self, beta, eta, tr, tw, movd, size):
        model = LatencyModel(beta, eta, tr, tw, movd)
        for op in (OpType.READ, OpType.WRITE):
            seq = model.tsdev(op, size, sequential=True)
            rand = model.tsdev(op, size, sequential=False)
            assert rand >= seq  # moving delay never negative
            assert model.tslat(op, size, True) >= seq  # channel adds time


class TestBreakdownProperties:
    @given(block_traces(min_n=3), block_traces(min_n=3))
    @settings(max_examples=50)
    def test_breakdown_fractions_sum_to_one(self, a, b):
        if len(a) != len(b):
            return
        breakdown = intt_breakdown(a, b)
        total = breakdown.longer + breakdown.equal + breakdown.shorter
        assert abs(total - 1.0) < 1e-9
