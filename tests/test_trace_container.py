"""Unit tests for BlockTrace and TraceBuilder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import BlockTrace, IORecord, OpType, TraceBuilder


def make_trace(n: int = 10, with_dev: bool = True) -> BlockTrace:
    ts = np.arange(n) * 100.0
    return BlockTrace(
        timestamps=ts,
        lbas=np.arange(n) * 8,
        sizes=np.full(n, 8),
        ops=np.tile([0, 1], n)[:n],
        issues=ts + 1.0 if with_dev else None,
        completes=ts + 50.0 if with_dev else None,
        name="t",
    )


class TestConstruction:
    def test_length_and_repr(self):
        t = make_trace(5)
        assert len(t) == 5
        assert "n=5" in repr(t)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="length"):
            BlockTrace([0.0, 1.0], [0], [8, 8], [0, 0])

    def test_unsorted_timestamps_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            BlockTrace([1.0, 0.0], [0, 8], [8, 8], [0, 0])

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            BlockTrace([0.0], [0], [0], [0])

    def test_issues_without_completes_rejected(self):
        with pytest.raises(ValueError, match="together"):
            BlockTrace([0.0], [0], [8], [0], issues=[0.0])

    def test_empty_trace_is_fine(self):
        t = BlockTrace([], [], [], [])
        assert len(t) == 0
        assert t.duration == 0.0

    def test_from_records_keeps_device_columns_only_when_complete(self):
        full = [
            IORecord(timestamp=0.0, lba=0, size=8, op=OpType.READ, issue=0.0, complete=10.0),
            IORecord(timestamp=5.0, lba=8, size=8, op=OpType.WRITE, issue=6.0, complete=20.0),
        ]
        t = BlockTrace.from_records(full)
        assert t.has_device_times
        partial = [
            IORecord(timestamp=0.0, lba=0, size=8, op=OpType.READ, issue=0.0, complete=10.0),
            IORecord(timestamp=5.0, lba=8, size=8, op=OpType.WRITE),
        ]
        t2 = BlockTrace.from_records(partial)
        assert not t2.has_device_times


class TestDerived:
    def test_inter_arrival_times(self):
        t = make_trace(4)
        np.testing.assert_allclose(t.inter_arrival_times(), [100.0, 100.0, 100.0])

    def test_device_times(self):
        t = make_trace(3)
        np.testing.assert_allclose(t.device_times(), [49.0, 49.0, 49.0])

    def test_device_times_raise_without_stamps(self):
        t = make_trace(3, with_dev=False)
        with pytest.raises(ValueError, match="stamps"):
            t.device_times()

    def test_sequential_mask(self):
        # LBAs step by exactly the size => all but first sequential.
        t = make_trace(5)
        mask = t.sequential_mask()
        assert not mask[0]
        assert mask[1:].all()

    def test_sequential_mask_detects_jumps(self):
        t = BlockTrace([0.0, 1.0, 2.0], [0, 8, 100], [8, 8, 8], [0, 0, 0])
        assert list(t.sequential_mask()) == [False, True, False]

    def test_read_write_masks_partition(self):
        t = make_trace(10)
        assert (t.read_mask() | t.write_mask()).all()
        assert not (t.read_mask() & t.write_mask()).any()

    def test_total_and_mean_bytes(self):
        t = make_trace(4)
        assert t.total_bytes() == 4 * 8 * 512
        assert t.mean_request_bytes() == pytest.approx(8 * 512)


class TestTransforms:
    def test_shifted_and_rebased(self):
        t = make_trace(3).shifted(1000.0)
        assert t.timestamps[0] == 1000.0
        r = t.rebased()
        assert r.timestamps[0] == 0.0
        assert r.issues is not None and r.issues[0] == pytest.approx(1.0)

    def test_with_timestamps_drops_device_stamps(self):
        t = make_trace(3)
        t2 = t.with_timestamps(np.array([0.0, 1.0, 2.0]))
        assert not t2.has_device_times
        np.testing.assert_array_equal(t2.lbas, t.lbas)

    def test_select_by_slice_and_mask(self):
        t = make_trace(10)
        assert len(t.select(slice(0, 3))) == 3
        mask = t.read_mask()
        sub = t.select(mask)
        assert len(sub) == int(mask.sum())
        assert (sub.ops == int(OpType.READ)).all()

    def test_getitem_int_returns_record(self):
        t = make_trace(3)
        rec = t[1]
        assert isinstance(rec, IORecord)
        assert rec.timestamp == 100.0

    def test_iteration_yields_records(self):
        t = make_trace(4)
        recs = list(t)
        assert len(recs) == 4
        assert all(isinstance(r, IORecord) for r in recs)

    def test_concat_rejects_overlap(self):
        a = make_trace(3)
        with pytest.raises(ValueError, match="overlap"):
            a.concat(make_trace(3))

    def test_concat_after_shift(self):
        a = make_trace(3)
        b = make_trace(3).shifted(1_000.0)
        c = a.concat(b)
        assert len(c) == 6
        assert c.has_device_times

    def test_drop_device_times_and_sync(self):
        t = make_trace(3)
        assert not t.drop_device_times().has_device_times
        assert t.drop_device_times().has_sync_flags is False


class TestBuilder:
    def test_builder_round_trip(self):
        b = TraceBuilder(name="b")
        b.append(0.0, 0, 8, 0, issue=1.0, complete=10.0)
        b.append(5.0, 8, 8, 1, issue=6.0, complete=30.0)
        t = b.build()
        assert len(t) == 2
        assert t.has_device_times
        assert t.name == "b"

    def test_builder_sorts_when_asked(self):
        b = TraceBuilder()
        b.append(10.0, 0, 8, 0)
        b.append(5.0, 8, 8, 0)
        t = b.build(sort=True)
        assert list(t.timestamps) == [5.0, 10.0]

    def test_builder_unsorted_build_raises_on_disorder(self):
        b = TraceBuilder()
        b.append(10.0, 0, 8, 0)
        b.append(5.0, 8, 8, 0)
        with pytest.raises(ValueError):
            b.build(sort=False)

    def test_inconsistent_device_stamp_use_rejected(self):
        b = TraceBuilder()
        b.append(0.0, 0, 8, 0, issue=1.0, complete=2.0)
        with pytest.raises(ValueError, match="inconsistent"):
            b.append(1.0, 8, 8, 0)

    def test_issue_without_complete_rejected(self):
        b = TraceBuilder()
        with pytest.raises(ValueError, match="completion"):
            b.append(0.0, 0, 8, 0, issue=1.0)

    def test_append_record(self):
        b = TraceBuilder()
        b.append_record(IORecord(timestamp=0.0, lba=0, size=8, op=OpType.READ))
        assert len(b) == 1
