"""Segment checkpoint format: append-only semantics, mixing, scanning.

The resume *contract* (kill → restart → zero recomputation → identical
table) is asserted for both formats in ``test_campaign_resume.py``;
this file pins the segment mechanics: files are append-only across
runs, torn lines are tolerated, the two formats mix freely, the resume
scan needs exactly one directory listing, and ``spec.json`` is not
rewritten when nothing changed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.campaign import CampaignEngine, CampaignSpec, DeviceSpec, expand
from repro.campaign.engine import (
    _scan_checkpoints,
    _SegmentWriter,
    _write_checkpoint,
)
from repro.experiments.runner import ParallelRunner


def _spec(workloads=("MSNFS", "ikki")) -> CampaignSpec:
    return CampaignSpec(
        name="segments",
        action="reconstruct",
        workloads=workloads,
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=(200,),
    )


class TestSegmentWriter:
    def test_lazy_unique_files(self, tmp_path: Path):
        first = _SegmentWriter(tmp_path)
        second = _SegmentWriter(tmp_path)
        assert not (tmp_path / "runs").exists()  # nothing until an append
        first.append("k1", {"a": 1})
        second.append("k2", {"a": 2})
        first.close()
        second.close()
        segments = sorted((tmp_path / "runs").glob("segment-*.jsonl"))
        assert len(segments) == 2  # same pid, distinct counters
        rows = _scan_checkpoints(tmp_path, ["k1", "k2"])
        assert rows == {"k1": {"a": 1}, "k2": {"a": 2}}

    def test_torn_line_skipped_earlier_lines_kept(self, tmp_path: Path):
        writer = _SegmentWriter(tmp_path)
        writer.append("k1", {"a": 1})
        writer.append("k2", {"a": 2})
        writer.close()
        (segment,) = (tmp_path / "runs").glob("segment-*.jsonl")
        text = segment.read_text()
        segment.write_text(text[: text.rindex("{") + 5])  # tear the final row
        rows = _scan_checkpoints(tmp_path, ["k1", "k2"])
        assert rows == {"k1": {"a": 1}}

    def test_scan_ignores_unwanted_keys_and_junk(self, tmp_path: Path):
        writer = _SegmentWriter(tmp_path)
        writer.append("wanted", {"a": 1})
        writer.append("other-campaign", {"a": 9})
        writer.close()
        (tmp_path / "runs" / "notes.txt").write_text("not a checkpoint")
        _write_checkpoint(tmp_path, "filed", {"b": 2})
        rows = _scan_checkpoints(tmp_path, ["wanted", "filed", "missing"])
        assert rows == {"wanted": {"a": 1}, "filed": {"b": 2}}

    def test_scan_on_missing_dir(self, tmp_path: Path):
        assert _scan_checkpoints(tmp_path / "nope", ["k"]) == {}

    def test_duplicate_keys_newest_file_wins(self, tmp_path: Path):
        """A rerun's refreshed rows shadow stale ones, regardless of
        segment filename order or format."""
        stale = _SegmentWriter(tmp_path)
        stale.append("k", {"v": "stale"})
        stale.close()
        fresh = _SegmentWriter(tmp_path)
        fresh.append("k", {"v": "fresh"})
        fresh.close()
        old_seg, new_seg = sorted(
            (tmp_path / "runs").glob("segment-*.jsonl"),
            key=lambda p: p.stat().st_mtime_ns,
        )
        # Force mtimes apart (and filename order against mtime order).
        os.utime(old_seg, ns=(1_000, 1_000))
        os.utime(new_seg, ns=(2_000, 2_000))
        assert _scan_checkpoints(tmp_path, ["k"]) == {"k": {"v": "fresh"}}
        # A newer per-point JSON beats every older segment line...
        _write_checkpoint(tmp_path, "k", {"v": "json"})
        os.utime(tmp_path / "runs" / "k.json", ns=(3_000, 3_000))
        assert _scan_checkpoints(tmp_path, ["k"]) == {"k": {"v": "json"}}
        # ...and an older one does not.
        os.utime(tmp_path / "runs" / "k.json", ns=(500, 500))
        assert _scan_checkpoints(tmp_path, ["k"]) == {"k": {"v": "fresh"}}

    def test_later_lines_win_within_a_segment(self, tmp_path: Path):
        writer = _SegmentWriter(tmp_path)
        writer.append("k", {"v": "first"})
        writer.append("k", {"v": "second"})
        writer.close()
        assert _scan_checkpoints(tmp_path, ["k"]) == {"k": {"v": "second"}}


class TestEngineSegmentSemantics:
    def test_segments_are_append_only_across_resumes(self, tmp_path: Path):
        """A grown grid appends a new segment; old segments keep their
        exact bytes (append-only contract)."""
        out = tmp_path / "camp"
        CampaignEngine(_spec(("MSNFS",)), out_dir=out).run()
        before = {p.name: p.read_bytes() for p in (out / "runs").glob("segment-*.jsonl")}
        assert before
        CampaignEngine(_spec(("MSNFS", "ikki")), out_dir=out).run()
        after = {p.name: p.read_bytes() for p in (out / "runs").glob("segment-*.jsonl")}
        assert len(after) == len(before) + 1
        for name, content in before.items():
            assert after[name] == content

    def test_formats_mix_across_runs(self, tmp_path: Path):
        """Points checkpointed as JSON files resume under segments and
        vice versa — one campaign directory, both formats."""
        out = tmp_path / "camp"
        json_run = CampaignEngine(
            _spec(("MSNFS",)), out_dir=out, checkpoint_format="json"
        ).run()
        grown = CampaignEngine(_spec(("MSNFS", "ikki")), out_dir=out).run()
        assert json_run.n_computed == 1
        assert grown.n_resumed == 1 and grown.n_computed == 1
        again = CampaignEngine(
            _spec(("MSNFS", "ikki")), out_dir=out, checkpoint_format="json"
        ).run()
        assert again.n_resumed == 2 and again.n_computed == 0

    def test_spec_json_not_rewritten_when_unchanged(self, tmp_path: Path):
        out = tmp_path / "camp"
        spec = _spec()
        CampaignEngine(spec, out_dir=out, resume=False).run()
        stat_before = (out / "spec.json").stat()
        CampaignEngine(spec, out_dir=out, resume=False).run()
        stat_after = (out / "spec.json").stat()
        assert stat_after.st_mtime_ns == stat_before.st_mtime_ns
        changed = _spec(("MSNFS", "ikki", "CFS"))
        CampaignEngine(changed, out_dir=out, resume=False).run()
        assert json.loads((out / "spec.json").read_text())["workloads"] == [
            "MSNFS", "ikki", "CFS",
        ]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="checkpoint format"):
            CampaignEngine(_spec(), checkpoint_format="parquet")

    def test_jobs_segments_match_inline_json(self, tmp_path: Path):
        spec = _spec(("MSNFS", "ikki", "CFS"))
        inline = CampaignEngine(
            spec, out_dir=tmp_path / "a", jobs=1, checkpoint_format="json"
        ).run()
        sharded = CampaignEngine(spec, out_dir=tmp_path / "b", jobs=3).run()
        assert inline.table == sharded.table
        # every point checkpointed exactly once, across worker segments
        keys = expand(spec).keys()
        assert set(_scan_checkpoints(tmp_path / "b", keys)) == set(keys)


def _ctx_task(context, task):
    return (context, task, os.getpid())


class TestMapContext:
    def test_inline_context_passed_per_task(self):
        runner = ParallelRunner(jobs=1)
        out = runner.map(_ctx_task, [1, 2, 3], context={"spec": "x"})
        assert [(c, t) for c, t, _ in out] == [({"spec": "x"}, 1), ({"spec": "x"}, 2), ({"spec": "x"}, 3)]

    def test_pool_context_installed_once_per_worker(self):
        runner = ParallelRunner(jobs=2)
        out = runner.map(_ctx_task, list(range(6)), context=("payload",))
        assert [t for _, t, _ in out] == list(range(6))
        assert all(c == ("payload",) for c, _, _ in out)
        assert all(pid != os.getpid() for _, _, pid in out)  # ran in workers
