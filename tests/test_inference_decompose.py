"""Unit tests for the latency-model decomposition (Section III/IV).

The central test builds a trace with *known* ground-truth coefficients
and verifies the estimation recovers them; auxiliary tests exercise
representative-time location, fallbacks, and the two-pass refinement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import (
    InferenceConfig,
    estimate_model,
    representative_time,
)
from repro.trace import BlockTrace, OpType

BETA = 5.0
ETA = 6.0
TCDEL_R = 15.0
TCDEL_W = 20.0
TMOVD = 10_000.0


def synthetic_trace(
    n: int = 6000,
    idle_fraction: float = 0.15,
    async_fraction: float = 0.0,
    sizes=(8, 64),
    seed: int = 0,
) -> BlockTrace:
    """Trace whose gaps follow the paper's latency law exactly.

    Gap after request i:  tcdel(op) + slope(op)*size [+ TMOVD if random]
    + a small CPU burst, + occasional large idle, or just tcdel + burst
    for async submissions.
    """
    rng = np.random.default_rng(seed)
    ops = rng.choice([0, 1], size=n)
    size_arr = rng.choice(sizes, size=n)
    sequential = rng.random(n) < 0.5
    lbas = np.zeros(n, dtype=np.int64)
    cursor = 0
    for i in range(n):
        if sequential[i] and i > 0:
            lbas[i] = cursor
            ops[i] = ops[i - 1]
        else:
            cursor = int(rng.integers(0, 10**9))
            cursor -= cursor % 8
            lbas[i] = cursor
            sequential[i] = False if i == 0 else sequential[i]
        cursor = lbas[i] + size_arr[i]
    # Recompute true sequentiality the way the container defines it.
    seq_mask = np.zeros(n, dtype=bool)
    seq_mask[1:] = lbas[1:] == lbas[:-1] + size_arr[:-1]
    slopes = np.where(ops == 0, BETA, ETA)
    tcdel = np.where(ops == 0, TCDEL_R, TCDEL_W)
    tsdev = slopes * size_arr + np.where(seq_mask, 0.0, TMOVD)
    burst = rng.uniform(0.0, 4.0, size=n)
    gaps = tcdel + tsdev + burst
    is_async = rng.random(n) < async_fraction
    gaps[is_async] = tcdel[is_async] + burst[is_async]
    is_idle = rng.random(n) < idle_fraction
    gaps[is_idle] += rng.lognormal(np.log(50_000.0), 1.0, size=n)[is_idle]
    timestamps = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
    return BlockTrace(timestamps, lbas, size_arr, ops, name="synthetic")


class TestRepresentativeTime:
    def test_locates_dominant_mode(self, rng):
        samples = np.concatenate(
            [rng.normal(500.0, 5.0, 900), rng.uniform(1000, 100_000, 100)]
        )
        rep = representative_time(samples)
        assert rep == pytest.approx(500.0, rel=0.1)

    def test_single_value_group(self):
        assert representative_time(np.full(10, 77.0)) == 77.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            representative_time(np.array([]))

    def test_knot_subsampling_keeps_location(self, rng):
        samples = np.concatenate(
            [rng.normal(500.0, 5.0, 5000), rng.uniform(1000, 100_000, 500)]
        )
        full = representative_time(samples, InferenceConfig(max_cdf_knots=100_000))
        capped = representative_time(samples, InferenceConfig(max_cdf_knots=128))
        assert capped == pytest.approx(full, rel=0.2)


class TestCoefficientRecovery:
    def test_recovers_slopes_and_movd(self):
        trace = synthetic_trace()
        report = estimate_model(trace)
        model = report.model
        assert model.beta_us_per_sector == pytest.approx(BETA, rel=0.25)
        assert model.eta_us_per_sector == pytest.approx(ETA, rel=0.25)
        assert model.tmovd_us == pytest.approx(TMOVD, rel=0.25)

    def test_channel_delay_within_burst_band(self):
        # tcdel absorbs the CPU burst (0-4 us): estimate in [tcdel, tcdel+6].
        report = estimate_model(synthetic_trace())
        assert TCDEL_R - 2 <= report.model.tcdel_read_us <= TCDEL_R + 8
        assert TCDEL_W - 2 <= report.model.tcdel_write_us <= TCDEL_W + 8

    def test_async_contamination_handled_by_refinement(self):
        trace = synthetic_trace(async_fraction=0.25)
        refined = estimate_model(trace, InferenceConfig(refine_passes=1))
        assert refined.model.tmovd_us == pytest.approx(TMOVD, rel=0.3)

    def test_primary_path_reported(self):
        report = estimate_model(synthetic_trace())
        assert report.read is not None and report.write is not None
        assert {report.read.size_steep1, report.read.size_steep2} <= {8, 64}

    def test_diagnostics_consistent(self):
        report = estimate_model(synthetic_trace())
        read = report.read
        assert read is not None
        assert read.delta_t_us == pytest.approx(
            abs(read.t_rep_steep1_us - read.t_rep_steep2_us)
        )
        assert report.n_groups > 0


class TestFallbacks:
    def test_single_size_fallback(self):
        trace = synthetic_trace(sizes=(8,))
        report = estimate_model(trace)
        assert report.used_fallback
        assert any("single size" in note for note in report.fallbacks)
        # Model still usable.
        assert report.model.beta_us_per_sector > 0

    def test_read_only_trace_borrows_for_writes(self):
        rng = np.random.default_rng(1)
        n = 2000
        sizes = rng.choice([8, 64], size=n)
        gaps = TCDEL_R + BETA * sizes + rng.uniform(0, 2, n)
        lbas = np.zeros(n, dtype=np.int64)
        cursor = 0
        for i in range(n):
            lbas[i] = cursor
            cursor += int(sizes[i])
        ts = np.concatenate([[0.0], np.cumsum(gaps[:-1])])
        trace = BlockTrace(ts, lbas, sizes, np.zeros(n, dtype=int))
        report = estimate_model(trace)
        assert any("borrowing" in note for note in report.fallbacks)
        assert report.model.eta_us_per_sector == report.model.beta_us_per_sector

    def test_too_short_trace_rejected(self):
        trace = BlockTrace([0.0, 1.0], [0, 8], [8, 8], [0, 0])
        with pytest.raises(ValueError):
            estimate_model(trace)

    def test_tiny_groups_raise_helpfully(self):
        trace = BlockTrace(
            [0.0, 10.0, 20.0, 30.0],
            [0, 100, 200, 300],
            [8, 8, 8, 8],
            [0, 0, 0, 0],
        )
        with pytest.raises(ValueError, match="min_group_samples"):
            estimate_model(trace)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            InferenceConfig(resolution_us=0.0)
        with pytest.raises(ValueError):
            InferenceConfig(min_group_samples=1)
        with pytest.raises(ValueError):
            InferenceConfig(interpolation="nearest")
        with pytest.raises(ValueError):
            InferenceConfig(refine_passes=-1)
        with pytest.raises(ValueError):
            InferenceConfig(tmovd_candidates=0)

    def test_spline_config_runs(self):
        report = estimate_model(synthetic_trace(n=3000), InferenceConfig(interpolation="spline"))
        assert report.model.beta_us_per_sector > 0
