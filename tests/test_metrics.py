"""Unit tests for verification scores, comparisons, and breakdowns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import LatencyModel, extract_idle_with_model
from repro.metrics import (
    average_idle_us,
    idle_breakdown,
    intt_breakdown,
    intt_cdf,
    intt_gap_stats,
    ks_distance,
    median_log_ratio,
    score_inference,
)
from repro.trace import BlockTrace
from repro.workloads import inject_idles
from repro.workloads.idle_injection import InjectionRecord


def gap_trace(gaps: list[float]) -> BlockTrace:
    ts = np.concatenate([[0.0], np.cumsum(gaps)])
    n = len(ts)
    return BlockTrace(ts, np.arange(n) * 8, np.full(n, 8), np.zeros(n, dtype=int))


class TestScoreInference:
    def _record(self, indices, periods, n_gaps) -> InjectionRecord:
        return InjectionRecord(
            gap_indices=np.asarray(indices, dtype=int),
            periods_us=np.asarray(periods, dtype=float),
            n_gaps=n_gaps,
        )

    def test_perfect_detection(self):
        record = self._record([1, 3], [100.0, 200.0], 5)
        estimates = np.array([0.0, 100.0, 0.0, 200.0, 0.0])
        score = score_inference(record, estimates)
        assert score.tp == 2 and score.fp == 0 and score.fn == 0 and score.tn == 3
        assert score.detection_tp == 1.0
        assert score.detection_fp == 0.0
        assert score.len_tp == pytest.approx(1.0)

    def test_partial_length_recovery(self):
        record = self._record([0], [100.0], 2)
        score = score_inference(record, np.array([60.0, 0.0]))
        assert score.len_tp == pytest.approx(0.6)

    def test_overestimates_clamped(self):
        record = self._record([0], [100.0], 2)
        score = score_inference(record, np.array([500.0, 0.0]))
        assert score.len_tp == 1.0

    def test_false_positive_length(self):
        record = self._record([0], [100.0], 3)
        score = score_inference(record, np.array([100.0, 40.0, 0.0]))
        assert score.fp == 1
        assert score.len_fp_us == pytest.approx(40.0)
        np.testing.assert_allclose(score.len_fp_samples, [40.0])

    def test_false_negatives_counted(self):
        record = self._record([0, 1], [100.0, 100.0], 3)
        score = score_inference(record, np.array([0.0, 50.0, 0.0]))
        assert score.fn == 1 and score.tp == 1
        assert score.detection_tp == 0.5

    def test_min_idle_threshold(self):
        record = self._record([0], [100.0], 2)
        score = score_inference(record, np.array([5.0, 0.0]), min_idle_us=10.0)
        assert score.tp == 0 and score.fn == 1

    def test_length_mismatch_rejected(self):
        record = self._record([0], [100.0], 3)
        with pytest.raises(ValueError):
            score_inference(record, np.array([0.0]))

    def test_as_dict(self):
        record = self._record([0], [100.0], 2)
        d = score_inference(record, np.array([100.0, 0.0])).as_dict()
        assert d["tp"] == 1 and "detection_tp" in d


class TestInttBreakdown:
    def test_classification(self):
        ref = gap_trace([100.0, 100.0, 100.0])
        rec = gap_trace([100.0, 200.0, 40.0])
        b = intt_breakdown(rec, ref)
        assert b.equal == pytest.approx(1 / 3)
        assert b.longer == pytest.approx(1 / 3)
        assert b.shorter == pytest.approx(1 / 3)

    def test_tolerance_bands(self):
        ref = gap_trace([100.0])
        rec = gap_trace([104.0])  # within 5% rel tolerance
        assert intt_breakdown(rec, ref).equal == 1.0

    def test_abs_tolerance_for_tiny_gaps(self):
        ref = gap_trace([1.0])
        rec = gap_trace([2.5])  # diff 1.5 < abs tolerance 2
        assert intt_breakdown(rec, ref).equal == 1.0

    def test_percentages(self):
        ref = gap_trace([100.0, 100.0])
        rec = gap_trace([500.0, 500.0])
        pct = intt_breakdown(rec, ref).as_percentages()
        assert pct["longer"] == 100.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            intt_breakdown(gap_trace([1.0]), gap_trace([1.0, 2.0]))


class TestGapStats:
    def test_stats(self):
        a = gap_trace([100.0, 300.0])
        b = gap_trace([150.0, 100.0])
        stats = intt_gap_stats(a, b)
        assert stats["mean_us"] == pytest.approx(125.0)
        assert stats["max_us"] == pytest.approx(200.0)
        assert stats["mean_signed_us"] == pytest.approx(75.0)

    def test_identical_traces(self):
        a = gap_trace([10.0, 20.0])
        assert intt_gap_stats(a, a)["mean_us"] == 0.0


class TestDistributionDistances:
    def test_ks_zero_for_identical(self):
        a = gap_trace([10.0, 20.0, 30.0] * 10)
        assert ks_distance(a, a) == 0.0

    def test_ks_large_for_shifted(self):
        a = gap_trace([10.0] * 50)
        b = gap_trace([10_000.0] * 50)
        assert ks_distance(a, b) == pytest.approx(1.0)

    def test_median_log_ratio(self):
        a = gap_trace([1000.0] * 20)
        b = gap_trace([100.0] * 20)
        assert median_log_ratio(a, b) == pytest.approx(1.0)
        assert median_log_ratio(b, a) == pytest.approx(-1.0)

    def test_intt_cdf_clips_zeros(self):
        t = gap_trace([0.0, 10.0])
        cdf = intt_cdf(t)
        assert cdf.min > 0


class TestIdleBreakdown:
    def _extraction(self, gaps, tsdev=40.0):
        model = LatencyModel(tsdev / 8, tsdev / 8, 0.0, 0.0, 0.0)
        return extract_idle_with_model(gap_trace(list(gaps)), model)

    def test_bucket_assignment(self):
        # idle = gap - 40: [0, 5ms, 50ms, 500ms]
        ex = self._extraction([40.0, 5_040.0, 50_040.0, 500_040.0])
        b = idle_breakdown(ex)
        assert b.frequency["Tslat"] == pytest.approx(0.25)
        assert b.frequency["0-10ms"] == pytest.approx(0.25)
        assert b.frequency["10-100ms"] == pytest.approx(0.25)
        assert b.frequency[">100ms"] == pytest.approx(0.25)

    def test_period_dominated_by_long_idles(self):
        ex = self._extraction([40.0] * 9 + [1_000_040.0])
        b = idle_breakdown(ex)
        # One second of idle vs microseconds of service.
        assert b.period[">100ms"] > 0.99
        assert b.idle_frequency() == pytest.approx(0.1)

    def test_fractions_sum_to_one(self):
        ex = self._extraction([40.0, 100.0, 20_000.0, 500_000.0, 45.0])
        b = idle_breakdown(ex)
        assert sum(b.frequency.values()) == pytest.approx(1.0)
        assert sum(b.period.values()) == pytest.approx(1.0)

    def test_average_idle(self):
        ex = self._extraction([40.0, 140.0, 240.0])
        # idles: 0 (excluded), 100, 200.
        assert average_idle_us(ex) == pytest.approx(150.0)

    def test_no_idle_trace(self):
        ex = self._extraction([40.0, 40.0])
        assert average_idle_us(ex) == 0.0
        assert idle_breakdown(ex).idle_frequency() == 0.0


class TestEndToEndVerification:
    def test_injection_detected_on_known_tsdev_trace(self, old_trace):
        # Inject 50 ms idles into an MSPS-style trace and verify the
        # measured-tsdev path finds nearly all of them.
        injected, record = inject_idles(old_trace, period_us=50_000.0, fraction=0.1)
        from repro.inference import extract_idle

        ex = extract_idle(injected)
        score = score_inference(record, ex.tidle_us, min_idle_us=1.0)
        assert score.detection_tp > 0.95
        assert score.len_tp > 0.9
