"""Differential identity harness over the whole device zoo.

Every registry kind — healthy and degraded — must produce bitwise
identical replay stamps under every engine pairing:

- synchronous scalar replay vs the batch fast path;
- the production queue-depth engine vs its retained scalar oracle, at
  queue depth 1 (FIFO fast path) and 3 (event loop / plan engine);
- the columnar kernels vs the forced-scalar engines
  (``REPRO_SCALAR_KERNELS`` seam, toggled via ``set_force_scalar``);
- whole-stream ``service_batch`` pricing vs the same stream priced in
  two chunks (order-dependent state — stall ordinals, mirror round
  robin, SMR zone pointers — must advance identically).

The zoo itself (:func:`repro.campaign.devices.device_zoo`) is the
parametrisation source, and the coverage test pins it to the registry:
adding a device kind without a zoo entry fails here, so new models are
automatically locked into the identity matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.devices import DEVICE_KINDS, FAULT_PARAMS, build_device, device_zoo
from repro.replay import (
    replay_queue_depth,
    replay_queue_depth_scalar,
    replay_with_idle,
    replay_with_idle_batch,
)
from repro.storage import kernels
from repro.trace.trace import BlockTrace
from test_replay_batch import assert_replays_identical

ZOO = device_zoo()


def _zoo_trace(n: int = 60, seed: int = 17) -> tuple[BlockTrace, np.ndarray]:
    """Deterministic mixed read/write trace spanning the tiered split.

    LBAs range over [0, 20000) so the tiered zoo entries (flash tier
    below 8192 sectors) route requests to both tiers, and sizes stay
    below the flash write buffer often enough to exercise both the
    buffered and media write paths.
    """
    rng = np.random.default_rng(seed)
    trace = BlockTrace(
        timestamps=np.cumsum(rng.integers(1, 400, n)).astype(np.float64),
        lbas=rng.integers(0, 20_000, n),
        sizes=rng.integers(1, 96, n),
        ops=rng.integers(0, 2, n).astype(np.int8),
    )
    idle = rng.uniform(0.0, 5_000.0, n - 1)
    return trace, idle


def _build(entry: str):
    desc = dict(ZOO[entry])
    kind = desc.pop("kind")
    return build_device(kind, desc)


class TestZooCoverage:
    """The zoo is the registry's mirror — no kind or fault escapes it."""

    def test_every_registry_kind_in_zoo(self):
        zoo_kinds = {desc["kind"] for desc in ZOO.values()}
        assert zoo_kinds == set(DEVICE_KINDS)

    def test_every_fault_parameter_in_zoo(self):
        used = {key for desc in ZOO.values() for key in desc}
        missing = set(FAULT_PARAMS) - used
        assert not missing, f"fault parameters with no degraded zoo entry: {sorted(missing)}"

    def test_healthy_and_degraded_shapes_present(self):
        degraded = [
            name for name, desc in ZOO.items() if set(desc) & set(FAULT_PARAMS)
        ]
        healthy = [name for name in ZOO if name not in degraded]
        assert len(degraded) >= 8 and len(healthy) >= 8

    def test_fingerprints_distinct(self):
        prints = {name: _build(name).fingerprint() for name in ZOO}
        assert len(set(prints.values())) == len(prints)


class TestSyncReplayIdentity:
    """Scalar synchronous replay vs the batch fast path, bitwise."""

    @pytest.mark.parametrize("entry", sorted(ZOO))
    def test_sync_scalar_vs_batch(self, entry):
        trace, idle = _zoo_trace()
        scalar = replay_with_idle(trace, _build(entry), idle)
        batch = replay_with_idle_batch(trace, _build(entry), idle)
        assert_replays_identical(scalar, batch)


class TestQueueDepthIdentity:
    """Every queue-depth engine vs the scalar oracle, bitwise.

    Four differential columns per zoo entry: the scalar oracle is the
    ground truth, and the generic event loop (``events``), the
    per-event plan engine (``plan``), and the epoch-batched engine
    (``epoch``) must each reproduce its stamps exactly.  Plan-less
    devices route ``plan``/``epoch`` back to the event loop, so the
    parametrisation is uniform over the whole zoo — fault wrappers
    included.
    """

    @pytest.mark.parametrize("entry", sorted(ZOO))
    @pytest.mark.parametrize("queue_depth", [1, 3])
    @pytest.mark.parametrize("engine", ["events", "plan", "epoch"])
    def test_qdepth_vs_scalar_oracle(self, entry, queue_depth, engine):
        trace, idle = _zoo_trace()
        fast = replay_queue_depth(
            trace, _build(entry), idle_us=idle, queue_depth=queue_depth, engine=engine
        )
        oracle = replay_queue_depth_scalar(
            trace, _build(entry), idle_us=idle, queue_depth=queue_depth
        )
        assert_replays_identical(fast, oracle)

    @pytest.mark.parametrize("entry", sorted(ZOO))
    def test_epoch_identity_under_forced_bumps(self, entry):
        """Zero idle everywhere: the window bumps constantly, so the
        epoch engine's optimistic certificate fails and its rollback /
        serial-fallback path must still land on the oracle's stamps."""
        trace, __ = _zoo_trace()
        idle = np.zeros(len(trace) - 1)
        fast = replay_queue_depth(
            trace, _build(entry), idle_us=idle, queue_depth=2, engine="epoch"
        )
        oracle = replay_queue_depth_scalar(
            trace, _build(entry), idle_us=idle, queue_depth=2
        )
        assert_replays_identical(fast, oracle)


class TestCrossEngineIdentity:
    """Columnar engines vs forced-scalar engines, bitwise."""

    @pytest.mark.parametrize("entry", sorted(ZOO))
    def test_forced_scalar_matches_columnar(self, entry):
        trace, idle = _zoo_trace()
        columnar_sync = replay_with_idle_batch(trace, _build(entry), idle)
        columnar_qd = replay_queue_depth(
            trace, _build(entry), idle_us=idle, queue_depth=3
        )
        kernels.set_force_scalar(True)
        try:
            forced_sync = replay_with_idle_batch(trace, _build(entry), idle)
            forced_qd = replay_queue_depth(
                trace, _build(entry), idle_us=idle, queue_depth=3
            )
        finally:
            kernels.set_force_scalar(False)
        assert_replays_identical(columnar_sync, forced_sync)
        assert_replays_identical(columnar_qd, forced_qd)


class TestChunkedBatchPricing:
    """Whole-stream vs chunked ``service_batch``: state advances alike.

    Splitting a stream across two batch calls must price identically to
    one call — the order-dependent fault state (stall ordinals, mirror
    read counters, mid-trace switch indices, SMR append pointers, HDD
    RNG draws) has to advance by exactly the consumed prefix.
    """

    @pytest.mark.parametrize("entry", sorted(ZOO))
    @pytest.mark.parametrize("split", [1, 23, 30])
    def test_chunked_equals_whole(self, entry, split):
        trace, __ = _zoo_trace()
        ops, lbas, sizes = trace.ops, trace.lbas, trace.sizes
        whole = _build(entry).service_batch(ops, lbas, sizes)
        chunked_device = _build(entry)
        head = chunked_device.service_batch(ops[:split], lbas[:split], sizes[:split])
        tail = chunked_device.service_batch(ops[split:], lbas[split:], sizes[split:])
        if whole is None:
            # Streams the device refuses whole must not be priced
            # piecewise either once the refusing chunk is reached.
            assert head is None or tail is None
            return
        assert head is not None and tail is not None
        np.testing.assert_array_equal(np.concatenate([head, tail]), whole)
