"""The documentation system stays green: API build + link check.

``docs/build_docs.py`` is what CI runs with ``--strict``; these tests
run the same code in-process so a missing public docstring or a dead
relative markdown link fails the tier-1 suite too.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def build_docs():
    """The ``docs/build_docs.py`` module, imported by path."""
    spec = importlib.util.spec_from_file_location(
        "build_docs", REPO_ROOT / "docs" / "build_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["build_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_api_build_has_zero_warnings(build_docs, tmp_path: Path):
    names = build_docs.iter_module_names()
    assert "repro.campaign.engine" in names and "repro.core.stages" in names
    warnings = build_docs.build_api(tmp_path, names)
    assert warnings == []
    # One page per module plus the index, each carrying real content.
    assert (tmp_path / "index.md").exists()
    assert len(list(tmp_path.glob("*.md"))) == len(names) + 1
    stages = (tmp_path / "repro.core.stages.md").read_text(encoding="utf-8")
    assert "## class `StagedReconstructionPipeline`" in stages


def test_committed_api_reference_is_present():
    committed = REPO_ROOT / "docs" / "api"
    assert (committed / "index.md").exists()
    assert (committed / "repro.campaign.spec.md").exists()
    assert (committed / "repro.trace.io.reader.md").exists()


def test_markdown_links_resolve(build_docs):
    assert build_docs.check_links(REPO_ROOT) == []


def test_dead_link_detected(build_docs, tmp_path: Path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("[broken](docs/missing.md) [ok](#x)")
    warnings = build_docs.check_links(tmp_path)
    assert len(warnings) == 1 and "missing.md" in warnings[0]


def test_cli_strict_mode(build_docs, tmp_path: Path, capsys):
    assert build_docs.main(["--out", str(tmp_path / "api"), "--strict", "--check-links"]) == 0
    out = capsys.readouterr().out
    assert "0 warning(s)" in out
