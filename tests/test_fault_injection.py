"""Fault wrappers, degraded registry kinds, and their invariants.

Three layers of coverage for the degraded-mode device zoo:

- **unit behaviour** of each fault model — inflation arithmetic, stall
  periodicity, mid-trace switch routing, SMR append pointers, tiered
  address routing, the multi-queue FIFO gate, and the degraded mirror's
  I/O accounting;
- **registry and spec validation** — unknown kinds and parameters are
  rejected with messages naming the valid alternatives, and fault
  parameters on kinds that do not support them die at spec-load time;
- **property tests** (hypothesis) for the headline invariants: a
  degraded device is never faster than its healthy twin on the same
  trace, completions within one submission queue never reorder (even
  across a mid-trace reconfiguration), and rebuild traffic conserves
  total member I/O.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignSpec, DeviceSpec
from repro.campaign.devices import (
    build_device,
    fault_params_for,
    valid_params_for,
)
from repro.replay import replay_queue_depth, replay_with_idle
from repro.storage import (
    SATA_600,
    ConstantLatencyDevice,
    DegradedRaid1,
    FlashGeometry,
    FlashSSD,
    HDDModel,
    LatencyInflation,
    MidTraceSwitch,
    MultiQueueDevice,
    SMRModel,
    TieredHybrid,
    TransientStalls,
)
from repro.trace.record import OpType
from repro.trace.trace import BlockTrace
from test_properties import block_traces

TINY_FLASH = FlashGeometry(
    channels=3, dies_per_channel=2, planes_per_die=2, page_kb=4, write_buffer_kb=32
)


def _const(read_us: float = 50.0, write_us: float = 80.0) -> ConstantLatencyDevice:
    return ConstantLatencyDevice(SATA_600, read_us=read_us, write_us=write_us)


# ----------------------------------------------------------------------
# service injectors
# ----------------------------------------------------------------------


class TestLatencyInflation:
    def test_inflation_arithmetic(self):
        device = LatencyInflation(_const(), factor=2.0, extra_us=7.0)
        start, finish = device._service(OpType.READ, 0, 8, 100.0)
        assert (start, finish) == (100.0, 100.0 + 50.0 * 2.0 + 7.0)
        start, finish = device._service(OpType.WRITE, 0, 8, 1000.0)
        assert finish - start == 80.0 * 2.0 + 7.0

    def test_wrapper_is_fifo(self):
        device = LatencyInflation(_const(read_us=100.0), factor=1.0)
        __, first_finish = device._service(OpType.READ, 0, 8, 0.0)
        start, __ = device._service(OpType.READ, 0, 8, 10.0)  # arrives early
        assert start == first_finish

    def test_batch_matches_scalar_transform(self):
        device = LatencyInflation(_const(), factor=1.5, extra_us=3.0)
        ops = np.array([0, 1, 0], dtype=np.int8)
        svc = device.service_batch(ops, np.zeros(3, dtype=np.int64), np.full(3, 8))
        np.testing.assert_array_equal(
            svc, np.where(ops == 0, 50.0 * 1.5 + 3.0, 80.0 * 1.5 + 3.0)
        )

    def test_expected_service_inflated(self):
        inner = _const()
        device = LatencyInflation(_const(), factor=3.0, extra_us=1.0)
        for op in (OpType.READ, OpType.WRITE):
            assert device.service_time_us(op, 8, True) == (
                inner.service_time_us(op, 8, True) * 3.0 + 1.0
            )

    def test_rejects_speedups(self):
        with pytest.raises(ValueError, match="factor must be >= 1"):
            LatencyInflation(_const(), factor=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            LatencyInflation(_const(), extra_us=-1.0)

    def test_reset_restores_cold_state(self):
        device = LatencyInflation(HDDModel(), factor=2.0)
        trace, idle = _unit_trace()
        first = replay_with_idle(trace, device, idle)
        device.reset()
        second = replay_with_idle(trace, device, idle)
        np.testing.assert_array_equal(first.finishes, second.finishes)


class TestTransientStalls:
    def test_stall_periodicity(self):
        device = TransientStalls(_const(read_us=10.0), every=3, stall_us=500.0)
        durations = []
        t = 0.0
        for __ in range(9):
            start, finish = device._service(OpType.READ, 0, 8, t)
            durations.append(finish - start)
            t = finish + 1.0
        assert durations == [10.0, 10.0, 510.0] * 3

    def test_batch_stall_ordinals_continue_across_calls(self):
        device = TransientStalls(_const(read_us=10.0), every=4, stall_us=100.0)
        ops = np.zeros(3, dtype=np.int8)
        lbas = np.zeros(3, dtype=np.int64)
        sizes = np.full(3, 8)
        first = device.service_batch(ops, lbas, sizes)   # ordinals 1..3
        second = device.service_batch(ops, lbas, sizes)  # ordinals 4..6
        np.testing.assert_array_equal(first, [10.0, 10.0, 10.0])
        np.testing.assert_array_equal(second, [110.0, 10.0, 10.0])

    def test_expected_service_amortises_stall(self):
        device = TransientStalls(_const(read_us=10.0), every=5, stall_us=100.0)
        inner = _const(read_us=10.0)
        assert device.service_time_us(OpType.READ, 8, True) == (
            inner.service_time_us(OpType.READ, 8, True) + 100.0 / 5
        )

    def test_rejects_degenerate_periods(self):
        with pytest.raises(ValueError, match="at least 1"):
            TransientStalls(_const(), every=0)
        with pytest.raises(ValueError, match="non-negative"):
            TransientStalls(_const(), every=2, stall_us=-5.0)


class TestMidTraceSwitch:
    def test_routes_by_request_index(self):
        device = MidTraceSwitch(_const(read_us=10.0), _const(read_us=90.0), at_request=3)
        durations = []
        t = 0.0
        for __ in range(6):
            start, finish = device._service(OpType.READ, 0, 8, t)
            durations.append(finish - start)
            t = finish + 1.0
        assert durations == [10.0, 10.0, 10.0, 90.0, 90.0, 90.0]

    def test_batch_split_straddles_switch_point(self):
        device = MidTraceSwitch(_const(read_us=10.0), _const(read_us=90.0), at_request=2)
        ops = np.zeros(5, dtype=np.int8)
        svc = device.service_batch(ops, np.zeros(5, dtype=np.int64), np.full(5, 8))
        np.testing.assert_array_equal(svc, [10.0, 10.0, 90.0, 90.0, 90.0])

    def test_switch_at_zero_is_always_degraded(self):
        device = MidTraceSwitch(_const(read_us=10.0), _const(read_us=90.0), at_request=0)
        __, finish = device._service(OpType.READ, 0, 8, 0.0)
        assert finish == 90.0

    def test_rejects_negative_switch_point(self):
        with pytest.raises(ValueError, match="non-negative"):
            MidTraceSwitch(_const(), _const(), at_request=-1)


# ----------------------------------------------------------------------
# new device models
# ----------------------------------------------------------------------


class TestSMRModel:
    def test_append_at_pointer_is_free(self):
        smr = SMRModel(zone_mb=1, append_penalty_us=5000.0)
        zone = smr.zone_sectors
        plain = HDDModel(seed=42)
        # Sequential appends from the zone base: no penalty, identical
        # to the conventional disk.
        t = 0.0
        for lba in (0, 64, 128):
            __, f_smr = smr._service(OpType.WRITE, lba, 64, t)
            __, f_hdd = plain._service(OpType.WRITE, lba, 64, t)
            assert f_smr == f_hdd
            t = f_smr + 10.0
        assert smr._zone_append[0] == 192
        # Rewriting inside the shingled zone pays the penalty.
        __, f_smr = smr._service(OpType.WRITE, 0, 64, t)
        __, f_hdd = plain._service(OpType.WRITE, 0, 64, t)
        assert f_smr - f_hdd == pytest.approx(5000.0)
        assert smr._zone_append == {0: 64}
        # A fresh zone's pointer starts at its base.
        __, f2 = smr._service(OpType.WRITE, 2 * zone, 32, t + 1e6)
        assert smr._zone_append[2] == 2 * zone + 32

    def test_reads_never_pay(self):
        smr = SMRModel(zone_mb=1, append_penalty_us=5000.0, seed=3)
        plain = HDDModel(seed=3)
        __, f_smr = smr._service(OpType.READ, 777, 32, 0.0)
        __, f_hdd = plain._service(OpType.READ, 777, 32, 0.0)
        assert f_smr == f_hdd
        assert smr._zone_append == {}

    def test_reset_rewinds_append_pointers(self):
        smr = SMRModel(zone_mb=1)
        smr._service(OpType.WRITE, 0, 64, 0.0)
        assert smr._zone_append
        smr.reset()
        assert smr._zone_append == {}

    def test_write_back_cache_always_disabled(self):
        assert SMRModel().write_back_cache_kb == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="zone size"):
            SMRModel(zone_mb=0)
        with pytest.raises(ValueError, match="penalty"):
            SMRModel(append_penalty_us=-1.0)


class TestTieredHybrid:
    def test_routes_by_start_lba(self):
        device = TieredHybrid(_const(read_us=5.0), _const(read_us=500.0), flash_sectors=1000)
        __, fast = device._service(OpType.READ, 999, 8, 0.0)
        __, slow = device._service(OpType.READ, 1000, 8, 0.0)
        assert fast == 5.0 and slow == 500.0
        # A straddler goes entirely to its start tier.
        __, straddle = device._service(OpType.READ, 998, 64, 1000.0)
        assert straddle - 1000.0 == 5.0

    def test_batch_routing_matches_scalar(self):
        device = TieredHybrid(_const(read_us=5.0), _const(read_us=500.0), flash_sectors=1000)
        lbas = np.array([0, 2000, 500, 1500], dtype=np.int64)
        svc = device.service_batch(
            np.zeros(4, dtype=np.int8), lbas, np.full(4, 8)
        )
        np.testing.assert_array_equal(svc, [5.0, 500.0, 5.0, 500.0])

    def test_rejects_empty_flash_tier(self):
        with pytest.raises(ValueError, match="positive"):
            TieredHybrid(_const(), _const(), flash_sectors=0)


class TestMultiQueueDevice:
    def test_round_robin_gate(self):
        # Inner takes 100us; 2 queues.  Four simultaneous arrivals:
        # requests 2 and 3 must wait for their queue predecessors even
        # though the inner const device would serialise anyway.
        device = MultiQueueDevice(_const(read_us=100.0, write_us=100.0), n_queues=2)
        finishes = [device._service(OpType.READ, 0, 8, 0.0)[1] for __ in range(4)]
        # Per-queue completions are monotone in submission order.
        assert finishes[2] >= finishes[0] and finishes[3] >= finishes[1]

    def test_queue_count_validated(self):
        with pytest.raises(ValueError, match="at least one queue"):
            MultiQueueDevice(_const(), n_queues=0)

    def test_no_plan_engine(self):
        device = MultiQueueDevice(FlashSSD(geometry=TINY_FLASH), n_queues=2)
        ops = np.zeros(4, dtype=np.int8)
        assert device.replay_plan(ops, np.zeros(4, dtype=np.int64), np.full(4, 8)) is None

    def test_expected_service_delegates(self):
        inner = FlashSSD(geometry=TINY_FLASH)
        device = MultiQueueDevice(FlashSSD(geometry=TINY_FLASH), n_queues=4)
        assert device.service_time_us(OpType.READ, 16, False) == inner.service_time_us(
            OpType.READ, 16, False
        )


class TestDegradedRaid1:
    def _device(self, **kwargs) -> DegradedRaid1:
        members = [HDDModel(seed=s) for s in (1, 2, 3)]
        return DegradedRaid1(members, **kwargs)

    def test_failed_member_receives_no_io(self):
        device = self._device(failed_index=1)
        trace, idle = _unit_trace()
        replay_with_idle(trace, device, idle)
        assert device.member_io_counts[1] == 0
        assert sum(device.member_io_counts) > 0

    def test_io_conservation_without_rebuild(self):
        device = self._device(failed_index=0)
        trace, idle = _unit_trace()
        replay_with_idle(trace, device, idle)
        reads = int(np.sum(trace.ops == int(OpType.READ)))
        writes = len(trace) - reads
        assert sum(device.member_io_counts) == reads + writes * len(device.survivors)
        assert device.rebuild_io_count == 0

    def test_rebuild_count_and_cursor(self):
        device = self._device(failed_index=0, rebuild_every=4, rebuild_chunk=64)
        n = 13
        t = 0.0
        for __ in range(n):
            __, t = device._service(OpType.READ, 128, 8, t)
            t += 1.0
        # Fires before hosts 4, 8 and 12 (0-based count): (n-1)//every.
        assert device.rebuild_io_count == (n - 1) // 4 == 3
        assert device._rebuild_cursor == 3 * 64

    def test_rebuild_refuses_batch(self):
        device = self._device(failed_index=0, rebuild_every=4)
        ops = np.zeros(4, dtype=np.int8)
        assert not device.supports_batch(ops, np.zeros(4, dtype=np.int64), np.full(4, 8))
        assert device.service_batch(ops, np.zeros(4, dtype=np.int64), np.full(4, 8)) is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="full member set"):
            DegradedRaid1([HDDModel()])
        with pytest.raises(ValueError, match="out of range"):
            self._device(failed_index=3)
        with pytest.raises(ValueError, match="non-negative"):
            self._device(rebuild_every=-1)
        with pytest.raises(ValueError, match="chunk must be positive"):
            self._device(rebuild_every=2, rebuild_chunk=0)


# ----------------------------------------------------------------------
# registry + spec validation
# ----------------------------------------------------------------------


class TestRegistryErrors:
    def test_unknown_kind_names_valid_kinds(self):
        with pytest.raises(ValueError, match="unknown device kind") as excinfo:
            build_device("floppy")
        message = str(excinfo.value)
        for kind in ("hdd", "flash_array", "nvme_mq", "smr", "tiered", "old-node"):
            assert kind in message

    def test_unknown_parameter_names_valid_parameters(self):
        with pytest.raises(ValueError, match="unknown parameter") as excinfo:
            build_device("smr", {"rpm": 7200.0, "shingle_overlap": 3})
        message = str(excinfo.value)
        assert "valid parameters" in message
        assert "zone_mb" in message and "latency_factor" in message

    def test_fault_param_on_unsupported_kind(self):
        with pytest.raises(ValueError, match="does not support fault parameter") as excinfo:
            build_device("hdd", {"offline_at": 10})
        message = str(excinfo.value)
        assert "flash" in message and "nvme_mq" in message

    def test_fault_param_dependencies(self):
        with pytest.raises(ValueError, match="'stall_us' requires 'stall_every'"):
            build_device("flash", {"stall_us": 100.0})
        with pytest.raises(ValueError, match="'offline_channels' requires 'offline_at'"):
            build_device("flash", {"offline_channels": 2})
        with pytest.raises(ValueError, match="'rebuild_every' requires 'failed_member'"):
            build_device("raid1", {"rebuild_every": 4})

    def test_structural_fault_ranges(self):
        with pytest.raises(ValueError, match="throttle_factor must be >= 1"):
            build_device("flash", {"throttle_factor": 0.5})
        with pytest.raises(ValueError, match="offline_channels must be in"):
            build_device("flash", {"channels": 4, "offline_at": 5, "offline_channels": 4})

    def test_fault_params_for(self):
        assert fault_params_for("hdd") == [
            "latency_extra_us", "latency_factor", "stall_every", "stall_us",
        ]
        assert "offline_at" in fault_params_for("nvme_mq")
        assert "failed_member" in fault_params_for("raid1")
        # Presets resolve to their base kind.
        assert "offline_at" in fault_params_for("new-node")

    def test_valid_params_include_faults(self):
        params = valid_params_for("flash")
        assert "throttle_factor" in params and "channels" in params


class TestSpecValidation:
    def test_spec_rejects_fault_on_unsupported_kind(self):
        with pytest.raises(ValueError, match="does not support fault parameter"):
            CampaignSpec(
                name="bad",
                devices=(DeviceSpec("d", "hdd", {"offline_at": 5}),),
            )

    def test_from_dict_rejects_fault_on_unsupported_kind(self):
        with pytest.raises(ValueError, match="does not support fault parameter"):
            CampaignSpec.from_dict(
                {
                    "name": "bad",
                    "devices": [{"name": "d", "kind": "smr", "failed_member": 0}],
                }
            )

    def test_spec_rejects_unknown_kind_up_front(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            CampaignSpec.from_dict({"name": "bad", "devices": ["warp-drive"]})

    def test_valid_degraded_specs_accepted(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "ok",
                "devices": [
                    {"name": "mq", "kind": "nvme_mq", "offline_at": 10, "offline_channels": 2},
                    {"name": "mirror", "kind": "raid1", "failed_member": 0,
                     "rebuild_every": 8, "rebuild_chunk": 64},
                    {"name": "slow-smr", "kind": "smr", "latency_factor": 2.0},
                ],
            }
        )
        for device in spec.devices:
            assert device.build().fingerprint()


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------


def _unit_trace(n: int = 40, seed: int = 11) -> tuple[BlockTrace, np.ndarray]:
    rng = np.random.default_rng(seed)
    trace = BlockTrace(
        timestamps=np.cumsum(rng.integers(1, 300, n)).astype(np.float64),
        lbas=rng.integers(0, 1 << 20, n),
        sizes=rng.integers(1, 96, n),
        ops=rng.integers(0, 2, n).astype(np.int8),
    )
    return trace, rng.uniform(0.0, 2_000.0, n - 1)


INNER_FACTORIES = {
    "const": lambda: _const(),
    "hdd": lambda: HDDModel(seed=6),
    "flash": lambda: FlashSSD(geometry=TINY_FLASH),
}


def _degradations(inner):
    return [
        LatencyInflation(inner(), factor=1.75, extra_us=12.0),
        TransientStalls(inner(), every=5, stall_us=800.0),
    ]


class TestDegradedNeverFaster:
    """Per-request completions: degraded >= healthy on identical traces."""

    @pytest.mark.parametrize("inner_key", sorted(INNER_FACTORIES))
    @given(trace=block_traces(min_n=2, max_n=40))
    @settings(max_examples=20, deadline=None)
    def test_injectors_only_slow_down(self, inner_key, trace):
        inner = INNER_FACTORIES[inner_key]
        if inner_key == "flash":
            # Buffered flash writes are not gap-invariant; reads keep
            # the wrapper on the single-row batch pricing path.
            trace = BlockTrace(
                trace.timestamps, trace.lbas, trace.sizes,
                np.zeros(len(trace), dtype=np.int8),
            )
        healthy = replay_with_idle(trace, inner())
        for degraded_device in _degradations(inner):
            degraded = replay_with_idle(trace, degraded_device)
            assert np.all(degraded.finishes >= healthy.finishes)
            # Per-request latencies: the subtraction happens at
            # different magnitudes on the two timelines, so allow the
            # resulting ulp of rounding slack.
            slack = 1e-6 * (1.0 + np.abs(degraded.finishes))
            assert np.all(
                (degraded.finishes - degraded.submits)
                >= (healthy.finishes - healthy.submits) - slack
            )


class TestQueueOrderInvariant:
    """Completions within one submission queue never reorder."""

    @staticmethod
    def _assert_queues_monotone(result, n_queues: int):
        for queue in range(n_queues):
            per_queue = result.finishes[queue::n_queues]
            assert np.all(np.diff(per_queue) >= 0)

    @given(trace=block_traces(min_n=4, max_n=40), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_mq_per_queue_monotone(self, trace, data):
        n_queues = data.draw(st.integers(min_value=1, max_value=4))
        queue_depth = data.draw(st.integers(min_value=2, max_value=6))
        device = MultiQueueDevice(FlashSSD(geometry=TINY_FLASH), n_queues=n_queues)
        result = replay_queue_depth(trace, device, queue_depth=queue_depth)
        self._assert_queues_monotone(result, n_queues)

    @given(trace=block_traces(min_n=4, max_n=40), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_mq_monotone_across_mid_trace_switch(self, trace, data):
        """The offline fault must not reorder a queue's completions."""
        at = data.draw(st.integers(min_value=0, max_value=len(trace)))
        inner = MidTraceSwitch(
            FlashSSD(geometry=TINY_FLASH),
            FlashSSD(geometry=FlashGeometry(
                channels=2, dies_per_channel=2, planes_per_die=2,
                page_kb=4, write_buffer_kb=32,
            )),
            at_request=at,
        )
        device = MultiQueueDevice(inner, n_queues=3)
        result = replay_queue_depth(trace, device, queue_depth=4)
        self._assert_queues_monotone(result, 3)


class TestRebuildConservation:
    """Member I/O counters account for every host and rebuild request."""

    @given(trace=block_traces(min_n=2, max_n=50), data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_total_member_io_conserved(self, trace, data):
        every = data.draw(st.integers(min_value=1, max_value=10))
        failed = data.draw(st.integers(min_value=0, max_value=2))
        device = DegradedRaid1(
            [HDDModel(seed=s) for s in (1, 2, 3)],
            failed_index=failed,
            rebuild_every=every,
            rebuild_chunk=64,
        )
        replay_with_idle(trace, device)
        reads = int(np.sum(trace.ops == int(OpType.READ)))
        writes = len(trace) - reads
        assert device.member_io_counts[failed] == 0
        assert device.rebuild_io_count == (len(trace) - 1) // every
        assert sum(device.member_io_counts) == (
            reads + writes * len(device.survivors) + device.rebuild_io_count
        )
