"""Streaming daemon: batch-oracle parity, quarantine, drain, backpressure.

The load-bearing contract: for the same well-formed content, the
daemon's ``out.csv`` and final metrics are byte-/bit-identical to the
batch oracle ``pipeline.run_stream(TraceReader(path, chunk_requests=N))``
— for every source type.  Poison records are quarantined to the
dead-letter file and never kill the stream.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro import TraceTracker
from repro.storage import ConstantLatencyDevice, HDDModel, SATA_600
from repro.trace import BlockTrace, TraceReader, dump_trace
from repro.workloads import collect_trace, generate_intents, get_spec
from repro.service import (
    DirectoryWatchSource,
    FileTailSource,
    ServiceConfig,
    SocketLineSource,
    StreamingReconstructionService,
)

CHUNK = 60


def device():
    return ConstantLatencyDevice(SATA_600, read_us=80.0, write_us=120.0)


@pytest.fixture(scope="module")
def stream_trace() -> BlockTrace:
    """A measured 400-request trace (stamps make inference well-posed)."""
    return collect_trace(generate_intents(get_spec("MSNFS").scaled(400)), HDDModel())


@pytest.fixture(scope="module")
def oracle(stream_trace, tmp_path_factory):
    """The batch pipeline over the same content and chunk boundaries."""
    base = tmp_path_factory.mktemp("oracle")
    src = base / "old.csv"
    dump_trace(stream_trace, src, fmt="internal")
    result = TraceTracker().pipeline.run_stream(
        TraceReader(src, chunk_requests=CHUNK), device()
    )
    out = base / "out.csv"
    dump_trace(result.trace, out, fmt="internal")
    return {"src": src, "bytes": out.read_bytes(), "metrics": result.metrics}


def run_service(source, workdir, **config):
    config.setdefault("chunk_requests", CHUNK)
    config.setdefault("until_idle_s", 0.2)
    config.setdefault("status_interval_s", 0.1)
    service = StreamingReconstructionService(
        source, device(), workdir, ServiceConfig(**config)
    )
    metrics = service.run(install_signal_handlers=False)
    return service, metrics


def assert_parity(workdir, metrics, oracle):
    assert (workdir / "out.csv").read_bytes() == oracle["bytes"]
    assert metrics == oracle["metrics"]
    saved = json.loads((workdir / "metrics.json").read_text())
    assert saved["n_requests"] == oracle["metrics"].n_requests
    assert saved["new_duration_us"] == oracle["metrics"].new_duration_us


class TestParityHarness:
    def test_file_source(self, oracle, tmp_path):
        service, metrics = run_service(FileTailSource(oracle["src"]), tmp_path / "wd")
        assert service.outcome == "finished"
        assert_parity(tmp_path / "wd", metrics, oracle)

    def test_directory_source_with_per_segment_headers(self, oracle, tmp_path):
        lines = oracle["src"].read_text().splitlines()
        header, body = lines[0], lines[1:]
        segdir = tmp_path / "segs"
        segdir.mkdir()
        for i, lo in enumerate(range(0, len(body), 150)):
            (segdir / f"seg-{i:03d}.csv").write_text(
                "\n".join([header] + body[lo : lo + 150]) + "\n"
            )
        service, metrics = run_service(
            DirectoryWatchSource(segdir, "*.csv"), tmp_path / "wd"
        )
        assert service.outcome == "finished"
        assert_parity(tmp_path / "wd", metrics, oracle)
        status = json.loads((tmp_path / "wd" / "status.json").read_text())
        assert status["counters"]["n_header_repeats"] == 2  # one per later segment

    def test_socket_source(self, oracle, tmp_path):
        workdir = tmp_path / "wd"
        workdir.mkdir()
        source = SocketLineSource("127.0.0.1", 0, workdir / "spool.lines")
        holder = {}

        def serve():
            holder["service"], holder["metrics"] = run_service(
                source, workdir, until_idle_s=0.5
            )

        thread = threading.Thread(target=serve)
        thread.start()
        deadline = time.monotonic() + 10.0
        while source.port == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        payload = oracle["src"].read_bytes()
        with socket.create_connection(("127.0.0.1", source.port)) as conn:
            for off in range(0, len(payload), 997):  # torn, misaligned slices
                conn.sendall(payload[off : off + 997])
        thread.join(timeout=120.0)
        assert holder["service"].outcome == "finished"
        assert_parity(workdir, holder["metrics"], oracle)


class TestQuarantine:
    def test_poison_lines_dead_lettered_not_fatal(self, stream_trace, tmp_path):
        src = tmp_path / "old.csv"
        dump_trace(stream_trace, src, fmt="internal")
        lines = src.read_text().splitlines()
        # scatter malformed records through the body
        lines.insert(50, "not,a,record,at,all,?")
        lines.insert(150, "99kk9.0,12")
        lines.insert(250, "100.0,10,8,Z")  # bad op char
        src.write_text("\n".join(lines) + "\n")
        service, metrics = run_service(FileTailSource(src), tmp_path / "wd")
        assert service.outcome == "finished"
        assert metrics.n_requests == len(stream_trace)  # every good row survived
        dead = [
            json.loads(line)
            for line in (tmp_path / "wd" / "quarantine.jsonl").read_text().splitlines()
        ]
        assert len(dead) == 3
        assert {d["kind"] for d in dead} == {"parse"}
        assert any("not,a,record" in d["line"] for d in dead)

    def test_time_regression_rows_quarantined_as_order(self, stream_trace, tmp_path):
        src = tmp_path / "old.csv"
        dump_trace(stream_trace, src, fmt="internal")
        lines = src.read_text().splitlines()
        # a well-formed record far in the past, landing after later
        # chunks committed — parseable, but unsplicable
        n_cols = len(lines[0].split(","))
        row = ["0.001", "777", "8", "R", "0.002", "0.003", "0"][:n_cols]
        lines.insert(200, ",".join(row))
        src.write_text("\n".join(lines) + "\n")
        service, metrics = run_service(FileTailSource(src), tmp_path / "wd")
        assert service.outcome == "finished"
        assert metrics.n_requests == len(stream_trace)
        dead = [
            json.loads(line)
            for line in (tmp_path / "wd" / "quarantine.jsonl").read_text().splitlines()
        ]
        assert [d["kind"] for d in dead] == ["order"]
        assert dead[0]["lba"] == 777

    def test_all_poison_stream_finishes_empty(self, tmp_path):
        src = tmp_path / "old.csv"
        src.write_text("timestamp_us,lba,size_sectors,op\nbad\nworse\n")
        service, metrics = run_service(FileTailSource(src), tmp_path / "wd")
        assert service.outcome == "finished"
        assert metrics is None
        assert not (tmp_path / "wd" / "metrics.json").exists()
        status = json.loads((tmp_path / "wd" / "status.json").read_text())
        assert status["counters"]["n_quarantined"] == 2


class TestDrainAndStatus:
    def test_sigterm_style_drain_then_resume(self, oracle, tmp_path):
        """request_stop drains in-flight chunks; a later run finishes."""
        workdir = tmp_path / "wd"
        source = FileTailSource(oracle["src"])
        service = StreamingReconstructionService(
            source,
            device(),
            workdir,
            ServiceConfig(chunk_requests=CHUNK, until_idle_s=None),  # follow mode
        )
        thread = threading.Thread(target=service.run, kwargs={"install_signal_handlers": False})
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                if json.loads((workdir / "checkpoint.json").read_text())["rows_consumed"] > 0:
                    break
            except (OSError, ValueError):
                pass
            time.sleep(0.01)
        service.request_stop()
        thread.join(timeout=30.0)
        assert service.outcome == "stopped"
        assert not (workdir / "metrics.json").exists()  # stream not finished
        # resume in until-idle mode: same boundaries, same bytes
        resumed, metrics = run_service(FileTailSource(oracle["src"]), workdir)
        assert resumed.outcome == "finished"
        assert_parity(workdir, metrics, oracle)

    def test_slow_consumer_holds_queue_at_watermark(self, oracle, tmp_path):
        tracker = TraceTracker()
        real = tracker.stream_session

        def slow_session(target):
            session = real(target)
            original = session.feed

            def feed(chunk):
                time.sleep(0.03)
                return original(chunk)

            session.feed = feed
            return session

        tracker.stream_session = slow_session
        service = StreamingReconstructionService(
            FileTailSource(oracle["src"]),
            device(),
            tmp_path / "wd",
            ServiceConfig(chunk_requests=20, queue_high=3, queue_low=1, until_idle_s=0.2),
            tracker=tracker,
        )
        depths = []
        thread = threading.Thread(target=service.run, kwargs={"install_signal_handlers": False})
        thread.start()
        while thread.is_alive():
            depths.append(service._queue.depth())
            time.sleep(0.005)
        thread.join()
        assert service.outcome == "finished"
        assert max(depths) <= 3  # held at the watermark, never beyond
        assert service._queue.stats()["max_depth"] <= 3
        assert (tmp_path / "wd" / "out.csv").read_bytes() == oracle["bytes"]

    def test_shed_policy_drops_and_counts(self, oracle, tmp_path):
        tracker = TraceTracker()
        real = tracker.stream_session

        def slow_session(target):
            session = real(target)
            original = session.feed

            def feed(chunk):
                time.sleep(0.05)
                return original(chunk)

            session.feed = feed
            return session

        tracker.stream_session = slow_session
        service = StreamingReconstructionService(
            FileTailSource(oracle["src"]),
            device(),
            tmp_path / "wd",
            ServiceConfig(
                chunk_requests=20,
                queue_high=2,
                queue_low=1,
                queue_policy="shed",
                until_idle_s=0.2,
            ),
            tracker=tracker,
        )
        metrics = service.run(install_signal_handlers=False)
        assert service.outcome == "finished"
        status = json.loads((tmp_path / "wd" / "status.json").read_text())
        shed = status["counters"]["rows_shed"]
        assert shed > 0  # freshness over completeness, visibly accounted
        assert metrics.n_requests == 400 - shed

    def test_status_page_shape(self, oracle, tmp_path):
        service, _ = run_service(FileTailSource(oracle["src"]), tmp_path / "wd")
        status = json.loads((tmp_path / "wd" / "status.json").read_text())
        assert status["state"] == "finished"
        assert status["queue"]["high_watermark"] == 8
        assert status["counters"]["rows_out"] == 400
        assert status["lag_rows"] == 0
        assert status["session"]["n_requests"] == 400
        assert (tmp_path / "wd" / "heartbeat").exists()

    def test_permanent_source_failure_fails_loudly(self, oracle, tmp_path):
        src = tmp_path / "old.csv"
        src.write_bytes(oracle["src"].read_bytes())
        workdir = tmp_path / "wd"
        service = StreamingReconstructionService(
            FileTailSource(src),
            device(),
            workdir,
            ServiceConfig(chunk_requests=CHUNK, until_idle_s=5.0),
        )
        thread = threading.Thread(target=service.run, kwargs={"install_signal_handlers": False})
        thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                if json.loads((workdir / "checkpoint.json").read_text())["rows_consumed"] > 0:
                    break
            except (OSError, ValueError):
                pass
            time.sleep(0.01)
        src.write_text("x\n")  # truncate under the live cursor
        thread.join(timeout=30.0)
        assert service.outcome == "failed"
        status = json.loads((workdir / "status.json").read_text())
        assert "shrank" in status["fatal"]
