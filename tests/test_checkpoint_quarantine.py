"""Resume-scan hardening: corrupt checkpoints quarantine, never raise.

Satellite of ISSUE 9: a corrupt or truncated ``runs/<key>.json`` (not
just a torn trailing segment line) is renamed to ``<key>.json.bad`` and
its point re-queued; a segment file with zero decodable lines is
quarantined whole; a merely-torn segment tail keeps losing only the
torn line.  Every quarantine leaves a ``degraded.log`` line and counts
into :attr:`CampaignResult.n_degraded`.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.campaign import CampaignEngine, CampaignSpec, DeviceSpec, expand
from repro.campaign.engine import _scan_checkpoints


def _spec(n_points: int = 4) -> CampaignSpec:
    return CampaignSpec(
        name="quarantine-grid",
        action="synthetic",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=tuple(range(100, 100 + n_points)),
        options={"iters_per_request": 3},
    )


def _complete_json_campaign(out_dir: Path) -> list[str]:
    """Run a campaign in per-point JSON format; returns its run keys."""
    CampaignEngine(_spec(), out_dir=out_dir, checkpoint_format="json").run()
    return expand(_spec()).keys()


class TestCorruptJsonCheckpoint:
    def test_truncated_json_quarantined_and_requeued(self, tmp_path: Path):
        out = tmp_path / "camp"
        keys = _complete_json_campaign(out)
        victim = out / "runs" / f"{keys[1]}.json"
        victim.write_text(victim.read_text(encoding="utf-8")[: victim.stat().st_size // 2])

        found = _scan_checkpoints(out, keys)
        assert keys[1] not in found  # re-queued, not raised
        assert set(found) == set(keys) - {keys[1]}
        assert (out / "runs" / f"{keys[1]}.json.bad").exists()
        assert not victim.exists()

    def test_wrong_shape_payload_quarantined(self, tmp_path: Path):
        out = tmp_path / "camp"
        keys = _complete_json_campaign(out)
        victim = out / "runs" / f"{keys[2]}.json"
        victim.write_text(json.dumps({"key": keys[2], "row": "not-a-dict"}))

        found = _scan_checkpoints(out, keys)
        assert keys[2] not in found
        assert (out / "runs" / f"{keys[2]}.json.bad").exists()

    def test_resume_recomputes_only_the_quarantined_point(self, tmp_path: Path):
        clean = CampaignEngine(
            _spec(), out_dir=tmp_path / "clean", checkpoint_format="json"
        ).run()
        out = tmp_path / "camp"
        keys = _complete_json_campaign(out)
        (out / "runs" / f"{keys[0]}.json").write_text("{ torn", encoding="utf-8")

        resumed = CampaignEngine(_spec(), out_dir=out, checkpoint_format="json").run()
        assert resumed.n_computed == 1 and resumed.n_resumed == len(keys) - 1
        assert resumed.table == clean.table
        assert resumed.n_degraded >= 1
        degraded = (out / "degraded.log").read_text(encoding="utf-8")
        assert keys[0] in degraded


class TestCorruptSegment:
    def test_all_garbage_segment_quarantined_whole(self, tmp_path: Path):
        out = tmp_path / "camp"
        CampaignEngine(_spec(), out_dir=out).run()  # segments format
        keys = expand(_spec()).keys()
        segments = sorted((out / "runs").glob("segment-*.jsonl"))
        assert segments
        segments[0].write_bytes(b"\x00\xff garbage bytes, zero json lines\n\x00")

        found = _scan_checkpoints(out, keys)
        assert found == {}  # single-worker run: every point was in that segment
        assert Path(str(segments[0]) + ".bad").exists()
        assert not segments[0].exists()

    def test_torn_tail_still_loses_only_the_torn_line(self, tmp_path: Path):
        out = tmp_path / "camp"
        CampaignEngine(_spec(), out_dir=out).run()
        keys = expand(_spec()).keys()
        segment = sorted((out / "runs").glob("segment-*.jsonl"))[0]
        lines = segment.read_text(encoding="utf-8").splitlines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        segment.write_text(torn, encoding="utf-8")

        found = _scan_checkpoints(out, keys)
        assert len(found) == len(keys) - 1  # only the torn line is lost
        assert segment.exists()  # a torn tail is normal, not quarantinable
