"""Unit tests for channels, the device ABC, and the constant device."""

from __future__ import annotations

import pytest

from repro.storage import (
    PCIE3_X4,
    SATA_300,
    SATA_600,
    ConstantLatencyDevice,
    InterfaceChannel,
)
from repro.storage.device import Completion
from repro.trace import OpType


class TestInterfaceChannel:
    def test_delay_includes_overhead_and_transfer(self):
        ch = InterfaceChannel("x", bandwidth_mb_s=512.0, read_overhead_us=10.0, write_overhead_us=20.0)
        # 8 sectors = 4096 bytes at 512 MB/s = 8 us.
        assert ch.delay_us(OpType.READ, 8) == pytest.approx(18.0)
        assert ch.delay_us(OpType.WRITE, 8) == pytest.approx(28.0)

    def test_transfer_scales_linearly(self):
        assert SATA_600.transfer_us(16) == pytest.approx(2 * SATA_600.transfer_us(8))

    def test_faster_links_have_smaller_delay(self):
        for size in (8, 64, 1024):
            assert PCIE3_X4.delay_us(OpType.READ, size) < SATA_600.delay_us(OpType.READ, size)
            assert SATA_600.delay_us(OpType.READ, size) < SATA_300.delay_us(OpType.READ, size)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterfaceChannel("x", bandwidth_mb_s=0.0, read_overhead_us=1.0, write_overhead_us=1.0)
        with pytest.raises(ValueError):
            InterfaceChannel("x", bandwidth_mb_s=1.0, read_overhead_us=-1.0, write_overhead_us=1.0)
        with pytest.raises(ValueError):
            SATA_600.transfer_us(-1)


class TestCompletion:
    def test_derived_quantities(self):
        c = Completion(submit=0.0, start=10.0, ack=5.0, finish=110.0)
        assert c.latency == 110.0
        assert c.device_time == 100.0
        assert c.queue_wait == 5.0

    def test_ordering_validated(self):
        with pytest.raises(ValueError):
            Completion(submit=10.0, start=5.0, ack=11.0, finish=20.0)
        with pytest.raises(ValueError):
            Completion(submit=10.0, start=11.0, ack=5.0, finish=20.0)


class TestConstantLatencyDevice:
    def test_latency_is_channel_plus_service(self, const_device):
        c = const_device.submit(OpType.READ, 0, 8, 0.0)
        expected_cdel = const_device.channel.delay_us(OpType.READ, 8)
        assert c.ack == pytest.approx(expected_cdel)
        assert c.finish == pytest.approx(expected_cdel + 100.0)

    def test_fifo_queueing(self, const_device):
        first = const_device.submit(OpType.READ, 0, 8, 0.0)
        second = const_device.submit(OpType.READ, 8, 8, 0.0)
        assert second.start == pytest.approx(first.finish)

    def test_write_latency_differs(self, const_device):
        c = const_device.submit(OpType.WRITE, 0, 8, 0.0)
        assert c.device_time == pytest.approx(200.0)

    def test_submission_order_enforced(self, const_device):
        const_device.submit(OpType.READ, 0, 8, 100.0)
        with pytest.raises(ValueError, match="time-ordered"):
            const_device.submit(OpType.READ, 0, 8, 50.0)

    def test_reset_clears_state(self, const_device):
        const_device.submit(OpType.READ, 0, 8, 100.0)
        const_device.reset()
        c = const_device.submit(OpType.READ, 0, 8, 0.0)
        assert c.submit == 0.0
        assert c.queue_wait == pytest.approx(0.0)

    def test_invalid_requests_rejected(self, const_device):
        with pytest.raises(ValueError):
            const_device.submit(OpType.READ, 0, 0, 0.0)
        with pytest.raises(ValueError):
            const_device.submit(OpType.READ, -5, 8, 0.0)

    def test_expected_service(self, const_device):
        assert const_device.service_time_us(OpType.READ, 8, sequential=True) == 100.0
        assert const_device.service_time_us(OpType.WRITE, 8, sequential=False) == 200.0
