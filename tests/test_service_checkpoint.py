"""Stream checkpoints: round-trip, atomicity, and corrupt-file handling."""

from __future__ import annotations

import json

import pytest

from repro.service import StreamCheckpoint, load_checkpoint, save_checkpoint


def sample() -> StreamCheckpoint:
    return StreamCheckpoint(
        source_cursor=["seg-001.csv", 4096],
        session_state={"version": 1, "carry": None},
        sink_bytes=1234,
        quarantine_bytes=56,
        header="timestamp_us,lba,size_sectors,op",
        rebase_offset=None,
        last_old_ts=99.5,
        rows_consumed=300,
        rows_out=298,
        n_quarantined=2,
    )


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, sample())
        got = load_checkpoint(path)
        assert got == sample()

    def test_float_exactness(self, tmp_path):
        """JSON repr round-trips binary64 exactly — resume bit-identity."""
        value = 0.1 + 0.2  # not representable prettily
        cp = sample()
        cp.last_old_ts = value
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, cp)
        assert load_checkpoint(path).last_old_ts == value

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        save_checkpoint(path, sample())
        second = sample()
        second.rows_consumed = 600
        save_checkpoint(path, second)
        assert load_checkpoint(path).rows_consumed == 600
        assert not path.with_name(path.name + ".tmp").exists()


class TestDegradedLoads:
    def test_missing_returns_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.json") is None

    def test_corrupt_preserved_aside(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        path.write_text("{ torn garb")
        assert load_checkpoint(path) is None
        assert not path.exists()
        assert path.with_name("checkpoint.json.corrupt").read_text() == "{ torn garb"

    def test_unknown_version_treated_as_corrupt(self, tmp_path):
        path = tmp_path / "checkpoint.json"
        doc = sample().to_dict()
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        assert load_checkpoint(path) is None
        assert path.with_name("checkpoint.json.corrupt").exists()

    def test_version_guard_in_from_dict(self):
        with pytest.raises(ValueError, match="version"):
            StreamCheckpoint.from_dict({"version": 2})
