"""Unit tests for the RAID-0 / RAID-1 layer."""

from __future__ import annotations

import pytest

from repro.storage import ConstantLatencyDevice, Raid0, Raid1, SATA_600
from repro.trace import OpType


def members(n: int = 2, read_us: float = 100.0, write_us: float = 100.0):
    return [ConstantLatencyDevice(SATA_600, read_us, write_us) for _ in range(n)]


class TestRaid0:
    def test_fragments_round_robin(self):
        raid = Raid0(members(2), stripe_kb=64)  # 128 sectors per stripe
        frags = raid._fragments(lba=0, size=512)
        assert [f[0] for f in frags] == [0, 1, 0, 1]
        assert sum(f[2] for f in frags) == 512

    def test_local_addresses_dense(self):
        raid = Raid0(members(2), stripe_kb=64)
        frags = raid._fragments(lba=0, size=512)
        # Member 0 receives stripes 0 and 2 at local offsets 0 and 128.
        locals_m0 = [f[1] for f in frags if f[0] == 0]
        assert locals_m0 == [0, 128]

    def test_striped_large_request_faster_than_single_member(self):
        single = ConstantLatencyDevice(SATA_600, 100.0, 100.0)
        raid = Raid0(members(4), stripe_kb=64)
        # 4 stripes land on 4 distinct members -> one member-latency,
        # while a sequence of 4 requests on one device serialises.
        c_raid = raid.submit(OpType.READ, 0, 512, 0.0)
        t = 0.0
        for i in range(4):
            c = single.submit(OpType.READ, i * 128, 128, t)
            t = c.finish
        assert c_raid.finish < t

    def test_sub_stripe_request_touches_one_member(self):
        raid = Raid0(members(2), stripe_kb=64)
        frags = raid._fragments(lba=10, size=20)
        assert len(frags) == 1

    def test_reset_propagates(self):
        raid = Raid0(members(2))
        a = raid.submit(OpType.READ, 0, 256, 0.0).finish
        raid.reset()
        b = raid.submit(OpType.READ, 0, 256, 0.0).finish
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            Raid0([], stripe_kb=64)
        with pytest.raises(ValueError):
            Raid0(members(2), stripe_kb=0)

    def test_name(self):
        assert Raid0(members(3)).name.startswith("raid0(3x")


class TestRaid1:
    def test_reads_alternate_members(self):
        raid = Raid1(members(2))
        first = raid.submit(OpType.READ, 0, 8, 0.0)
        second = raid.submit(OpType.READ, 0, 8, 0.0)
        # Round-robin: the second read goes to the idle mirror, so it
        # does not queue behind the first.
        assert second.start < first.finish

    def test_writes_broadcast_to_all_members(self):
        slow = ConstantLatencyDevice(SATA_600, 100.0, 500.0)
        fast = ConstantLatencyDevice(SATA_600, 100.0, 100.0)
        raid = Raid1([fast, slow])
        c = raid.submit(OpType.WRITE, 0, 8, 0.0)
        # Write completes when the slowest mirror does.
        assert c.device_time >= 500.0

    def test_custom_read_policy(self):
        picks = []

        def policy(lba: int, n: int) -> int:
            picks.append(lba)
            return 1

        raid = Raid1(members(2), read_policy=policy)
        raid.submit(OpType.READ, 42, 8, 0.0)
        assert picks == [42]

    def test_needs_two_members(self):
        with pytest.raises(ValueError):
            Raid1(members(1))

    def test_reset_restores_round_robin(self):
        raid = Raid1(members(2))
        raid.submit(OpType.READ, 0, 8, 0.0)
        raid.reset()
        a = raid.submit(OpType.READ, 0, 8, 10.0)
        raid.reset()
        b = raid.submit(OpType.READ, 0, 8, 10.0)
        assert a.finish == b.finish


class TestRaidAsOldNode:
    def test_trace_collection_on_raid(self):
        """A RAID-0 of disks works as an OLD collection node (MSRC style)."""
        from repro.storage import HDDModel
        from repro.workloads import collect_trace, generate_intents, get_spec

        raid = Raid0([HDDModel(seed=1), HDDModel(seed=2)], stripe_kb=64)
        spec = get_spec("wdev").scaled(300)
        trace = collect_trace(generate_intents(spec), raid)
        assert len(trace) == 300
        assert trace.metadata["collected_on"].startswith("raid0")
