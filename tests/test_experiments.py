"""Tests for the experiment harness: nodes, pairs, reporting, runner."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.experiments import (
    build_pair,
    build_pair_for,
    cdf_series,
    format_cdf_series,
    format_table,
    format_us,
    new_node,
    old_node,
)
from repro.experiments.runner import main, run_all
from repro.workloads import generate_intents, get_spec


class TestNodes:
    def test_old_node_is_disk(self):
        assert "hdd" in old_node().name

    def test_new_node_is_paper_array(self):
        node = new_node()
        assert node.n_ssds == 4
        assert node.ssds[0].geometry.channels == 18

    def test_old_node_seeds_differ(self):
        from repro.trace import OpType

        a = old_node(seed=1).submit(OpType.READ, 10**8, 8, 0.0)
        b = old_node(seed=2).submit(OpType.READ, 10**8, 8, 0.0)
        assert a.finish != b.finish  # different rotational phases


class TestPairs:
    def test_pair_shares_pattern(self):
        pair = build_pair_for("ikki", n_requests=200)
        np.testing.assert_array_equal(pair.old.lbas, pair.new.lbas)
        np.testing.assert_array_equal(pair.old.ops, pair.new.ops)
        assert pair.name == "ikki"

    def test_family_style_defaults(self):
        # FIU traces have no device stamps; MSPS/MSRC do.
        assert not build_pair_for("ikki", n_requests=100).old.has_device_times
        assert build_pair_for("CFS", n_requests=100).old.has_device_times
        assert build_pair_for("wdev", n_requests=100).old.has_device_times

    def test_new_trace_always_measured(self):
        pair = build_pair_for("ikki", n_requests=100)
        assert pair.new.has_device_times

    def test_explicit_style_override(self):
        pair = build_pair_for("ikki", n_requests=100, old_has_device_times=True)
        assert pair.old.has_device_times

    def test_build_pair_with_custom_devices(self, const_device):
        intents = generate_intents(get_spec("MSNFS").scaled(50))
        pair = build_pair(intents, old_device=const_device, new_device=new_node())
        assert pair.old.metadata["collected_on"] == const_device.name


class TestReporting:
    def test_format_us_scales(self):
        assert format_us(3.2) == "3.2 us"
        assert format_us(4_500.0) == "4.5 ms"
        assert format_us(2_500_000.0) == "2.5 s"
        assert format_us(float("nan")) == "n/a"

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.001}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_cdf_series_monotone(self, rng):
        series = cdf_series(rng.lognormal(5, 1, 500))
        ps = [p for _, p in series]
        assert all(b >= a for a, b in zip(ps, ps[1:]))
        assert ps[-1] == pytest.approx(1.0)

    def test_cdf_series_empty_for_nonpositive(self):
        assert cdf_series(np.array([0.0, -1.0])) == []

    def test_format_cdf_series(self, rng):
        text = format_cdf_series({"x": cdf_series(rng.lognormal(5, 1, 200))})
        assert "p50" in text


class TestABStatistics:
    """Multi-seed summary statistics and the Welch's-t verdict."""

    def test_t_critical_table_values(self):
        from repro.experiments.reporting import t_critical_95

        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(10) == pytest.approx(2.228)
        assert t_critical_95(30) == pytest.approx(2.042)
        # Beyond the table: the normal limit; fractional df floor.
        assert t_critical_95(200) == pytest.approx(1.960)
        assert t_critical_95(2.9) == t_critical_95(2)
        assert t_critical_95(0) == float("inf")

    def test_seed_summary(self):
        from repro.experiments.reporting import seed_summary, t_critical_95

        summary = seed_summary([10.0, 12.0, 14.0])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(12.0)
        assert summary["std"] == pytest.approx(2.0)
        assert summary["ci95"] == pytest.approx(
            t_critical_95(2) * 2.0 / np.sqrt(3)
        )

    def test_seed_summary_single_replicate(self):
        from repro.experiments.reporting import seed_summary

        summary = seed_summary([5.0])
        assert summary["n"] == 1 and summary["mean"] == 5.0
        assert np.isnan(summary["std"]) and np.isnan(summary["ci95"])

    def test_ab_verdict_significant_shift(self):
        from repro.experiments.reporting import ab_verdict

        verdict = ab_verdict([10.0, 10.1, 9.9], [14.0, 14.2, 13.8])
        assert verdict["verdict"] == "significant"
        assert verdict["significant"] is True
        assert verdict["delta"] == pytest.approx(4.0)
        assert verdict["t"] > 0 and verdict["df"] > 0

    def test_ab_verdict_overlapping_arms(self):
        from repro.experiments.reporting import ab_verdict

        verdict = ab_verdict([10.0, 14.0, 12.0], [11.0, 13.0, 12.5])
        assert verdict["verdict"] == "not significant"
        assert verdict["significant"] is False

    def test_ab_verdict_insufficient_replicates(self):
        from repro.experiments.reporting import ab_verdict

        verdict = ab_verdict([10.0], [12.0])
        assert verdict["significant"] is False
        assert "insufficient replicates" in verdict["verdict"]

    def test_ab_verdict_zero_variance(self):
        from repro.experiments.reporting import ab_verdict

        same = ab_verdict([5.0, 5.0], [5.0, 5.0])
        assert same["significant"] is False and same["delta"] == 0.0
        shifted = ab_verdict([5.0, 5.0], [9.0, 9.0])
        assert shifted["significant"] is True and shifted["delta"] == 4.0


class TestRunner:
    def test_run_all_subset(self):
        buffer = io.StringIO()
        run_all(n_requests=600, out=buffer, only={"fig9"})
        text = buffer.getvalue()
        assert "Figure 9" in text
        assert "pchip" in text
        assert "Figure 12" not in text

    def test_cli_writes_file(self, tmp_path):
        out = tmp_path / "report.txt"
        code = main(["--fast", "--only", "fig9", "--out", str(out)])
        assert code == 0
        assert "Figure 9" in out.read_text()
