"""Unit tests for queue-depth replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.replay import replay_queue_depth, replay_with_idle
from repro.storage import ConstantLatencyDevice, FlashArray, SATA_600
from repro.trace import BlockTrace


def pattern(n: int = 40) -> BlockTrace:
    ts = np.arange(n) * 10_000.0
    return BlockTrace(ts, np.arange(n) * 8, np.full(n, 8), np.zeros(n, dtype=int), name="p")


class TestQueueDepthReplay:
    def test_depth_one_matches_sync_replay_timing(self):
        old = pattern(10)
        device = ConstantLatencyDevice(SATA_600, read_us=200.0, write_us=200.0)
        qd = replay_queue_depth(old, device, queue_depth=1)
        device2 = ConstantLatencyDevice(SATA_600, read_us=200.0, write_us=200.0)
        sync = replay_with_idle(old, device2, None)
        # Same completion-driven pacing (identical durations).
        assert qd.trace.duration == pytest.approx(sync.trace.duration, rel=0.05)

    def test_deeper_queue_is_faster(self):
        old = pattern(60)
        d1 = replay_queue_depth(old, FlashArray(), queue_depth=1).trace.duration
        d8 = replay_queue_depth(old, FlashArray(), queue_depth=8).trace.duration
        assert d8 < d1

    def test_window_bound_respected(self):
        old = pattern(30)
        device = ConstantLatencyDevice(SATA_600, read_us=1_000.0, write_us=1_000.0)
        result = replay_queue_depth(old, device, queue_depth=2)
        # At most 2 requests may be submitted before the first finishes.
        submits = result.trace.timestamps
        finishes = np.array([c.finish for c in result.completions])
        for i in range(2, len(submits)):
            assert submits[i] >= finishes[i - 2] - 1e-9

    def test_preserves_pattern_and_collects_device_times(self):
        old = pattern(15)
        result = replay_queue_depth(old, FlashArray(), queue_depth=4)
        np.testing.assert_array_equal(result.trace.lbas, old.lbas)
        assert result.trace.has_device_times
        assert result.trace.metadata["queue_depth"] == 4

    def test_idle_is_injected_between_submissions(self):
        old = pattern(5)
        idle = np.full(4, 50_000.0)
        device = ConstantLatencyDevice(SATA_600, read_us=10.0, write_us=10.0)
        result = replay_queue_depth(old, device, idle_us=idle, queue_depth=4)
        gaps = result.trace.inter_arrival_times()
        assert (gaps >= 50_000.0).all()

    def test_validation(self):
        old = pattern(5)
        device = ConstantLatencyDevice(SATA_600)
        with pytest.raises(ValueError):
            replay_queue_depth(old, device, queue_depth=0)
        with pytest.raises(ValueError):
            replay_queue_depth(old, device, idle_us=np.zeros(2))
        with pytest.raises(ValueError):
            replay_queue_depth(BlockTrace([], [], [], []), device)
        with pytest.raises(ValueError):
            replay_queue_depth(old, device, idle_us=np.full(4, -1.0))
