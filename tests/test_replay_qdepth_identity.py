"""Bit-identity suite for the queue-depth replay engines.

:func:`repro.replay.replay_queue_depth` (precomputed-service FIFO
window / heap-based event fallback) must reproduce the retained scalar
oracle :func:`repro.replay.replay_queue_depth_scalar` stamp for stamp,
for every device type, queue depth, idle pattern, and degenerate input.
Same contract (and same device zoo) as the batch-replay equivalence
suite.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay import replay_queue_depth, replay_queue_depth_scalar
from repro.trace.trace import BlockTrace
from test_properties import block_traces
from test_replay_batch import DEVICE_FACTORIES, assert_replays_identical

#: Window depths covering the degenerate synchronous mode, shallow and
#: deep windows, and a depth larger than most test traces.
QUEUE_DEPTHS = (1, 2, 4, 9)


class TestQdepthScalarEquivalence:
    @pytest.mark.parametrize("device_key", sorted(DEVICE_FACTORIES))
    @given(trace=block_traces(min_n=2, max_n=50), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_stamps_bit_identical(self, device_key, trace, data):
        make = DEVICE_FACTORIES[device_key]
        queue_depth = data.draw(st.sampled_from(QUEUE_DEPTHS))
        idle = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1e5),
                    min_size=len(trace) - 1,
                    max_size=len(trace) - 1,
                )
            )
        )
        fast = replay_queue_depth(trace, make(), idle_us=idle, queue_depth=queue_depth)
        oracle = replay_queue_depth_scalar(trace, make(), idle_us=idle, queue_depth=queue_depth)
        assert_replays_identical(fast, oracle)

    @pytest.mark.parametrize("device_key", sorted(DEVICE_FACTORIES))
    @pytest.mark.parametrize("queue_depth", QUEUE_DEPTHS)
    def test_no_idle_windows(self, device_key, queue_depth):
        """Back-to-back replay keeps the window saturated — the regime
        where the in-flight bookkeeping actually matters."""
        rng = np.random.default_rng(17)
        n = 64
        ts = np.cumsum(rng.integers(1, 300, n)).astype(np.float64)
        trace = BlockTrace(
            timestamps=ts - ts[0],
            lbas=rng.integers(0, 1 << 22, n),
            sizes=rng.integers(1, 96, n),
            ops=rng.integers(0, 2, n).astype(np.int8),
        )
        make = DEVICE_FACTORIES[device_key]
        fast = replay_queue_depth(trace, make(), queue_depth=queue_depth)
        oracle = replay_queue_depth_scalar(trace, make(), queue_depth=queue_depth)
        assert_replays_identical(fast, oracle)

    @pytest.mark.parametrize("device_key", sorted(DEVICE_FACTORIES))
    def test_single_request_trace(self, device_key):
        trace = BlockTrace([0.0], [128], [8], [0])
        make = DEVICE_FACTORIES[device_key]
        for queue_depth in (1, 4):
            fast = replay_queue_depth(trace, make(), queue_depth=queue_depth)
            oracle = replay_queue_depth_scalar(trace, make(), queue_depth=queue_depth)
            assert_replays_identical(fast, oracle)

    def test_validation_matches_oracle(self):
        device = DEVICE_FACTORIES["const"]()
        trace = BlockTrace([0.0, 10.0, 20.0], [0, 8, 16], [8, 8, 8], [0, 1, 0])
        empty = BlockTrace([], [], [], [])
        for engine in (replay_queue_depth, replay_queue_depth_scalar):
            with pytest.raises(ValueError):
                engine(empty, device)
            with pytest.raises(ValueError):
                engine(trace, device, queue_depth=0)
            with pytest.raises(ValueError):
                engine(trace, device, idle_us=np.zeros(1))
            with pytest.raises(ValueError):
                engine(trace, device, idle_us=np.full(2, -1.0))
