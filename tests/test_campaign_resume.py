"""Resume semantics: a killed campaign restarts without recomputation.

The contract under test (ISSUE 3 acceptance): interrupt a campaign
mid-shard, restart it, and (a) no already-completed run key is
recomputed, (b) the aggregated table is identical to an uninterrupted
run's.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.campaign.engine as engine_mod
from repro.campaign import CampaignEngine, CampaignSpec, DeviceSpec, expand
from repro.campaign.engine import _scan_checkpoints


def _spec() -> CampaignSpec:
    return CampaignSpec(
        name="resume-grid",
        action="reconstruct",
        workloads=("MSNFS", "ikki", "CFS"),
        devices=(DeviceSpec("new", "new-node"), DeviceSpec("old", "old-node")),
        methods=("revision",),
        n_requests=(200,),
    )


class _KillAfter:
    """Wrap ``run_point`` to simulate a crash after N completed points."""

    def __init__(self, original, n_points: int):
        self._original = original
        self.remaining = n_points
        self.calls = 0

    def __call__(self, spec, point):
        if self.remaining == 0:
            raise KeyboardInterrupt("simulated mid-shard kill")
        self.remaining -= 1
        self.calls += 1
        return self._original(spec, point)


@pytest.fixture
def counted_run_point(monkeypatch):
    """Count ``run_point`` invocations (and optionally kill mid-run).

    The genuine ``run_point`` is captured once, before any install, so
    repeated installs within a test never chain through each other.
    """
    original = engine_mod.run_point

    def install(kill_after: int | None = None):
        counter = _KillAfter(original, kill_after if kill_after is not None else 10**9)
        monkeypatch.setattr(engine_mod, "run_point", counter)
        return counter

    return install


@pytest.mark.parametrize("fmt", ["segments", "json"])
def test_interrupt_then_resume_is_identical(tmp_path: Path, counted_run_point, fmt: str):
    spec = _spec()
    n_points = len(expand(spec))
    assert n_points == 6

    # Ground truth: one uninterrupted run.
    clean = CampaignEngine(spec, out_dir=tmp_path / "clean", checkpoint_format=fmt).run()

    # Interrupted run: the engine dies after 2 completed points...
    out = tmp_path / "killed"
    killer = counted_run_point(kill_after=2)
    with pytest.raises(KeyboardInterrupt):
        CampaignEngine(spec, out_dir=out, checkpoint_format=fmt).run()
    assert killer.calls == 2
    # ...but both completed points are on disk (segment lines or files).
    assert len(_scan_checkpoints(out, expand(spec).keys())) == 2
    assert not (out / "results.npz").exists()  # no aggregate yet

    # ...and the restart computes exactly the missing keys, none twice.
    counter = counted_run_point()
    resumed = CampaignEngine(spec, out_dir=out, checkpoint_format=fmt).run()
    assert counter.calls == n_points - 2
    assert resumed.n_resumed == 2 and resumed.n_computed == n_points - 2

    # The aggregate is identical to the uninterrupted run, column for column.
    assert resumed.table == clean.table

    # A third run touches nothing at all.
    counter2 = counted_run_point()
    again = CampaignEngine(spec, out_dir=out, checkpoint_format=fmt).run()
    assert counter2.calls == 0
    assert again.n_resumed == n_points and again.table == clean.table


def test_no_resume_flag_recomputes(tmp_path: Path, counted_run_point):
    spec = _spec()
    out = tmp_path / "camp"
    CampaignEngine(spec, out_dir=out).run()
    counter = counted_run_point()
    result = CampaignEngine(spec, out_dir=out, resume=False).run()
    assert counter.calls == len(expand(spec))
    assert result.n_resumed == 0


def test_degraded_sweep_interrupt_then_resume(tmp_path: Path, counted_run_point):
    """Fault-parameterised device specs resume like any other point.

    The fault knobs live inside the device description, so they are
    part of the checkpoint run key — a killed degraded sweep must
    restart with zero recomputation and an identical table.
    """
    spec = CampaignSpec(
        name="degraded-resume",
        action="reconstruct",
        workloads=("MSNFS",),
        devices=(
            DeviceSpec("healthy", "flash_array", {"n_ssds": 2, "stripe_kb": 16}),
            DeviceSpec(
                "offline",
                "flash_array",
                {"n_ssds": 2, "stripe_kb": 16, "offline_at": 40, "offline_channels": 4},
            ),
            DeviceSpec(
                "rebuilding",
                "raid1",
                {"failed_member": 0, "rebuild_every": 16, "rebuild_chunk": 64},
            ),
        ),
        methods=("revision",),
        n_requests=(150,),
    )
    n_points = len(expand(spec))
    assert n_points == 3

    clean = CampaignEngine(spec, out_dir=tmp_path / "clean").run()

    out = tmp_path / "killed"
    killer = counted_run_point(kill_after=1)
    with pytest.raises(KeyboardInterrupt):
        CampaignEngine(spec, out_dir=out).run()
    assert killer.calls == 1

    counter = counted_run_point()
    resumed = CampaignEngine(spec, out_dir=out).run()
    assert counter.calls == n_points - 1
    assert resumed.n_resumed == 1 and resumed.n_computed == n_points - 1
    assert resumed.table == clean.table


def _synthetic_spec(sizes: tuple[int, ...]) -> CampaignSpec:
    """A cheap deterministic grid: one point per ``n_requests`` value."""
    return CampaignSpec(
        name="steal-grid",
        action="synthetic",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=sizes,
        options={"iters_per_request": 3},
    )


class TestWorkStealingResume:
    """Stealing-scheduler checkpoints obey the same resume contract.

    The chunk queue changes *which worker* computes a point, never the
    point's run key or checkpoint payload, so a campaign killed
    mid-steal must resume under either scheduler with zero
    recomputation and a table identical to an uninterrupted run's.
    """

    def test_kill_mid_steal_then_resume(self, tmp_path: Path):
        """Simulated kill after a prefix of stolen chunks: the engine
        restarted over the same directory computes exactly the missing
        points and matches an uninterrupted run bit for bit."""
        from repro.campaign.engine import _CHUNK_PLANS, _CHUNK_SEGMENTS, _run_chunk

        spec = _synthetic_spec(tuple(range(100, 130)))
        plan = expand(spec)
        keys = plan.keys()
        clean = CampaignEngine(spec, out_dir=tmp_path / "clean", jobs=2).run()

        # A worker steals three chunks, checkpoints every point as it
        # finishes... and the process dies before the queue drains.
        out = tmp_path / "killed"
        out.mkdir()
        context = (spec.to_dict(), str(out), "segments")
        chunks = plan.chunks(4)
        done: set[int] = set()
        try:
            for chunk in chunks[:3]:
                _run_chunk(context, [(i, keys[i]) for i in chunk])
                done.update(chunk)
        finally:
            # The "kill": drop the worker's cached plan and segment
            # handle (every completed line is already flushed to disk).
            _CHUNK_PLANS.clear()
            for writer in _CHUNK_SEGMENTS.values():
                writer.close()
            _CHUNK_SEGMENTS.clear()
        assert len(_scan_checkpoints(out, keys)) == len(done) == 12

        resumed = CampaignEngine(
            spec, out_dir=out, jobs=2, scheduler="stealing"
        ).run()
        assert resumed.n_resumed == len(done)
        assert resumed.n_computed == len(plan) - len(done)
        assert resumed.table == clean.table

    @pytest.mark.parametrize(
        "first,second", [("stealing", "static"), ("static", "stealing")]
    )
    def test_cross_scheduler_resume(
        self, tmp_path: Path, counted_run_point, first: str, second: str
    ):
        """Checkpoints written under one scheduler resume under the
        other: run keys are scheduler-agnostic."""
        spec = _synthetic_spec(tuple(range(100, 112)))
        n_points = len(expand(spec))
        out = tmp_path / "camp"
        killer = counted_run_point(kill_after=5)
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(spec, out_dir=out, scheduler=first).run()
        assert killer.calls == 5

        counter = counted_run_point()
        resumed = CampaignEngine(spec, out_dir=out, scheduler=second).run()
        assert counter.calls == n_points - 5
        assert resumed.n_resumed == 5 and resumed.n_computed == n_points - 5

    def test_schedulers_produce_identical_tables(self, tmp_path: Path):
        spec = _synthetic_spec(tuple(range(200, 215)))
        static = CampaignEngine(
            spec, out_dir=tmp_path / "static", jobs=2, scheduler="static"
        ).run()
        stealing = CampaignEngine(
            spec, out_dir=tmp_path / "steal", jobs=2, scheduler="stealing"
        ).run()
        assert static.table == stealing.table


def test_grown_grid_resumes_shared_points(tmp_path: Path, counted_run_point):
    """Adding an axis value only computes the new points."""
    small = _spec()
    out = tmp_path / "camp"
    CampaignEngine(small, out_dir=out).run()
    grown = CampaignSpec(
        name="resume-grid",
        action="reconstruct",
        workloads=("MSNFS", "ikki", "CFS", "prxy"),
        devices=small.devices,
        methods=small.methods,
        n_requests=small.n_requests,
    )
    counter = counted_run_point()
    result = CampaignEngine(grown, out_dir=out).run()
    assert counter.calls == 2  # only prxy x {new, old}
    assert result.n_resumed == 6 and result.n_computed == 2
