"""Unit tests for workload specs, intent generation, and trace collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import ConstantLatencyDevice, SATA_600
from repro.trace import OpType
from repro.workloads import (
    IdleProcess,
    SizeMix,
    WorkloadSpec,
    collect_trace,
    generate_intents,
)


class TestSizeMix:
    def test_mean_and_probabilities(self):
        mix = SizeMix(sizes=(8, 16), weights=(1.0, 1.0))
        assert mix.mean_sectors() == pytest.approx(12.0)
        assert mix.mean_kb() == pytest.approx(6.0)
        np.testing.assert_allclose(mix.probabilities, [0.5, 0.5])

    @pytest.mark.parametrize("avg_kb", [4.0, 8.27, 10.71, 28.79, 74.42])
    def test_for_average_kb_hits_target(self, avg_kb):
        mix = SizeMix.for_average_kb(avg_kb)
        assert mix.mean_kb() == pytest.approx(avg_kb, rel=0.15)

    def test_for_average_kb_has_size_variety(self):
        # The inference model needs at least two sizes per op type.
        for avg in (4.0, 9.0, 40.0):
            assert len(SizeMix.for_average_kb(avg).sizes) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SizeMix(sizes=(), weights=())
        with pytest.raises(ValueError):
            SizeMix(sizes=(8,), weights=(-1.0,))
        with pytest.raises(ValueError):
            SizeMix(sizes=(0,), weights=(1.0,))


class TestIdleProcess:
    def test_idle_fraction_respected(self, rng):
        proc = IdleProcess(idle_fraction=0.3, idle_median_us=1e5)
        flags = [proc.sample_think(rng)[1] for _ in range(5000)]
        assert np.mean(flags) == pytest.approx(0.3, abs=0.03)

    def test_idles_longer_than_bursts(self, rng):
        proc = IdleProcess(idle_fraction=0.5, idle_median_us=1e5, cpu_burst_mean_us=40.0)
        idles, bursts = [], []
        for _ in range(2000):
            value, is_idle = proc.sample_think(rng)
            (idles if is_idle else bursts).append(value)
        assert np.median(idles) > 100 * np.median(bursts)

    def test_validation(self):
        with pytest.raises(ValueError):
            IdleProcess(idle_fraction=1.5)


class TestWorkloadSpec:
    def test_scaled(self, mixed_spec):
        assert mixed_spec.scaled(123).n_requests == 123
        # Other fields unchanged.
        assert mixed_spec.scaled(123).seed == mixed_spec.seed

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", n_requests=0)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", read_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(name="x", address_space_sectors=4)


class TestGenerateIntents:
    def test_deterministic(self, mixed_spec):
        a = generate_intents(mixed_spec)
        b = generate_intents(mixed_spec)
        np.testing.assert_array_equal(a.lbas, b.lbas)
        np.testing.assert_array_equal(a.thinks, b.thinks)

    def test_read_fraction_approximate(self, mixed_spec):
        stream = generate_intents(mixed_spec)
        read_frac = np.mean(stream.ops == int(OpType.READ))
        assert read_frac == pytest.approx(mixed_spec.read_fraction, abs=0.08)

    def test_async_fraction_approximate(self, mixed_spec):
        stream = generate_intents(mixed_spec)
        assert np.mean(~stream.syncs) == pytest.approx(mixed_spec.async_fraction, abs=0.05)

    def test_sequential_continuations_share_op(self, mixed_spec):
        stream = generate_intents(mixed_spec)
        seq_mask = stream.lbas[1:] == stream.lbas[:-1] + stream.sizes[:-1]
        same_op = stream.ops[1:] == stream.ops[:-1]
        assert same_op[seq_mask].all()

    def test_first_request_has_no_think(self, mixed_spec):
        stream = generate_intents(mixed_spec)
        assert stream.thinks[0] == 0.0
        assert not stream.is_idle[0]

    def test_idle_accounting(self, mixed_spec):
        stream = generate_intents(mixed_spec)
        assert stream.idle_count() == int(stream.is_idle.sum())
        assert stream.total_idle_us() == pytest.approx(stream.thinks[stream.is_idle].sum())

    def test_lbas_within_address_space(self, mixed_spec):
        stream = generate_intents(mixed_spec)
        assert (stream.lbas >= 0).all()
        # Sequential runs may extend a little past a jump target but
        # must stay within the configured space plus one max run.
        assert stream.lbas.max() < mixed_spec.address_space_sectors * 1.01


class TestCollectTrace:
    def test_sync_semantics_gap_includes_service(self):
        # All-sync, no idle: each gap = previous completion + think(0).
        spec = WorkloadSpec(
            name="sync",
            n_requests=50,
            async_fraction=0.0,
            idle=IdleProcess(idle_fraction=0.0, cpu_burst_mean_us=10.0),
            seq_run_continue=0.0,
            seed=3,
        )
        device = ConstantLatencyDevice(SATA_600, read_us=500.0, write_us=500.0)
        trace = collect_trace(generate_intents(spec), device)
        gaps = trace.inter_arrival_times()
        # Every gap must exceed the 500 us device time (sync wait).
        assert (gaps > 500.0).all()

    def test_async_requests_produce_short_gaps(self):
        spec = WorkloadSpec(
            name="async",
            n_requests=200,
            async_fraction=1.0,
            idle=IdleProcess(idle_fraction=0.0, cpu_burst_mean_us=10.0),
            seq_run_continue=0.0,
            seed=3,
        )
        device = ConstantLatencyDevice(SATA_600, read_us=500.0, write_us=500.0)
        trace = collect_trace(generate_intents(spec), device)
        gaps = trace.inter_arrival_times()
        # Async submitters only pay channel delay + burst, far below 500us.
        assert np.median(gaps) < 200.0

    def test_device_stamps_optional(self, mixed_spec, const_device):
        stream = generate_intents(mixed_spec.scaled(100))
        with_dev = collect_trace(stream, const_device, record_device_times=True)
        without = collect_trace(stream, const_device, record_device_times=False)
        assert with_dev.has_device_times
        assert not without.has_device_times
        np.testing.assert_allclose(with_dev.timestamps, without.timestamps)

    def test_sync_flags_recorded_when_asked(self, mixed_spec, const_device):
        stream = generate_intents(mixed_spec.scaled(100))
        trace = collect_trace(stream, const_device, record_sync_flags=True)
        assert trace.has_sync_flags
        assert trace.syncs is not None
        np.testing.assert_array_equal(trace.syncs, stream.syncs)

    def test_metadata_carries_ground_truth(self, mixed_spec, const_device):
        stream = generate_intents(mixed_spec.scaled(100))
        trace = collect_trace(stream, const_device)
        assert trace.metadata["n_user_idles"] == stream.idle_count()
        assert trace.metadata["collected_on"] == const_device.name

    def test_same_pattern_different_devices(self, mixed_spec, hdd, flash):
        # The paper's OLD/NEW methodology: identical request patterns,
        # different timing.
        stream = generate_intents(mixed_spec.scaled(300))
        old = collect_trace(stream, hdd)
        new = collect_trace(stream, flash)
        np.testing.assert_array_equal(old.lbas, new.lbas)
        np.testing.assert_array_equal(old.ops, new.ops)
        assert old.duration > new.duration  # flash is faster
