"""Unit tests for idle extraction and T_movd calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import (
    LatencyModel,
    calibrate_tmovd,
    extract_idle,
    extract_idle_with_model,
    measured_movd_samples,
    tcdel_profile,
)
from repro.trace import BlockTrace
from repro.workloads import collect_trace, generate_intents, get_spec


@pytest.fixture()
def simple_model() -> LatencyModel:
    return LatencyModel(5.0, 5.0, 10.0, 10.0, 0.0)


def flat_trace(gaps: list[float], size: int = 8) -> BlockTrace:
    ts = np.concatenate([[0.0], np.cumsum(gaps)])
    n = len(ts)
    lbas = np.arange(n) * size  # fully sequential
    return BlockTrace(ts, lbas, np.full(n, size), np.zeros(n, dtype=int))


class TestExtractIdleWithModel:
    def test_idle_is_gap_minus_tsdev(self, simple_model):
        # Sequential reads of 8 sectors: tsdev = 40.
        ex = extract_idle_with_model(flat_trace([100.0, 45.0, 30.0]), simple_model)
        np.testing.assert_allclose(ex.tidle_us, [60.0, 5.0, 0.0])

    def test_async_mask_flags_short_gaps(self, simple_model):
        ex = extract_idle_with_model(flat_trace([100.0, 30.0]), simple_model)
        np.testing.assert_array_equal(ex.async_mask, [False, True])

    def test_summaries(self, simple_model):
        ex = extract_idle_with_model(flat_trace([100.0, 45.0, 30.0]), simple_model)
        assert ex.idle_frequency() == pytest.approx(2 / 3)
        assert ex.total_idle_us() == pytest.approx(65.0)
        assert ex.mean_idle_us() == pytest.approx(32.5)

    def test_short_trace_rejected(self, simple_model):
        with pytest.raises(ValueError):
            extract_idle_with_model(BlockTrace([0.0], [0], [8], [0]), simple_model)


class TestExtractIdle:
    def test_measured_path_used_when_available(self, old_trace):
        ex = extract_idle(old_trace)
        assert ex.used_measured_tsdev
        assert ex.report is None
        np.testing.assert_allclose(ex.tsdev_us, old_trace.device_times()[:-1])

    def test_measured_path_can_be_disabled(self, old_trace):
        ex = extract_idle(old_trace, prefer_measured=False)
        assert not ex.used_measured_tsdev
        assert ex.report is not None

    def test_inferred_path(self, old_trace_bare):
        ex = extract_idle(old_trace_bare)
        assert not ex.used_measured_tsdev
        assert ex.report is not None
        assert (ex.tidle_us >= 0).all()

    def test_inferred_idle_close_to_ground_truth(self, old_trace_bare):
        # The generator recorded the true injected idle in metadata.
        ex = extract_idle(old_trace_bare)
        true_total = old_trace_bare.metadata["total_user_idle_us"]
        assert ex.total_idle_us() == pytest.approx(true_total, rel=0.35)


class TestMovdCalibration:
    def test_samples_positive_and_plentiful(self, old_trace):
        samples = measured_movd_samples(old_trace)
        assert samples.size > 100
        assert (samples >= 0).all()

    def test_requires_device_times(self, old_trace_bare):
        with pytest.raises(ValueError):
            measured_movd_samples(old_trace_bare)

    def test_calibration_recovers_disk_movd(self, hdd):
        # Replay three FIU-style catalog workloads on the disk; the
        # representative must land inside the empirical moving-delay
        # distribution (workloads span a fraction of the disk, so the
        # *observed* seeks are shorter than the datasheet third-stroke).
        traces = [
            collect_trace(generate_intents(get_spec(name).scaled(2500)), hdd)
            for name in ("ikki", "casa", "online")
        ]
        cal = calibrate_tmovd(traces)
        all_samples = np.concatenate([measured_movd_samples(t) for t in traces])
        lo, hi = np.percentile(all_samples[all_samples > 0], [5, 95])
        assert lo <= cal.representative_us <= hi
        # Mechanical scale: milliseconds, not microseconds.
        assert 1_000.0 < cal.representative_us < 20_000.0
        assert set(cal.per_workload_rep_us) == {"ikki", "casa", "online"}

    def test_spread_is_bounded(self, hdd):
        # The Figure 7a observation: workloads agree on T_movd's scale.
        traces = [
            collect_trace(generate_intents(get_spec(name).scaled(2000)), hdd)
            for name in ("ikki", "topgun", "webmail", "casa")
        ]
        cal = calibrate_tmovd(traces)
        assert cal.spread() < 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            calibrate_tmovd([])


class TestTcdelProfile:
    def test_profile_has_all_classes(self, old_trace, hdd):
        profile = tcdel_profile(old_trace, hdd)
        assert set(profile) == {"SeqR", "RandR", "SeqW", "RandW"}

    def test_rand_vs_seq_nearly_equal(self, old_trace, hdd):
        # Figure 7b: Tcdel differs by op type but hardly by pattern.
        profile = tcdel_profile(old_trace, hdd)
        assert profile["SeqR"] == pytest.approx(profile["RandR"], rel=0.25)
        assert profile["SeqW"] == pytest.approx(profile["RandW"], rel=0.25)

    def test_magnitudes_match_channel(self, old_trace, hdd):
        profile = tcdel_profile(old_trace, hdd)
        # SATA-class: tens of microseconds.
        for value in profile.values():
            assert 5.0 < value < 500.0
