"""Property tests (hypothesis) for lake feature vectors and similarity.

The contracts pinned here are what make the catalog's stored vectors
trustworthy: feature extraction is a pure function of the trace's
columns (bit-equal across copies, store round-trips, chunked column
assembly, and processes), every cataloged trace is its own nearest
neighbour, rankings are total and insertion-order-invariant, and
content dedup yields one artifact row with many refs.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.lake import (
    LakeCatalog,
    feature_dict,
    feature_names,
    nearest_neighbors,
    trace_feature_vector,
)
from repro.lake.features import _qdepth_profile
from repro.trace import BlockTrace, load_trace_npz, save_trace_npz

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def block_traces(draw, min_n: int = 1, max_n: int = 60, with_dev: bool = False):
    """Random valid BlockTrace with non-decreasing timestamps."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    gaps = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=max(n - 1, 0),
            elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        )
    )
    ts = np.concatenate([[0.0], np.cumsum(gaps)])
    lbas = draw(
        hnp.arrays(dtype=np.int64, shape=n, elements=st.integers(min_value=0, max_value=10**9))
    )
    sizes = draw(
        hnp.arrays(dtype=np.int64, shape=n, elements=st.integers(min_value=1, max_value=2048))
    )
    ops = draw(hnp.arrays(dtype=np.int8, shape=n, elements=st.sampled_from([0, 1])))
    if with_dev:
        dev = draw(
            hnp.arrays(
                dtype=np.float64,
                shape=n,
                elements=st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
            )
        )
        return BlockTrace(ts, lbas, sizes, ops, issues=ts, completes=ts + dev)
    return BlockTrace(ts, lbas, sizes, ops)


def _copy_trace(trace: BlockTrace) -> BlockTrace:
    """The same columns, freshly copied arrays."""
    return BlockTrace(
        timestamps=trace.timestamps.copy(),
        lbas=trace.lbas.copy(),
        sizes=trace.sizes.copy(),
        ops=trace.ops.copy(),
        issues=None if trace.issues is None else trace.issues.copy(),
        completes=None if trace.completes is None else trace.completes.copy(),
    )


def _chunked_trace(trace: BlockTrace, split: int) -> BlockTrace:
    """The trace rebuilt by concatenating two column chunks — the shape
    a chunked/streaming parser produces."""
    def cat(column):
        if column is None:
            return None
        return np.concatenate([column[:split], column[split:]])

    return BlockTrace(
        timestamps=cat(trace.timestamps),
        lbas=cat(trace.lbas),
        sizes=cat(trace.sizes),
        ops=cat(trace.ops),
        issues=cat(trace.issues),
        completes=cat(trace.completes),
    )


# ----------------------------------------------------------------------
# feature-vector determinism
# ----------------------------------------------------------------------


class TestFeatureDeterminism:
    @settings(max_examples=50)
    @given(block_traces(with_dev=True))
    def test_vector_is_pure_function_of_columns(self, trace):
        first = trace_feature_vector(trace)
        second = trace_feature_vector(_copy_trace(trace))
        np.testing.assert_array_equal(first, second)  # bit-equal, not approx

    @settings(max_examples=50)
    @given(block_traces())
    def test_vector_shape_and_finiteness(self, trace):
        vector = trace_feature_vector(trace)
        assert vector.shape == (len(feature_names()),)
        assert vector.dtype == np.float64
        assert np.all(np.isfinite(vector))

    @settings(max_examples=30)
    @given(block_traces(min_n=2, with_dev=True), st.data())
    def test_chunked_assembly_is_invariant(self, trace, data):
        split = data.draw(st.integers(min_value=0, max_value=len(trace)))
        np.testing.assert_array_equal(
            trace_feature_vector(trace), trace_feature_vector(_chunked_trace(trace, split))
        )

    @settings(max_examples=20)
    @given(block_traces(with_dev=True))
    def test_store_round_trip_is_bit_equal(self, tmp_path_factory, trace):
        path = tmp_path_factory.mktemp("lake-prop") / "t.npz"
        save_trace_npz(trace, path)
        np.testing.assert_array_equal(
            trace_feature_vector(trace), trace_feature_vector(load_trace_npz(path))
        )

    @settings(max_examples=30)
    @given(block_traces())
    def test_name_and_metadata_never_affect_the_vector(self, trace):
        renamed = _copy_trace(trace)
        renamed.name = "something-else"
        renamed.metadata = {"category": "X", "note": "ignored"}
        np.testing.assert_array_equal(
            trace_feature_vector(trace), trace_feature_vector(renamed)
        )

    def test_vectors_identical_across_processes(self, tmp_path):
        paths = []
        for seed in range(3):
            rng = np.random.default_rng(seed)
            n = 80
            ts = np.cumsum(rng.random(n) * 50.0)
            trace = BlockTrace(
                timestamps=ts - ts[0],
                lbas=rng.integers(0, 1 << 30, n),
                sizes=rng.integers(1, 128, n),
                ops=rng.integers(0, 2, n).astype(np.int8),
                issues=ts,
                completes=ts + rng.random(n) * 10,
            )
            paths.append(save_trace_npz(trace, tmp_path / f"t{seed}.npz"))
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.lake import trace_feature_vector\n"
            "from repro.trace import load_trace_npz\n"
            "for p in {paths!r}:\n"
            "    print(trace_feature_vector(load_trace_npz(p)).tobytes().hex())\n"
        ).format(src=REPO_SRC, paths=[str(p) for p in paths])
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        theirs = proc.stdout.split()
        ours = [
            trace_feature_vector(load_trace_npz(p)).tobytes().hex() for p in paths
        ]
        assert theirs == ours

    def test_single_request_trace_has_defined_features(self):
        trace = BlockTrace(
            timestamps=np.array([0.0]),
            lbas=np.array([100]),
            sizes=np.array([8]),
            ops=np.array([0], dtype=np.int8),
        )
        d = feature_dict(trace)
        assert d["log10_n_requests"] == 0.0
        assert d["seq_fraction"] == 0.0 and d["lba_jump_log_mean"] == 0.0
        assert d["qdepth_mean"] == 0.0 and d["qdepth_max"] == 0.0

    def test_qdepth_profile_hand_computed(self):
        # +1@0, +1@1, -1@2, -1@3: depths 1,2,1 over unit widths, span 3.
        trace = BlockTrace(
            timestamps=np.array([0.0, 1.0]),
            lbas=np.array([0, 8]),
            sizes=np.array([8, 8]),
            ops=np.array([0, 0], dtype=np.int8),
            issues=np.array([0.0, 1.0]),
            completes=np.array([2.0, 3.0]),
        )
        mean, peak = _qdepth_profile(trace)
        assert peak == 2.0
        assert mean == pytest.approx(4.0 / 3.0)

    def test_qdepth_without_device_times_is_zero(self):
        trace = BlockTrace(
            timestamps=np.array([0.0, 1.0]),
            lbas=np.array([0, 8]),
            sizes=np.array([8, 8]),
            ops=np.array([0, 0], dtype=np.int8),
        )
        assert _qdepth_profile(trace) == (0.0, 0.0)


# ----------------------------------------------------------------------
# similarity invariants
# ----------------------------------------------------------------------


def _matrix_from_traces(traces) -> tuple[list[str], np.ndarray]:
    vectors = [trace_feature_vector(t) for t in traces]
    fingerprints = [f"fp{i:02d}" for i in range(len(vectors))]
    return fingerprints, np.vstack(vectors)


class TestSimilarityInvariants:
    @settings(max_examples=30)
    @given(st.lists(block_traces(min_n=2, with_dev=True), min_size=2, max_size=6))
    def test_every_trace_is_its_own_nearest_neighbour(self, traces):
        fingerprints, matrix = _matrix_from_traces(traces)
        for i, fp in enumerate(fingerprints):
            hits = nearest_neighbors(fingerprints, matrix, matrix[i], k=len(matrix))
            # A trace always measures distance 0 to itself; other rows
            # may legitimately tie at 0 (duplicate vectors, or raw
            # differences tiny enough that the squared term underflows),
            # in which case the tie breaks by ascending fingerprint.
            zero = [n.fingerprint for n in hits if n.distance == 0.0]
            assert fp in zero
            assert hits[0].fingerprint == min(zero)

    @settings(max_examples=20)
    @given(
        st.lists(block_traces(min_n=2, with_dev=True), min_size=3, max_size=6),
        st.randoms(use_true_random=False),
    )
    def test_ranking_is_row_order_invariant(self, traces, rnd):
        fingerprints, matrix = _matrix_from_traces(traces)
        order = list(range(len(fingerprints)))
        rnd.shuffle(order)
        shuffled_fps = [fingerprints[i] for i in order]
        shuffled = matrix[order]
        query = matrix[0]
        a = nearest_neighbors(fingerprints, matrix, query, k=len(fingerprints))
        b = nearest_neighbors(shuffled_fps, shuffled, query, k=len(fingerprints))
        assert [(n.fingerprint, round(n.distance, 9)) for n in a] == [
            (n.fingerprint, round(n.distance, 9)) for n in b
        ]

    @settings(max_examples=50)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(3, 8), st.just(len(feature_names()))),
            elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
        ),
        st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    )
    def test_per_dimension_affine_rescaling_preserves_ranking(
        self, matrix, scale, shift
    ):
        """Z-scoring makes distances invariant to a positive affine
        transform applied to any one dimension of matrix and query —
        provided the dimension has spread (constant columns are left
        unstandardised by design, so they carry raw offsets).  The
        transform cancels exactly in real arithmetic but only to ~1 ulp
        in floats, so rows whose distances are (near-)tied can legally
        swap — the ranking assertion skips such examples and the
        distance assertion below still pins the invariant for them."""
        from hypothesis import assume

        assume(float(matrix[:, 3].std()) > 1e-6)
        fingerprints = [f"fp{i:02d}" for i in range(len(matrix))]
        query = matrix[0] + 0.1
        transformed = matrix.copy()
        transformed[:, 3] = transformed[:, 3] * scale + shift
        tq = query.copy()
        tq[3] = tq[3] * scale + shift
        a = nearest_neighbors(fingerprints, matrix, query, k=len(fingerprints))
        b = nearest_neighbors(fingerprints, transformed, tq, k=len(fingerprints))
        distances = sorted(n.distance for n in a)
        gaps = [y - x for x, y in zip(distances, distances[1:])]
        if not gaps or min(gaps) > 1e-6 * (1.0 + distances[-1]):
            assert [n.fingerprint for n in a] == [n.fingerprint for n in b]
        for x, y in zip(a, b):
            assert x.distance == pytest.approx(y.distance, rel=1e-9, abs=1e-9)

    def test_ties_break_by_fingerprint_ascending(self):
        vector = np.arange(len(feature_names()), dtype=np.float64)
        matrix = np.vstack([vector, vector, vector + 1.0])
        hits = nearest_neighbors(["bb", "aa", "cc"], matrix, vector, k=3)
        assert [n.fingerprint for n in hits] == ["aa", "bb", "cc"]

    def test_exclude_drops_only_the_named_row(self):
        vector = np.zeros(len(feature_names()))
        matrix = np.vstack([vector, vector + 1.0])
        hits = nearest_neighbors(["aa", "bb"], matrix, vector, k=5, exclude="aa")
        assert [n.fingerprint for n in hits] == ["bb"]

    def test_validation_errors(self):
        matrix = np.zeros((2, len(feature_names())))
        with pytest.raises(ValueError, match="fingerprints"):
            nearest_neighbors(["only-one"], matrix, matrix[0])
        with pytest.raises(ValueError, match="shape"):
            nearest_neighbors(["a", "b"], matrix, np.zeros(3))
        assert nearest_neighbors([], np.empty((0, 16)), np.zeros(16)) == []


# ----------------------------------------------------------------------
# dedup property
# ----------------------------------------------------------------------


class TestDedupProperty:
    def test_same_bytes_two_paths_one_row_two_refs_one_vector(self, tmp_path):
        """Ingesting one trace's bytes from two locations yields exactly
        one artifact row, one feature row, and both reference edges."""
        rng = np.random.default_rng(11)
        n = 50
        ts = np.cumsum(rng.random(n))
        trace = BlockTrace(
            timestamps=ts - ts[0],
            lbas=rng.integers(0, 1 << 20, n),
            sizes=rng.integers(1, 64, n),
            ops=rng.integers(0, 2, n).astype(np.int8),
        )
        a = save_trace_npz(trace, tmp_path / "a" / "t.npz")
        b = tmp_path / "b" / "t.npz"
        b.parent.mkdir()
        b.write_bytes(a.read_bytes())
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            fp1 = cat.record_trace(a, load_trace_npz(a), ref="store:aaa")
            fp2 = cat.record_trace(b, load_trace_npz(b), ref="store:bbb")
            assert fp1 == fp2
            counts = cat.counts()
            assert counts["artifacts"] == 1
            assert counts["trace_features"] == 1
            assert cat.refs(fp1) == ["store:aaa", "store:bbb"]
