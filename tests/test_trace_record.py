"""Unit tests for IORecord and OpType."""

from __future__ import annotations

import pytest

from repro.trace import SECTOR_BYTES, IORecord, OpType


class TestOpType:
    def test_from_str_read_spellings(self):
        for text in ("R", "r", "Read", "READ", "0"):
            assert OpType.from_str(text) is OpType.READ

    def test_from_str_write_spellings(self):
        for text in ("W", "w", "Write", "WRITE", "1"):
            assert OpType.from_str(text) is OpType.WRITE

    def test_from_str_rejects_unknown(self):
        with pytest.raises(ValueError, match="unrecognised"):
            OpType.from_str("trim")

    def test_to_char_round_trips(self):
        for op in OpType:
            assert OpType.from_str(op.to_char()) is op

    def test_int_values_are_stable(self):
        # Columnar storage relies on these exact codes.
        assert int(OpType.READ) == 0
        assert int(OpType.WRITE) == 1


class TestIORecord:
    def test_basic_construction(self):
        r = IORecord(timestamp=10.0, lba=100, size=8, op=OpType.READ)
        assert r.bytes == 8 * SECTOR_BYTES
        assert r.end_lba == 108
        assert r.is_read() and not r.is_write()

    def test_device_time_requires_both_stamps(self):
        r = IORecord(timestamp=0.0, lba=0, size=8, op=OpType.WRITE)
        assert r.device_time is None
        r2 = IORecord(timestamp=0.0, lba=0, size=8, op=OpType.WRITE, issue=5.0, complete=25.0)
        assert r2.device_time == pytest.approx(20.0)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError, match="size"):
            IORecord(timestamp=0.0, lba=0, size=0, op=OpType.READ)

    def test_rejects_negative_lba(self):
        with pytest.raises(ValueError, match="lba"):
            IORecord(timestamp=0.0, lba=-1, size=8, op=OpType.READ)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError, match="timestamp"):
            IORecord(timestamp=-1.0, lba=0, size=8, op=OpType.READ)

    def test_rejects_completion_before_issue(self):
        with pytest.raises(ValueError, match="precedes"):
            IORecord(timestamp=0.0, lba=0, size=8, op=OpType.READ, issue=10.0, complete=5.0)

    def test_shifted_moves_all_stamps(self):
        r = IORecord(timestamp=10.0, lba=0, size=8, op=OpType.READ, issue=12.0, complete=20.0)
        s = r.shifted(100.0)
        assert s.timestamp == 110.0
        assert s.issue == 112.0
        assert s.complete == 120.0
        assert s.lba == r.lba and s.size == r.size and s.op == r.op

    def test_shifted_preserves_missing_stamps(self):
        r = IORecord(timestamp=10.0, lba=0, size=8, op=OpType.READ)
        s = r.shifted(5.0)
        assert s.issue is None and s.complete is None

    def test_contiguous_with(self):
        a = IORecord(timestamp=0.0, lba=100, size=8, op=OpType.READ)
        b = IORecord(timestamp=1.0, lba=108, size=8, op=OpType.READ)
        c = IORecord(timestamp=2.0, lba=120, size=8, op=OpType.READ)
        assert b.contiguous_with(a)
        assert not c.contiguous_with(b)

    def test_records_are_immutable(self):
        r = IORecord(timestamp=0.0, lba=0, size=8, op=OpType.READ)
        with pytest.raises(AttributeError):
            r.lba = 5  # type: ignore[misc]

    def test_sync_flag_kept(self):
        r = IORecord(timestamp=0.0, lba=0, size=8, op=OpType.READ, sync=False)
        assert r.sync is False
        assert r.shifted(1.0).sync is False
