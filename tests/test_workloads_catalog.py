"""Unit tests for the 31-workload catalog (Table I shape)."""

from __future__ import annotations

import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    FIU_WORKLOADS,
    MSPS_WORKLOADS,
    MSRC_WORKLOADS,
    TABLE1_N_TRACES,
    WORKLOAD_SPECS,
    get_spec,
    spec_variants,
    workload_names,
)


class TestCatalogShape:
    def test_thirty_one_workloads(self):
        assert len(ALL_WORKLOADS) == 31

    def test_family_sizes(self):
        assert len(MSPS_WORKLOADS) == 8
        assert len(FIU_WORKLOADS) == 10
        assert len(MSRC_WORKLOADS) == 13

    def test_trace_counts_sum_to_577(self):
        # Table I: FIU + MSPS + MSRC contain 577 block traces total.
        assert sum(TABLE1_N_TRACES.values()) == 577

    def test_every_workload_has_trace_count(self):
        assert set(TABLE1_N_TRACES) == set(ALL_WORKLOADS)

    @pytest.mark.parametrize(
        "name,avg_kb",
        [("24HR", 8.27), ("DAP", 74.42), ("ikki", 4.64), ("src2", 40.9), ("web", 7.0)],
    )
    def test_average_sizes_match_table1(self, name, avg_kb):
        assert get_spec(name).size_mix.mean_kb() == pytest.approx(avg_kb, rel=0.15)

    def test_categories_assigned(self):
        for name in MSPS_WORKLOADS:
            assert WORKLOAD_SPECS[name].category == "MSPS"
        for name in FIU_WORKLOADS:
            assert WORKLOAD_SPECS[name].category == "FIU"
        for name in MSRC_WORKLOADS:
            assert WORKLOAD_SPECS[name].category == "MSRC"


class TestIdleShapes:
    def test_msps_idles_frequent_but_short(self):
        msps = get_spec("CFS").idle
        fiu = get_spec("ikki").idle
        assert msps.idle_fraction > fiu.idle_fraction
        assert msps.idle_median_us < fiu.idle_median_us

    def test_outlier_workloads_have_long_idles(self):
        # Figure 16 singles out madmax (20.5s), rsrch (69.2s), wdev (403s).
        assert get_spec("madmax").idle.idle_median_us > get_spec("ikki").idle.idle_median_us
        assert get_spec("rsrch").idle.idle_median_us > get_spec("mds").idle.idle_median_us
        assert get_spec("wdev").idle.idle_median_us > get_spec("rsrch").idle.idle_median_us


class TestLookup:
    def test_get_spec_known(self):
        assert get_spec("MSNFS").name == "MSNFS"

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_spec("nope")

    def test_workload_names_filtering(self):
        assert set(workload_names("FIU")) == set(FIU_WORKLOADS)
        assert workload_names() == ALL_WORKLOADS
        with pytest.raises(ValueError):
            workload_names("BAD")

    def test_spec_variants_distinct_seeds(self):
        variants = spec_variants("ikki", count=5)
        assert len(variants) == 5
        assert len({v.seed for v in variants}) == 5
        assert all(v.name == "ikki" for v in variants)

    def test_spec_variants_default_table1_count(self):
        assert len(spec_variants("proj")) == TABLE1_N_TRACES["proj"]

    def test_spec_variants_validation(self):
        with pytest.raises(ValueError):
            spec_variants("ikki", count=0)

    def test_all_specs_generate(self):
        # Every catalog entry must expand without error at small scale.
        from repro.workloads import generate_intents

        for name in ALL_WORKLOADS:
            stream = generate_intents(get_spec(name).scaled(64))
            assert len(stream) == 64
