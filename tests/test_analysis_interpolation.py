"""Unit tests for from-scratch pchip / spline interpolation.

Values are cross-checked against scipy.interpolate where available
(scipy is installed in CI but the library itself must not require it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    CubicSplineInterpolator,
    PchipInterpolator,
    argmax_derivative,
    interpolate_cdf,
)

scipy_interp = pytest.importorskip("scipy.interpolate")


def cdf_knots() -> tuple[np.ndarray, np.ndarray]:
    x = np.array([1.0, 10.0, 50.0, 100.0, 120.0, 500.0, 5000.0])
    y = np.array([0.02, 0.05, 0.10, 0.55, 0.80, 0.95, 1.00])
    return x, y


class TestPchip:
    def test_interpolates_knots_exactly(self):
        x, y = cdf_knots()
        p = PchipInterpolator(x, y)
        np.testing.assert_allclose(p(x), y, atol=1e-12)

    def test_matches_scipy_between_knots(self):
        x, y = cdf_knots()
        ours = PchipInterpolator(x, y)
        theirs = scipy_interp.PchipInterpolator(x, y)
        grid = np.linspace(x[0], x[-1], 400)
        np.testing.assert_allclose(ours(grid), theirs(grid), atol=1e-9)

    def test_derivative_matches_scipy(self):
        x, y = cdf_knots()
        ours = PchipInterpolator(x, y)
        theirs = scipy_interp.PchipInterpolator(x, y).derivative()
        grid = np.linspace(x[0], x[-1], 200)
        np.testing.assert_allclose(ours.derivative(grid), theirs(grid), atol=1e-9)

    def test_monotone_data_stays_monotone(self):
        x, y = cdf_knots()
        p = PchipInterpolator(x, y)
        grid = np.linspace(x[0], x[-1], 2000)
        values = np.asarray(p(grid))
        assert np.all(np.diff(values) >= -1e-12)
        # No overshoot above 1 — the property splines lack.
        assert values.max() <= 1.0 + 1e-12

    def test_two_knots_is_linear(self):
        p = PchipInterpolator(np.array([0.0, 10.0]), np.array([0.0, 1.0]))
        assert p(5.0) == pytest.approx(0.5)
        assert p.derivative(3.0) == pytest.approx(0.1)

    def test_scalar_and_array_evaluation(self):
        x, y = cdf_knots()
        p = PchipInterpolator(x, y)
        assert isinstance(p(50.0), float)
        assert np.asarray(p(np.array([50.0, 60.0]))).shape == (2,)

    def test_invalid_knots(self):
        with pytest.raises(ValueError):
            PchipInterpolator(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            PchipInterpolator(np.array([1.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            PchipInterpolator(np.array([1.0, 2.0]), np.array([0.0, np.inf]))


class TestSpline:
    def test_interpolates_knots_exactly(self):
        x, y = cdf_knots()
        s = CubicSplineInterpolator(x, y)
        np.testing.assert_allclose(s(x), y, atol=1e-9)

    def test_matches_scipy_natural_spline(self):
        x, y = cdf_knots()
        ours = CubicSplineInterpolator(x, y)
        theirs = scipy_interp.CubicSpline(x, y, bc_type="natural")
        grid = np.linspace(x[0], x[-1], 300)
        np.testing.assert_allclose(ours(grid), theirs(grid), atol=1e-8)

    def test_spline_overshoots_where_pchip_does_not(self):
        # A steep step: natural spline oscillates above 1 / below data,
        # which is exactly the Figure 9 motivation for pchip.
        x = np.array([0.0, 1.0, 2.0, 2.1, 3.0, 4.0])
        y = np.array([0.0, 0.01, 0.02, 0.98, 0.99, 1.0])
        spline = CubicSplineInterpolator(x, y)
        pchip = PchipInterpolator(x, y)
        grid = np.linspace(0.0, 4.0, 1000)
        assert np.asarray(spline(grid)).max() > 1.0 + 1e-6
        assert np.asarray(pchip(grid)).max() <= 1.0 + 1e-12

    def test_two_knots_is_linear(self):
        s = CubicSplineInterpolator(np.array([0.0, 2.0]), np.array([0.0, 1.0]))
        assert s(1.0) == pytest.approx(0.5)


class TestArgmaxDerivative:
    def test_locates_steep_region(self):
        x, y = cdf_knots()
        p = PchipInterpolator(x, y)
        loc, val = argmax_derivative(p)
        # The steepest rise is between 50 and 120 (0.10 -> 0.80).
        assert 50.0 <= loc <= 120.0
        assert val > 0

    def test_linear_curve_derivative_constant(self):
        p = PchipInterpolator(np.array([0.0, 1.0, 2.0]), np.array([0.0, 0.5, 1.0]))
        __, val = argmax_derivative(p, log_x=False)
        assert val == pytest.approx(0.5, rel=1e-6)

    def test_rejects_bad_density(self):
        p = PchipInterpolator(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            argmax_derivative(p, samples_per_interval=0)


class TestFactory:
    def test_interpolate_cdf_dispatch(self):
        x, y = cdf_knots()
        assert isinstance(interpolate_cdf(x, y, "pchip"), PchipInterpolator)
        assert isinstance(interpolate_cdf(x, y, "spline"), CubicSplineInterpolator)
        with pytest.raises(ValueError):
            interpolate_cdf(x, y, "linear")
