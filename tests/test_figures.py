"""Regression tests for the experiment layer (small-n figure runs).

The benchmark harness runs each figure at presentation scale with shape
assertions; these tests run tiny versions so a unit-test pass alone
catches breakage anywhere in the experiment plumbing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures


class TestFig1:
    def test_structure(self):
        result = figures.fig1_intt_cdf(n_requests=800)
        assert set(result.series) == {"OLD", "NEW", "Revision", "Acceleration"}
        assert set(result.idle_loss_vs_new) == {"OLD", "Revision", "Acceleration"}
        assert len(result.rows()) == 4

    def test_acceleration_is_left_shift(self):
        result = figures.fig1_intt_cdf(n_requests=800)
        assert result.median_us["Acceleration"] * 100 == pytest.approx(result.median_us["OLD"])


class TestFig3:
    def test_breakdowns_cover_workloads(self):
        result = figures.fig3_breakdown(workloads=("MSNFS", "ikki"), n_requests=600)
        assert set(result.acceleration) == {"MSNFS", "ikki"}
        for b in result.acceleration.values():
            assert b.longer + b.equal + b.shorter == pytest.approx(1.0)


class TestFig5:
    def test_classes_valid(self):
        result = figures.fig5_cdf_types(n_requests=600)
        valid = {"global-maxima", "chunky-middle", "multi-maxima"}
        assert set(result.synthetic.values()) <= valid
        assert set(result.workloads.values()) <= valid


class TestFig7:
    def test_calibration_structure(self):
        result = figures.fig7_tmovd_tcdel(workloads=("ikki", "casa"), n_requests=800)
        assert set(result.tmovd_rep_us) == {"ikki", "casa"}
        assert result.tmovd_overall_us > 0
        assert result.tmovd_spread >= 1.0


class TestFig9:
    def test_pchip_never_overshoots(self):
        result = figures.fig9_interpolation(n_samples=800)
        assert result.overshoot["pchip"] == 0.0
        assert result.overshoot["spline"] >= 0.0


class TestFig10And11:
    def test_sweep_structure(self):
        result = figures.fig10_len_tp(
            periods=(10_000.0,),
            n_requests=700,
            known_workloads=("CFS",),
            unknown_workloads=("ikki",),
        )
        known = result.known.scores[10_000.0]
        assert known.tp + known.fn > 0
        assert 0.0 <= known.len_tp <= 1.0
        assert len(result.rows()) == 2

    def test_fp_groups(self):
        result = figures.fig11_len_fp(n_requests=700)
        assert isinstance(result.known_fp_us, np.ndarray)
        assert isinstance(result.unknown_fp_us, np.ndarray)
        assert len(result.rows()) == 2


class TestFig12To15:
    def test_fig12(self):
        result = figures.fig12_method_cdfs(n_requests=700)
        assert set(result.ks_to_target) == {
            "acceleration-100x", "revision", "fixed-th-10ms", "dynamic", "tracetracker",
        }
        assert all(0.0 <= v <= 1.0 for v in result.ks_to_target.values())

    def test_fig13(self):
        result = figures.fig13_intt_gap(workloads=("MSNFS", "ikki"), n_requests=600)
        means = result.method_means()
        assert all(v >= 0 for v in means.values())
        assert len(result.rows()) == 2

    def test_fig14(self):
        result = figures.fig14_target_diff(workloads=("MSNFS",), n_requests=600)
        assert result.max_us["MSNFS"] >= result.avg_us["MSNFS"] >= 0.0

    def test_fig15(self):
        result = figures.fig15_distribution(workloads=("CFS",), n_requests=700)
        assert "CFS" in result.median_us
        assert set(result.median_us["CFS"]) == {"Target", "TraceTracker"}


class TestFig16And17:
    def test_fig16(self):
        result = figures.fig16_avg_idle(workloads=("CFS", "ikki"), n_requests=700)
        assert set(result.avg_idle_us) == {"CFS", "ikki"}
        assert set(result.category_means_us()) == {"MSPS", "FIU"}

    def test_fig17(self):
        result = figures.fig17_idle_breakdown(workloads=("CFS", "ikki"), n_requests=700)
        for b in result.breakdowns.values():
            assert sum(b.frequency.values()) == pytest.approx(1.0)
            assert sum(b.period.values()) == pytest.approx(1.0)


class TestTable1:
    def test_structure_and_counts(self):
        result = figures.table1_characteristics(
            workloads=("MSNFS", "ikki", "wdev"), traces_per_workload=1, n_requests=400
        )
        assert result.total_traces() == 577  # full paper inventory carried
        assert set(result.rows_by_workload) == {"MSNFS", "ikki", "wdev"}
        for row in result.rows_by_workload.values():
            assert row.n_traces == 1
            assert row.avg_data_size_kb > 0
