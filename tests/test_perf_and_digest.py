"""The ``repro.perf`` recorder and the trace-digest memo fast path."""

from __future__ import annotations

import numpy as np

from repro.inference.idle import _MODEL_MEMO, _trace_digest, extract_idle
from repro.perf import PerfRecorder
from repro.trace.io.cache import TraceStore
from repro.trace.trace import BlockTrace
from repro.workloads import collect_trace_cached, get_spec
from repro.storage import SATA_600, ConstantLatencyDevice


class TestPerfRecorder:
    def test_stage_timing_and_counters(self):
        perf = PerfRecorder()
        with perf.stage("work"):
            sum(range(1000))
        with perf.stage("work"):
            sum(range(1000))
        perf.count("events")
        perf.count("events", 2)
        stats = perf.stages["work"]
        assert stats.calls == 2
        assert 0 < stats.best_s <= stats.total_s
        assert perf.counters == {"events": 3}
        dumped = perf.to_dict()
        assert dumped["stages"]["work"]["calls"] == 2
        assert dumped["counters"]["events"] == 3
        assert any("work" in line for line in perf.summary_lines())
        assert perf.best_s("missing") is None

    def test_disabled_recorder_records_nothing(self):
        perf = PerfRecorder(enabled=False)
        with perf.stage("work"):
            pass
        perf.count("events")
        perf.add_seconds("work", 1.0)
        assert perf.to_dict() == {"stages": {}, "counters": {}}

    def test_stage_records_on_exception(self):
        perf = PerfRecorder()
        try:
            with perf.stage("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert perf.stages["boom"].calls == 1


def _trace(n: int = 64, seed: int = 0) -> BlockTrace:
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.integers(1, 500, n)).astype(np.float64)
    return BlockTrace(
        timestamps=ts - ts[0],
        lbas=rng.integers(0, 1 << 20, n),
        sizes=rng.integers(1, 64, n),
        ops=rng.integers(0, 2, n).astype(np.int8),
    )


class TestTraceDigest:
    def test_digest_separates_distinct_columns(self):
        a, b = _trace(seed=1), _trace(seed=2)
        assert _trace_digest(a) != _trace_digest(b)
        assert _trace_digest(a) == _trace_digest(_trace(seed=1))

    def test_digest_covers_device_stamps(self):
        base = _trace(seed=3)
        stamped = BlockTrace(
            timestamps=base.timestamps,
            lbas=base.lbas,
            sizes=base.sizes,
            ops=base.ops,
            issues=base.timestamps,
            completes=base.timestamps + 100.0,
        )
        assert _trace_digest(base) != _trace_digest(stamped)

    def test_store_fingerprint_short_circuits_hashing(self, tmp_path):
        store = TraceStore(root=tmp_path, enabled=True)
        spec = get_spec("MSNFS").scaled(120)
        trace = collect_trace_cached(spec, ConstantLatencyDevice(SATA_600), store=store)
        assert trace.content_fingerprint is not None
        assert _trace_digest(trace) == trace.content_fingerprint.encode("utf-8")
        # A second materialisation (store hit, mmap) carries the same stamp.
        again = collect_trace_cached(spec, ConstantLatencyDevice(SATA_600), store=store)
        assert again.content_fingerprint == trace.content_fingerprint

    def test_derived_traces_drop_the_stamp(self, tmp_path):
        store = TraceStore(root=tmp_path, enabled=True)
        spec = get_spec("MSNFS").scaled(120)
        trace = collect_trace_cached(spec, ConstantLatencyDevice(SATA_600), store=store)
        assert trace[: len(trace) // 2].content_fingerprint is None
        assert trace.shifted(10.0).content_fingerprint is None
        assert trace.with_timestamps(trace.timestamps * 2.0).content_fingerprint is None

    def test_memo_hits_through_fingerprint(self, tmp_path):
        store = TraceStore(root=tmp_path, enabled=True)
        spec = get_spec("MSNFS").scaled(400)
        trace = collect_trace_cached(
            spec, ConstantLatencyDevice(SATA_600), record_device_times=False, store=store
        )
        _MODEL_MEMO.clear()
        first = extract_idle(trace)
        second = extract_idle(trace)
        assert first.report is second.report  # memo hit, keyed by the stamp
        assert len(_MODEL_MEMO) == 1


class TestHoistedDigestIdentity:
    """The digest hoisted to ``repro.trace.io.fingerprint`` is bit-identical
    to the private helper that historically lived in ``repro.inference.idle``
    — every memo key ever written stays valid across the move."""

    @staticmethod
    def _legacy_digest(trace: BlockTrace) -> bytes:
        """The pre-hoist ``inference.idle._trace_digest``, verbatim."""
        import hashlib

        if trace.content_fingerprint is not None:
            return trace.content_fingerprint.encode("utf-8")
        h = hashlib.blake2b(digest_size=20)
        for column in (trace.timestamps, trace.lbas, trace.sizes, trace.ops):
            h.update(memoryview(np.ascontiguousarray(column)))
        if trace.has_device_times:
            h.update(memoryview(np.ascontiguousarray(trace.issues)))
            h.update(memoryview(np.ascontiguousarray(trace.completes)))
        return h.digest()

    def test_old_and_new_digests_identical(self):
        from repro.trace.io.fingerprint import trace_digest

        for seed in range(5):
            trace = _trace(seed=seed)
            assert trace_digest(trace) == self._legacy_digest(trace)

    def test_old_and_new_digests_identical_with_device_stamps(self):
        from repro.trace.io.fingerprint import trace_digest

        trace = _trace(seed=3)
        stamped = BlockTrace(
            timestamps=trace.timestamps,
            lbas=trace.lbas,
            sizes=trace.sizes,
            ops=trace.ops,
            issues=trace.timestamps + 0.25,
            completes=trace.timestamps + 2.0,
        )
        assert trace_digest(stamped) == self._legacy_digest(stamped)
        assert trace_digest(stamped) != trace_digest(trace)

    def test_inference_helper_delegates_to_hoisted_function(self):
        from repro.trace.io.fingerprint import TRACE_DIGEST_SIZE, trace_digest

        trace = _trace(seed=4)
        assert _trace_digest(trace) == trace_digest(trace)
        assert len(trace_digest(trace)) == TRACE_DIGEST_SIZE

    def test_stamped_trace_short_circuits_both(self):
        from repro.trace.io.fingerprint import trace_digest

        trace = _trace(seed=5)
        trace.content_fingerprint = "store:deadbeef"
        assert trace_digest(trace) == b"store:deadbeef"
        assert self._legacy_digest(trace) == b"store:deadbeef"
