"""Unit tests for the LatencyModel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import LatencyModel
from repro.trace import BlockTrace, OpType


@pytest.fixture()
def model() -> LatencyModel:
    return LatencyModel(
        beta_us_per_sector=5.0,
        eta_us_per_sector=6.0,
        tcdel_read_us=15.0,
        tcdel_write_us=20.0,
        tmovd_us=10_000.0,
    )


class TestScalar:
    def test_sequential_read(self, model):
        assert model.tsdev(OpType.READ, 8, sequential=True) == pytest.approx(40.0)

    def test_random_read_adds_movd(self, model):
        assert model.tsdev(OpType.READ, 8, sequential=False) == pytest.approx(10_040.0)

    def test_write_uses_eta(self, model):
        assert model.tsdev(OpType.WRITE, 10, sequential=True) == pytest.approx(60.0)

    def test_tslat_adds_channel(self, model):
        assert model.tslat(OpType.READ, 8, True) == pytest.approx(55.0)
        assert model.tslat(OpType.WRITE, 8, True) == pytest.approx(68.0)

    def test_tcdel_per_op(self, model):
        assert model.tcdel(OpType.READ) == 15.0
        assert model.tcdel(OpType.WRITE) == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(-1.0, 1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            LatencyModel(1.0, float("nan"), 1.0, 1.0, 1.0)


class TestVectorised:
    def test_tsdev_array_matches_scalar(self, model):
        trace = BlockTrace(
            timestamps=[0.0, 1.0, 2.0],
            lbas=[0, 8, 500],
            sizes=[8, 8, 16],
            ops=[0, 0, 1],
        )
        arr = model.tsdev_array(trace)
        seq = trace.sequential_mask()
        expected = [
            model.tsdev(OpType(int(trace.ops[i])), int(trace.sizes[i]), bool(seq[i]))
            for i in range(3)
        ]
        np.testing.assert_allclose(arr, expected)

    def test_tslat_array(self, model):
        trace = BlockTrace([0.0, 1.0], [0, 500], [8, 8], [0, 1])
        np.testing.assert_allclose(
            model.tslat_array(trace), model.tsdev_array(trace) + model.tcdel_array(trace)
        )

    def test_describe_round_trip(self, model):
        d = model.describe()
        rebuilt = LatencyModel(
            d["beta_us_per_sector"],
            d["eta_us_per_sector"],
            d["tcdel_read_us"],
            d["tcdel_write_us"],
            d["tmovd_us"],
        )
        assert rebuilt == model
