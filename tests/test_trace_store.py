"""Binary trace store (.npz) and the content-keyed TraceStore cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    BlockTrace,
    TraceStore,
    TraceStoreError,
    dump_trace,
    load_trace,
    load_trace_npz,
    save_trace_npz,
)
from repro.trace.io import cache as cache_module
from repro.trace.io import store as store_module


def make_trace(with_dev: bool = True, with_sync: bool = True, n: int = 64) -> BlockTrace:
    rng = np.random.default_rng(7)
    ts = np.cumsum(rng.random(n) * 100.0)
    ts -= ts[0]
    return BlockTrace(
        timestamps=ts,
        lbas=rng.integers(0, 1 << 40, n),
        sizes=rng.integers(1, 256, n),
        ops=rng.integers(0, 2, n).astype(np.int8),
        issues=ts + 0.5 if with_dev else None,
        completes=ts + rng.random(n) * 50 + 1 if with_dev else None,
        syncs=rng.random(n) < 0.5 if with_sync else None,
        name="store-test",
        metadata={"category": "TEST", "n_user_idles": 3, "total_user_idle_us": 12.5},
    )


def assert_identical(a: BlockTrace, b: BlockTrace) -> None:
    for column in ("timestamps", "lbas", "sizes", "ops", "issues", "completes", "syncs"):
        ca, cb = getattr(a, column), getattr(b, column)
        assert (ca is None) == (cb is None), column
        if ca is not None:
            np.testing.assert_array_equal(ca, cb, err_msg=column)
    assert a.name == b.name
    assert a.metadata == b.metadata


class TestNpzRoundTrip:
    @pytest.mark.parametrize("with_dev", [True, False])
    @pytest.mark.parametrize("with_sync", [True, False])
    def test_all_column_combinations(self, tmp_path, with_dev, with_sync):
        trace = make_trace(with_dev=with_dev, with_sync=with_sync)
        path = save_trace_npz(trace, tmp_path / "t.npz")
        assert_identical(trace, load_trace_npz(path))

    def test_mmap_load_is_identical_and_mapped(self, tmp_path):
        trace = make_trace()
        path = save_trace_npz(trace, tmp_path / "t.npz")
        loaded = load_trace_npz(path, mmap=True)
        assert_identical(trace, loaded)
        # asarray strips the memmap subclass but keeps the mapping.
        assert isinstance(loaded.timestamps.base, np.memmap)
        assert not loaded.timestamps.flags.writeable

    def test_compressed_round_trip(self, tmp_path):
        trace = make_trace()
        path = save_trace_npz(trace, tmp_path / "t.npz", compress=True)
        assert_identical(trace, load_trace_npz(path))
        # mmap silently falls back to a normal load for compressed files.
        assert_identical(trace, load_trace_npz(path, mmap=True))

    def test_empty_trace(self, tmp_path):
        trace = BlockTrace([], [], [], [], name="empty")
        path = save_trace_npz(trace, tmp_path / "e.npz")
        for mmap in (False, True):
            loaded = load_trace_npz(path, mmap=mmap)
            assert len(loaded) == 0 and loaded.name == "empty"

    def test_version_mismatch_rejected(self, tmp_path, monkeypatch):
        trace = make_trace()
        path = save_trace_npz(trace, tmp_path / "t.npz")
        monkeypatch.setattr(store_module, "STORE_FORMAT_VERSION", 2)
        with pytest.raises(TraceStoreError, match="version"):
            load_trace_npz(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(TraceStoreError):
            load_trace_npz(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(4))
        with pytest.raises(TraceStoreError, match="missing columns"):
            load_trace_npz(path)

    def test_dump_and_load_trace_integration(self, tmp_path):
        trace = make_trace()
        path = dump_trace(trace, tmp_path / "t.npz", fmt="npz")
        assert_identical(trace, load_trace(path, fmt="npz"))


class TestTraceStore:
    def test_get_or_build_builds_once(self, tmp_path):
        store = TraceStore(root=tmp_path / "cache")
        trace = make_trace()
        calls: list[int] = []

        def build() -> BlockTrace:
            calls.append(1)
            return trace

        key = store.key_for("workload", "device")
        first = store.get_or_build(key, build)
        second = store.get_or_build(key, build)
        assert calls == [1]
        assert store.misses == 1 and store.hits == 1
        assert_identical(first, trace)
        assert_identical(second, trace)

    def test_distinct_keys_distinct_entries(self, tmp_path):
        store = TraceStore(root=tmp_path / "cache")
        assert store.key_for("a", "b") != store.key_for("a", "c")
        assert store.key_for("a", "b") != store.key_for("ab", "")

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        store = TraceStore(root=tmp_path / "cache")
        trace = make_trace()
        key = store.key_for("k")
        store.save(key, trace)
        assert store.load(key) is not None
        # A format bump must orphan the old entry (fresh path) so the
        # next lookup misses and rebuilds.
        monkeypatch.setattr(store_module, "STORE_FORMAT_VERSION", 99)
        monkeypatch.setattr(cache_module, "STORE_FORMAT_VERSION", 99)
        assert store.load(key) is None
        assert store.path_for(key).name.startswith("v99-")

    def test_corrupt_entry_counts_as_miss_and_rebuilds(self, tmp_path):
        store = TraceStore(root=tmp_path / "cache")
        trace = make_trace()
        key = store.key_for("k")
        store.save(key, trace)
        store.path_for(key).write_bytes(b"garbage")
        rebuilt = store.get_or_build(key, lambda: trace)
        assert_identical(rebuilt, trace)
        assert store.load(key) is not None  # overwritten with good bytes

    def test_truncated_entry_quarantined_and_rebuilt(self, tmp_path, caplog):
        """Regression (ISSUE 9): a partially written entry — the bytes a
        crash between write and fsync can leave — is quarantined to
        ``<entry>.bad`` with a logged warning and rebuilt from source."""
        import logging

        store = TraceStore(root=tmp_path / "cache")
        trace = make_trace()
        key = store.key_for("k")
        store.save(key, trace)
        path = store.path_for(key)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

        with caplog.at_level(logging.WARNING, logger="repro.trace.io.cache"):
            assert store.load(key) is None
        bad = path.with_name(path.name + ".bad")
        assert bad.exists() and not path.exists()
        assert any("rebuilding from source" in r.message for r in caplog.records)

        rebuilt = store.get_or_build(key, lambda: trace)
        assert_identical(rebuilt, trace)
        assert store.load(key) is not None  # fresh good bytes in place
        assert bad.exists()  # the evidence survives the rebuild

    def test_disabled_store_never_touches_disk(self, tmp_path):
        store = TraceStore(root=tmp_path / "cache", enabled=False)
        trace = make_trace()
        calls: list[int] = []

        def build() -> BlockTrace:
            calls.append(1)
            return trace

        key = store.key_for("k")
        store.get_or_build(key, build)
        store.get_or_build(key, build)
        assert calls == [1, 1]
        assert not (tmp_path / "cache").exists()

    def test_default_store_env_gating(self, tmp_path, monkeypatch):
        from repro.trace.io.cache import get_default_store, set_default_store

        set_default_store(None)
        monkeypatch.delenv("REPRO_TRACE_STORE_DIR", raising=False)
        monkeypatch.setenv("REPRO_TRACE_STORE", "0")
        assert not get_default_store().enabled
        set_default_store(None)
        monkeypatch.setenv("REPRO_TRACE_STORE_DIR", str(tmp_path / "s"))
        monkeypatch.delenv("REPRO_TRACE_STORE", raising=False)
        store = get_default_store()
        assert store.enabled and store.root == tmp_path / "s"
        set_default_store(None)
