"""Chunked TraceReader: whole-file parity across dialects and stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    BlockTrace,
    TraceReader,
    TraceStreamError,
    dump_trace,
    load_trace,
    save_trace_npz,
    write_csv,
)


def assert_identical(a: BlockTrace, b: BlockTrace) -> None:
    for column in ("timestamps", "lbas", "sizes", "ops", "issues", "completes", "syncs"):
        ca, cb = getattr(a, column), getattr(b, column)
        assert (ca is None) == (cb is None), column
        if ca is not None:
            np.testing.assert_array_equal(ca, cb, err_msg=column)


@pytest.fixture()
def trace_files(tmp_path):
    """One ~200-request file per text dialect, plus an npz."""
    n = 200
    rng = np.random.default_rng(3)
    ts = np.cumsum(rng.integers(1, 10**6, n))
    lbas = rng.integers(0, 1 << 32, n)
    sizes = rng.integers(1, 128, n)
    ops = rng.integers(0, 2, n)
    dev = rng.integers(1, 10**5, n)
    spell = ["Read" if o == 0 else "Write" for o in ops]
    files = {}
    (tmp_path / "t.msrc").write_text(
        "\n".join(
            f"{ts[i]},host,0,{spell[i]},{lbas[i] * 512},{sizes[i] * 512},{dev[i]}"
            for i in range(n)
        )
    )
    files["msrc"] = tmp_path / "t.msrc"
    (tmp_path / "t.fiu").write_text(
        "\n".join(
            f"{ts[i] / 1e6:.6f} 1 p {lbas[i]} {sizes[i]} {spell[i][0]} 8 1"
            for i in range(n)
        )
    )
    files["fiu"] = tmp_path / "t.fiu"
    (tmp_path / "t.msps").write_text(
        "\n".join(
            f"{ts[i]:.3f} {ts[i] + dev[i]:.3f} {spell[i][0]} {lbas[i]} {sizes[i]}"
            for i in range(n)
        )
    )
    files["msps"] = tmp_path / "t.msps"
    internal = load_trace(files["msrc"], fmt="msrc")
    with (tmp_path / "t.csv").open("w") as handle:
        write_csv(internal, handle)
    files["internal"] = tmp_path / "t.csv"
    save_trace_npz(internal, tmp_path / "t.npz")
    files["npz"] = tmp_path / "t.npz"
    return files


class TestParity:
    @pytest.mark.parametrize("fmt", ["msrc", "fiu", "msps", "internal"])
    @pytest.mark.parametrize("chunk_requests", [1, 7, 64, 10_000])
    def test_chunked_equals_whole(self, trace_files, fmt, chunk_requests):
        whole = load_trace(trace_files[fmt], fmt=fmt)
        chunked = TraceReader(
            trace_files[fmt], fmt=fmt, chunk_requests=chunk_requests
        ).read()
        assert_identical(whole, chunked)
        assert chunked.name == whole.name

    @pytest.mark.parametrize("chunk_requests", [7, 300])
    def test_npz_chunked_equals_whole(self, trace_files, chunk_requests):
        whole = load_trace(trace_files["npz"], fmt="npz")
        chunked = TraceReader(
            trace_files["npz"], fmt="npz", chunk_requests=chunk_requests
        ).read()
        assert_identical(whole, chunked)

    def test_chunks_are_bounded_ordered_and_complete(self, trace_files):
        chunks = list(TraceReader(trace_files["msrc"], fmt="msrc", chunk_requests=64))
        assert all(len(c) <= 64 for c in chunks)
        assert sum(len(c) for c in chunks) == 200
        for earlier, later in zip(chunks, chunks[1:]):
            assert later.timestamps[0] >= earlier.timestamps[-1]

    def test_first_chunk_starts_at_zero_for_rebased_dialects(self, trace_files):
        first = next(iter(TraceReader(trace_files["msrc"], fmt="msrc", chunk_requests=10)))
        assert first.timestamps[0] == 0.0


class TestEdges:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "e.msrc"
        path.write_text("# nothing but comments\n\n")
        reader = TraceReader(path, fmt="msrc")
        assert list(reader) == []
        assert len(reader.read()) == 0

    def test_unsorted_across_chunks_raises(self, tmp_path):
        rows = [f"{t}.0 {t}.5 R 0 8" for t in (100, 200, 50, 60)]
        path = tmp_path / "u.msps"
        path.write_text("\n".join(rows))
        with pytest.raises(TraceStreamError, match="time-sorted"):
            list(TraceReader(path, fmt="msps", chunk_requests=2))

    def test_whole_file_load_still_sorts_that_input(self, tmp_path):
        rows = [f"{t}.0 {t}.5 R 0 8" for t in (100, 200, 50, 60)]
        path = tmp_path / "u.msps"
        path.write_text("\n".join(rows))
        trace = load_trace(path, fmt="msps")
        assert np.all(np.diff(trace.timestamps) >= 0)

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            TraceReader(tmp_path / "x", fmt="nope")

    def test_bad_chunk_size_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_requests"):
            TraceReader(tmp_path / "x", chunk_requests=0)

    def test_streams_npz_from_dump_trace(self, tmp_path):
        trace = BlockTrace([0.0, 1.0, 2.0], [0, 8, 16], [8, 8, 8], [0, 1, 0], name="z")
        path = dump_trace(trace, tmp_path / "z.npz", fmt="npz")
        chunks = list(TraceReader(path, fmt="npz", chunk_requests=2))
        assert [len(c) for c in chunks] == [2, 1]


class TestTailMode:
    """tail=True: torn trailing lines are held, never parsed or raised on."""

    @staticmethod
    def _internal_file(tmp_path, n=60):
        ts = np.arange(n, dtype=float) * 100.0
        trace = BlockTrace(
            timestamps=ts,
            lbas=np.arange(n) * 8,
            sizes=np.full(n, 8),
            ops=np.zeros(n, dtype=int),
            name="tail",
        )
        path = tmp_path / "grow.csv"
        with path.open("w") as handle:
            write_csv(trace, handle)
        return path, trace

    def test_static_torn_tail_is_held(self, tmp_path):
        path, trace = self._internal_file(tmp_path)
        with path.open("a") as handle:
            handle.write("6000.000,480")  # torn mid-write, no newline
        got = TraceReader(path, tail=True).read()
        assert len(got) == len(trace)
        np.testing.assert_array_equal(got.timestamps, trace.timestamps)

    def test_default_mode_still_parses_final_unterminated_line(self, tmp_path):
        path, trace = self._internal_file(tmp_path)
        raw = path.read_text()
        path.write_text(raw.rstrip("\n"))  # complete line, just no newline
        got = TraceReader(path).read()
        assert len(got) == len(trace)

    def test_torn_tail_completes_on_later_pass(self, tmp_path):
        path, trace = self._internal_file(tmp_path)
        with path.open("a") as handle:
            handle.write("6000.000,480")
        assert len(TraceReader(path, tail=True).read()) == len(trace)
        with path.open("a") as handle:
            handle.write(",8,R\n")
        got = TraceReader(path, tail=True).read()
        assert len(got) == len(trace) + 1
        assert got.timestamps[-1] == 6000.0

    def test_concurrently_appending_writer(self, tmp_path):
        """A live writer appending in torn slices never corrupts a read."""
        import threading
        import time

        n = 120
        ts = np.arange(n, dtype=float) * 50.0
        full = BlockTrace(
            timestamps=ts,
            lbas=np.arange(n) * 8,
            sizes=np.full(n, 8),
            ops=np.zeros(n, dtype=int),
            name="live",
        )
        import io

        buffer = io.StringIO()
        write_csv(full, buffer)
        payload = buffer.getvalue().encode()

        path = tmp_path / "live.csv"
        path.write_bytes(payload[:40])  # header + a torn first row

        def writer():
            offset = 40
            while offset < len(payload):
                step = 97  # deliberately misaligned with line boundaries
                with path.open("ab") as handle:
                    handle.write(payload[offset : offset + step])
                offset += step
                time.sleep(0.002)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            seen = -1
            while time.monotonic() < deadline:
                got = TraceReader(path, tail=True).read()  # must never raise
                assert len(got) >= seen  # monotone growth, only complete rows
                seen = len(got)
                if got.timestamps is not None and len(got):
                    np.testing.assert_array_equal(
                        got.timestamps, full.timestamps[: len(got)]
                    )
                if len(got) == n:
                    break
                time.sleep(0.005)
        finally:
            thread.join()
        assert seen == n
