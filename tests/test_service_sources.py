"""Stream sources: tail discipline, cursors, and the failure taxonomy."""

from __future__ import annotations

import socket
import time

import pytest

from repro.resilience import PermanentPointError, TransientPointError
from repro.service import (
    DirectoryWatchSource,
    FileTailSource,
    SocketLineSource,
    parse_source_spec,
)


def drain(source):
    return [text for text, _ in source.poll()]


class TestFileTailSource:
    def test_complete_lines_with_cursors(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("a\nbb\nccc\n")
        source = FileTailSource(path)
        source.open()
        got = source.poll()
        assert [text for text, _ in got] == ["a", "bb", "ccc"]
        # cursor = byte offset just past each line's newline
        assert [cursor for _, cursor in got] == [2, 5, 9]
        assert source.idle()

    def test_torn_tail_held_until_completed(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("one\ntw")
        source = FileTailSource(path)
        source.open()
        assert drain(source) == ["one"]
        assert source.idle()  # the torn fragment does not count as data
        with path.open("a") as handle:
            handle.write("o\nthree\n")
        assert drain(source) == ["two", "three"]

    def test_cursor_resume_rereads_uncommitted(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("one\ntwo\nthree\n")
        source = FileTailSource(path)
        source.open()
        first = source.poll()
        resumed = FileTailSource(path)
        resumed.open(first[0][1])  # committed through "one" only
        assert drain(resumed) == ["two", "three"]

    def test_missing_file_is_transient(self, tmp_path):
        source = FileTailSource(tmp_path / "nope.csv")
        source.open()
        with pytest.raises(TransientPointError):
            source.poll()

    def test_shrunk_file_is_permanent(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("one\ntwo\n")
        source = FileTailSource(path)
        source.open()
        source.poll()
        path.write_text("x\n")  # rotated/truncated under the cursor
        with pytest.raises(PermanentPointError):
            source.poll()

    def test_eof_flush_releases_fragment(self, tmp_path):
        path = tmp_path / "s.csv"
        path.write_text("one\nlast-no-newline")
        source = FileTailSource(path)
        source.open()
        assert drain(source) == ["one"]
        assert [text for text, _ in source.eof_flush()] == ["last-no-newline"]


class TestDirectoryWatchSource:
    def test_segments_concatenate_in_sorted_order(self, tmp_path):
        (tmp_path / "seg-000.csv").write_text("a\nb\n")
        (tmp_path / "seg-001.csv").write_text("c\n")
        source = DirectoryWatchSource(tmp_path, "*.csv")
        source.open()
        assert drain(source) == ["a", "b", "c"]
        assert source.idle()

    def test_later_file_finalises_earlier_torn_tail(self, tmp_path):
        (tmp_path / "seg-000.csv").write_text("a\nb")  # no trailing newline
        source = DirectoryWatchSource(tmp_path, "*.csv")
        source.open()
        assert drain(source) == ["a"]  # "b" held: seg-000 may still grow
        (tmp_path / "seg-001.csv").write_text("c\n")
        assert drain(source) == ["b", "c"]  # finalised, tail released

    def test_cursor_resume_mid_directory(self, tmp_path):
        (tmp_path / "seg-000.csv").write_text("a\nb\n")
        (tmp_path / "seg-001.csv").write_text("c\nd\n")
        source = DirectoryWatchSource(tmp_path, "*.csv")
        source.open()
        rows = source.poll()
        assert [text for text, _ in rows] == ["a", "b", "c", "d"]
        resumed = DirectoryWatchSource(tmp_path, "*.csv")
        resumed.open(rows[2][1])  # committed through "c"
        assert drain(resumed) == ["d"]

    def test_hidden_and_unmatched_files_ignored(self, tmp_path):
        (tmp_path / ".hidden.csv").write_text("no\n")
        (tmp_path / "notes.txt").write_text("no\n")
        (tmp_path / "seg-000.csv").write_text("yes\n")
        source = DirectoryWatchSource(tmp_path, "*.csv")
        source.open()
        assert drain(source) == ["yes"]

    def test_empty_directory_idles(self, tmp_path):
        source = DirectoryWatchSource(tmp_path, "*.csv")
        source.open()
        assert drain(source) == []
        assert source.idle()


class TestSocketLineSource:
    def test_spool_journal_and_replay(self, tmp_path):
        source = SocketLineSource("127.0.0.1", 0, tmp_path / "spool.lines")
        source.open()
        try:
            with socket.create_connection(("127.0.0.1", source.port)) as conn:
                conn.sendall(b"one\ntwo\nto")  # torn tail on the wire
            deadline = time.monotonic() + 5.0
            got = []
            while len(got) < 2 and time.monotonic() < deadline:
                got.extend(drain(source))
                time.sleep(0.01)
            assert got == ["one", "two"]
            # the spool is the durable journal, torn bytes included
            assert (tmp_path / "spool.lines").read_bytes() == b"one\ntwo\nto"
        finally:
            source.close()
        # a fresh source over the same spool replays from any cursor
        replay = SocketLineSource("127.0.0.1", 0, tmp_path / "spool.lines")
        replay.open(0)
        try:
            assert drain(replay) == ["one", "two"]
        finally:
            replay.close()

    def test_open_connection_blocks_idle(self, tmp_path):
        source = SocketLineSource("127.0.0.1", 0, tmp_path / "spool.lines")
        source.open()
        try:
            assert source.idle()
            with socket.create_connection(("127.0.0.1", source.port)):
                deadline = time.monotonic() + 5.0
                while source.idle() and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert not source.idle()
            deadline = time.monotonic() + 5.0
            while not source.idle() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert source.idle()
        finally:
            source.close()


class TestParseSourceSpec:
    def test_specs(self, tmp_path):
        assert isinstance(parse_source_spec("file:/x/y.csv", tmp_path), FileTailSource)
        assert isinstance(parse_source_spec("/x/y.csv", tmp_path), FileTailSource)
        dir_source = parse_source_spec("dir:/segs:*.csv", tmp_path)
        assert isinstance(dir_source, DirectoryWatchSource)
        assert dir_source.pattern == "*.csv"
        tcp = parse_source_spec("tcp:0.0.0.0:9000", tmp_path)
        assert isinstance(tcp, SocketLineSource)
        assert (tcp.host, tcp.port) == ("0.0.0.0", 9000)
        assert tcp.spool_path == tmp_path / "spool.lines"
        assert parse_source_spec("tcp:9000", tmp_path).host == "127.0.0.1"

    def test_bad_port_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="port"):
            parse_source_spec("tcp:host:notaport", tmp_path)
