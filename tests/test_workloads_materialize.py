"""collect_trace_cached: exact hits, key sensitivity, shared intents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import ConstantLatencyDevice, HDDModel, SATA_600
from repro.trace import TraceStore
from repro.workloads import (
    WorkloadSpec,
    collect_trace,
    collect_trace_cached,
    generate_intents,
    spec_key,
)
from repro.workloads import materialize as materialize_module


@pytest.fixture()
def spec() -> WorkloadSpec:
    return WorkloadSpec(name="mat", n_requests=300, seed=21)


@pytest.fixture()
def store(tmp_path) -> TraceStore:
    return TraceStore(root=tmp_path / "traces")


def assert_identical(a, b):
    for column in ("timestamps", "lbas", "sizes", "ops", "issues", "completes", "syncs"):
        ca, cb = getattr(a, column), getattr(b, column)
        assert (ca is None) == (cb is None), column
        if ca is not None:
            np.testing.assert_array_equal(ca, cb, err_msg=column)


class TestCaching:
    def test_hit_equals_direct_collection(self, spec, store):
        device = HDDModel(seed=5)
        direct = collect_trace(generate_intents(spec), HDDModel(seed=5))
        first = collect_trace_cached(spec, device, store=store)
        cached = collect_trace_cached(spec, HDDModel(seed=5), store=store)
        assert store.misses == 1 and store.hits == 1
        assert_identical(direct, first)
        assert_identical(direct, cached)
        assert cached.metadata == direct.metadata

    def test_hit_skips_generation(self, spec, store, monkeypatch):
        device = ConstantLatencyDevice(SATA_600)
        collect_trace_cached(spec, device, store=store)

        def boom(_spec):
            raise AssertionError("store hit expected; intents regenerated")

        monkeypatch.setattr(materialize_module, "generate_intents", boom)
        trace = collect_trace_cached(spec, ConstantLatencyDevice(SATA_600), store=store)
        assert len(trace) == spec.n_requests

    @pytest.mark.parametrize(
        "variant",
        [
            lambda s, d: (s.scaled(301), d),  # different spec
            lambda s, d: (s, HDDModel(seed=6)),  # different device seed
            lambda s, d: (s, ConstantLatencyDevice(SATA_600)),  # different device
        ],
    )
    def test_key_sensitivity(self, spec, store, variant):
        base_device = HDDModel(seed=5)
        collect_trace_cached(spec, base_device, store=store)
        other_spec, other_device = variant(spec, base_device)
        collect_trace_cached(other_spec, other_device, store=store)
        assert store.misses == 2 and store.hits == 0

    def test_flags_change_key(self, spec, store):
        device = ConstantLatencyDevice(SATA_600)
        collect_trace_cached(spec, device, store=store, record_device_times=True)
        bare = collect_trace_cached(
            spec, ConstantLatencyDevice(SATA_600), store=store, record_device_times=False
        )
        assert store.misses == 2
        assert not bare.has_device_times

    def test_generation_code_change_invalidates(self, spec, store, monkeypatch):
        device = ConstantLatencyDevice(SATA_600)
        collect_trace_cached(spec, device, store=store)
        # Simulate an edit to the generator/storage-model sources.
        monkeypatch.setattr(
            materialize_module, "generation_fingerprint", lambda: "deadbeef0000"
        )
        collect_trace_cached(spec, ConstantLatencyDevice(SATA_600), store=store)
        assert store.misses == 2 and store.hits == 0

    def test_disabled_store_collects_directly(self, spec, tmp_path):
        disabled = TraceStore(root=tmp_path / "none", enabled=False)
        trace = collect_trace_cached(spec, ConstantLatencyDevice(SATA_600), store=disabled)
        assert len(trace) == spec.n_requests
        assert not (tmp_path / "none").exists()

    def test_shared_intents_factory_generates_once(self, spec, store):
        streams: list[int] = []

        def factory():
            streams.append(1)
            return generate_intents(spec)

        collect_trace_cached(
            spec, ConstantLatencyDevice(SATA_600), store=store, intents_factory=factory
        )
        collect_trace_cached(
            spec, HDDModel(seed=5), store=store, intents_factory=factory
        )
        assert streams == [1, 1]  # two misses -> generated per miss
        collect_trace_cached(
            spec, ConstantLatencyDevice(SATA_600), store=store, intents_factory=factory
        )
        assert streams == [1, 1]  # hit -> not regenerated


class TestSpecKey:
    def test_covers_every_knob(self, spec):
        assert spec_key(spec) != spec_key(spec.scaled(301))
        assert "seed=21" in spec_key(spec)

    def test_device_fingerprints_distinguish_configurations(self):
        assert HDDModel(seed=1).fingerprint() != HDDModel(seed=2).fingerprint()
        assert (
            HDDModel(write_back_cache_kb=0).fingerprint()
            != HDDModel(write_back_cache_kb=512).fingerprint()
        )
        from repro.storage import FlashArray

        assert FlashArray(n_ssds=2).fingerprint() != FlashArray(n_ssds=4).fingerprint()
