"""Bit-identity suite for the vectorised analysis kernels.

The interpolation slope/grid kernels and the fused Algorithm 1 group
scoring each retain their original scalar implementation as an oracle;
these property tests assert the production kernels reproduce the
oracles bit for bit across random and degenerate inputs (two knots,
near-duplicate knots, flat and non-monotone data, single-atom groups,
all-zero gap groups).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.interpolation import (
    CubicSplineInterpolator,
    PchipInterpolator,
    _derivative_grid,
    _derivative_grid_scalar,
    _natural_spline_slopes,
    _natural_spline_slopes_scalar,
    _pchip_slopes,
    _pchip_slopes_scalar,
)
from repro.analysis.steepness import select_steepest, steepness_score


@st.composite
def knot_sets(draw, min_n=2, max_n=64):
    """Strictly increasing x knots with arbitrary (often flat) y."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-9, max_value=1e5), min_size=n - 1, max_size=n - 1
        )
    )
    x0 = draw(st.floats(min_value=-1e3, max_value=1e6))
    x = np.concatenate([[x0], x0 + np.cumsum(gaps)])
    if np.any(np.diff(x) <= 0):  # collapsed by rounding
        x = x0 + np.arange(n, dtype=np.float64)
    steps = draw(
        st.lists(
            st.floats(min_value=-1.0, max_value=1.0), min_size=n, max_size=n
        )
    )
    y = np.cumsum(np.round(np.asarray(steps), 1))  # frequent exact plateaus
    return x, y


class TestInterpolationKernels:
    @given(knots=knot_sets())
    @settings(max_examples=60, deadline=None)
    def test_pchip_slopes_bit_identical(self, knots):
        x, y = knots
        np.testing.assert_array_equal(_pchip_slopes(x, y), _pchip_slopes_scalar(x, y))

    @given(knots=knot_sets(min_n=3))
    @settings(max_examples=60, deadline=None)
    def test_spline_slopes_bit_identical(self, knots):
        x, y = knots
        np.testing.assert_array_equal(
            _natural_spline_slopes(x, y), _natural_spline_slopes_scalar(x, y)
        )

    @given(knots=knot_sets(), spi=st.integers(min_value=1, max_value=24), log_x=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_derivative_grid_bit_identical(self, knots, spi, log_x):
        x, _ = knots
        np.testing.assert_array_equal(
            _derivative_grid(x, spi, log_x), _derivative_grid_scalar(x, spi, log_x)
        )

    def test_near_duplicate_knots(self):
        """Adjacent representable doubles: the log10 step can underflow
        to zero, which exercises NumPy's degenerate linspace branch."""
        x = np.array([1.0, np.nextafter(1.0, 2.0), 2.0, 1e6])
        y = np.array([0.0, 0.25, 0.5, 1.0])
        for log_x in (True, False):
            np.testing.assert_array_equal(
                _derivative_grid(x, 16, log_x), _derivative_grid_scalar(x, 16, log_x)
            )
        np.testing.assert_array_equal(_pchip_slopes(x, y), _pchip_slopes_scalar(x, y))
        np.testing.assert_array_equal(
            _natural_spline_slopes(x, y), _natural_spline_slopes_scalar(x, y)
        )

    def test_duplicate_knots_rejected_by_both(self):
        x = np.array([1.0, 1.0, 2.0])
        y = np.array([0.0, 0.5, 1.0])
        for cls in (PchipInterpolator, CubicSplineInterpolator):
            with pytest.raises(ValueError, match="strictly increasing"):
                cls(x, y)

    def test_mixed_sign_knots_use_linear_pieces(self):
        x = np.array([-10.0, -1.0, 0.0, 5.0, 1e4])
        np.testing.assert_array_equal(
            _derivative_grid(x, 8, True), _derivative_grid_scalar(x, 8, True)
        )


def _results_equal(a, b) -> bool:
    feq = lambda u, v: u == v or (math.isnan(u) and math.isnan(v))
    return (
        feq(a.steepness, b.steepness)
        and feq(a.utmost_value, b.utmost_value)
        and feq(a.utmost_mass, b.utmost_mass)
        and a.n_outliers == b.n_outliers
        and np.array_equal(a.pmf.values, b.pmf.values)
        and np.array_equal(a.pmf.masses, b.pmf.masses)
        and a.pmf.n == b.pmf.n
        and a.fit.slope == b.fit.slope
        and a.fit.intercept == b.fit.intercept
        and a.margin == b.margin
    )


@st.composite
def gap_groups(draw):
    """Group dicts covering single-atom, quantised, zero-heavy and
    continuous gap distributions."""
    n_groups = draw(st.integers(min_value=1, max_value=10))
    groups = {}
    for g in range(n_groups):
        n = draw(st.integers(min_value=1, max_value=60))
        kind = draw(st.integers(min_value=0, max_value=3))
        seed = draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        if kind == 0:
            arr = np.full(n, float(rng.integers(1, 500)))
        elif kind == 1:
            arr = rng.integers(0, 12, n).astype(np.float64) * 7.0
        elif kind == 2:
            arr = np.abs(rng.normal(200.0, 3.0, n)) + rng.exponential(1e4, n) * (
                rng.random(n) < 0.25
            )
        else:
            arr = np.concatenate([np.zeros(n // 2), rng.uniform(0.0, 1e5, n - n // 2)])
            rng.shuffle(arr)
        groups[f"g{g}"] = arr
    return groups


class TestFusedSteepness:
    @given(groups=gap_groups(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_fused_matches_per_group_oracle(self, groups, data):
        resolution = data.draw(st.sampled_from([None, 0.5, 5.0]))
        min_samples = data.draw(st.sampled_from([1, 8]))
        fused = select_steepest(
            groups, k=len(groups), resolution=resolution, min_samples=min_samples
        )
        oracle = [
            (key, steepness_score(np.asarray(v, dtype=np.float64), resolution=resolution))
            for key, v in groups.items()
            if np.asarray(v).size >= min_samples
        ]
        oracle.sort(key=lambda pair: (-pair[1].steepness, str(pair[0])))
        assert len(fused) == len(oracle)
        for (fused_key, fused_result), (oracle_key, oracle_result) in zip(fused, oracle):
            assert fused_key == oracle_key
            assert _results_equal(fused_result, oracle_result)

    def test_invalid_resolution_rejected(self):
        groups = {"g": np.arange(1.0, 20.0)}
        with pytest.raises(ValueError, match="resolution must be positive"):
            select_steepest(groups, resolution=0.0, min_samples=1)

    def test_empty_dict_and_small_groups(self):
        assert select_steepest({}) == []
        assert select_steepest({"tiny": np.array([1.0, 2.0])}, min_samples=8) == []
