"""The bounded chunk queue: watermark hysteresis, block, shed, force."""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import BoundedChunkQueue


class TestValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            BoundedChunkQueue(4, policy="drop-newest")

    def test_bad_watermarks(self):
        with pytest.raises(ValueError):
            BoundedChunkQueue(0)
        with pytest.raises(ValueError):
            BoundedChunkQueue(4, low_watermark=9)

    def test_default_low_watermark(self):
        assert BoundedChunkQueue(8).low_watermark == 4
        assert BoundedChunkQueue(1).low_watermark == 1


class TestGating:
    def test_gate_closes_at_high_and_reopens_at_low(self):
        queue = BoundedChunkQueue(4, low_watermark=2, policy="shed")
        for i in range(4):
            assert queue.put(i)
        assert queue.gated
        assert not queue.put(99)  # shed while gated
        assert queue.get() == 0
        assert queue.gated  # 3 > low: hysteresis holds the gate closed
        assert queue.get() == 1
        assert not queue.gated  # drained to low: gate reopens
        assert queue.put(4)
        assert queue.stats()["n_shed"] == 1

    def test_block_policy_waits_for_consumer(self):
        queue = BoundedChunkQueue(2, low_watermark=1, policy="block")
        queue.put("a")
        queue.put("b")
        done = []

        def producer():
            queue.put("c")  # blocks until the consumer drains to low
            done.append(time.monotonic())

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        assert not done  # still gated
        assert queue.get() == "a"  # depth 1 == low: gate opens
        thread.join(timeout=5.0)
        assert done
        assert queue.depth() == 2

    def test_block_put_aborts_on_request(self):
        queue = BoundedChunkQueue(1, policy="block")
        queue.put("a")
        abort = threading.Event()
        results = []

        def producer():
            results.append(queue.put("b", should_abort=abort.is_set))

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.05)
        abort.set()
        thread.join(timeout=5.0)
        assert results == [False]

    def test_force_bypasses_gate(self):
        queue = BoundedChunkQueue(1, policy="shed")
        queue.put("a")
        assert queue.put(("stop",), force=True)
        assert queue.depth() == 2

    def test_get_timeout_returns_none(self):
        assert BoundedChunkQueue(2).get(timeout=0.01) is None

    def test_depth_never_exceeds_high_watermark_under_load(self):
        """The watermark invariant the slow-consumer scenario relies on."""
        queue = BoundedChunkQueue(3, low_watermark=1, policy="block")
        max_seen = 0
        stop = threading.Event()

        def consumer():
            nonlocal max_seen
            while not stop.is_set() or queue.depth():
                item = queue.get(timeout=0.01)
                if item is not None:
                    max_seen = max(max_seen, queue.depth() + 1)
                    time.sleep(0.002)  # slow consumer

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(50):
            queue.put(i)
        stop.set()
        thread.join(timeout=10.0)
        assert queue.stats()["max_depth"] <= 3
        assert max_seen <= 3
