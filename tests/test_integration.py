"""End-to-end integration tests across the whole stack.

These exercise full user journeys: catalog → OLD collection →
inference → replay → post-processing → persisted trace → reload, and
check cross-module invariants nothing else covers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    TraceTracker,
    collect_trace,
    dump_trace,
    generate_intents,
    get_spec,
    load_trace,
    standard_methods,
)
from repro.experiments import build_pair_for, new_node, old_node
from repro.inference import model_sanity
from repro.metrics import ks_distance
from repro.trace import split_windows
from repro.workloads import workload_names

# One representative per family keeps the integration pass fast.
SAMPLE_WORKLOADS = ("CFS", "ikki", "wdev")


class TestFullReconstructionJourney:
    @pytest.mark.parametrize("workload", SAMPLE_WORKLOADS)
    def test_catalog_to_reconstruction(self, workload):
        pair = build_pair_for(workload, n_requests=1500)
        result = TraceTracker().reconstruct(pair.old, new_node())
        new = result.trace
        # Pattern preserved, timing monotone, device stamps collected.
        np.testing.assert_array_equal(new.lbas, pair.old.lbas)
        assert np.all(np.diff(new.timestamps) >= 0)
        assert new.has_device_times
        # The inferred model is physically plausible.
        if result.extraction.report is not None:
            assert model_sanity(result.extraction.report.model) == []

    @pytest.mark.parametrize("workload", SAMPLE_WORKLOADS)
    def test_reconstruction_beats_naive_methods(self, workload):
        pair = build_pair_for(workload, n_requests=1500)
        distances = {
            m.name: ks_distance(m.reconstruct(pair.old, new_node()), pair.new)
            for m in standard_methods()
        }
        assert distances["tracetracker"] < distances["acceleration-100x"]
        assert distances["tracetracker"] < distances["revision"]

    def test_reconstructed_trace_round_trips_through_disk(self, tmp_path):
        pair = build_pair_for("CFS", n_requests=800)
        new = TraceTracker().reconstruct(pair.old, new_node()).trace
        path = dump_trace(new, tmp_path / "cfs_new.csv")
        reloaded = load_trace(path)
        np.testing.assert_allclose(reloaded.timestamps, new.timestamps, atol=0.01)
        np.testing.assert_allclose(reloaded.device_times(), new.device_times(), atol=0.01)

    def test_windowed_reconstruction(self):
        """Windows of a trace reconstruct independently (per-day studies)."""
        old = collect_trace(generate_intents(get_spec("MSNFS").scaled(2000)), old_node())
        windows = split_windows(old, old.duration / 3 + 1)
        assert len(windows) >= 2
        for window in windows:
            if len(window) < 50:
                continue
            result = TraceTracker().reconstruct(window, new_node())
            assert len(result.trace) == len(window)

    def test_reconstruction_composes_with_reconstruction(self):
        """A reconstructed trace is a valid input to another pass.

        (The paper's motivation: "the target system will keep shifting
        its underlying storage technology" — reconstruction must be
        repeatable.)
        """
        pair = build_pair_for("ikki", n_requests=800)
        first = TraceTracker().reconstruct(pair.old, new_node()).trace
        second = TraceTracker().reconstruct(first, new_node()).trace
        assert len(second) == len(first)
        # A second pass onto the same hardware barely changes timing.
        assert ks_distance(second, first) < 0.25


class TestCatalogIntegrity:
    def test_every_workload_reconstructs(self):
        """Smoke: all 31 workloads run the full pipeline at tiny scale."""
        for name in workload_names():
            pair = build_pair_for(name, n_requests=400)
            result = TraceTracker().reconstruct(pair.old, new_node())
            assert len(result.trace) == 400, name

    def test_flash_reconstruction_is_denser_everywhere(self):
        for name in SAMPLE_WORKLOADS:
            pair = build_pair_for(name, n_requests=800)
            new = TraceTracker().reconstruct(pair.old, new_node()).trace
            assert new.duration <= pair.old.duration * 1.05, name
