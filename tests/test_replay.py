"""Unit tests for the replayer, collector, and async post-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.replay import (
    detect_async_indices,
    replay_back_to_back,
    replay_with_idle,
    revive_async,
)
from repro.trace import BlockTrace, OpType


def pattern_trace(n: int = 20) -> BlockTrace:
    ts = np.arange(n) * 10_000.0
    return BlockTrace(ts, np.arange(n) * 8, np.full(n, 8), np.tile([0, 1], n)[:n], name="p")


class TestReplayer:
    def test_preserves_request_pattern(self, const_device):
        old = pattern_trace()
        result = replay_with_idle(old, const_device, np.full(len(old) - 1, 100.0))
        np.testing.assert_array_equal(result.trace.lbas, old.lbas)
        np.testing.assert_array_equal(result.trace.sizes, old.sizes)
        np.testing.assert_array_equal(result.trace.ops, old.ops)

    def test_gaps_are_service_plus_idle(self, const_device):
        old = pattern_trace(5)
        idle = np.array([100.0, 200.0, 300.0, 400.0])
        result = replay_with_idle(old, const_device, idle)
        gaps = result.trace.inter_arrival_times()
        service = np.array([c.latency for c in result.completions[:-1]])
        np.testing.assert_allclose(gaps, service + idle)

    def test_collected_trace_has_device_times(self, const_device):
        result = replay_with_idle(pattern_trace(), const_device, None)
        assert result.trace.has_device_times
        # Driver-level stamps: device time = channel delay + service.
        dev = result.trace.device_times()
        reads = dev[result.trace.read_mask()]
        writes = dev[result.trace.write_mask()]
        np.testing.assert_allclose(
            reads, 100.0 + const_device.channel.delay_us(OpType.READ, 8)
        )
        np.testing.assert_allclose(
            writes, 200.0 + const_device.channel.delay_us(OpType.WRITE, 8)
        )

    def test_back_to_back_has_zero_idle(self, const_device):
        result = replay_back_to_back(pattern_trace(6), const_device)
        gaps = result.trace.inter_arrival_times()
        latencies = np.array([c.latency for c in result.completions[:-1]])
        np.testing.assert_allclose(gaps, latencies)

    def test_metadata_labels(self, const_device):
        result = replay_with_idle(pattern_trace(), const_device, None, method="m1")
        assert result.trace.metadata["method"] == "m1"
        assert result.trace.metadata["replayed_on"] == const_device.name

    def test_idle_length_validation(self, const_device):
        old = pattern_trace(5)
        with pytest.raises(ValueError, match="length"):
            replay_with_idle(old, const_device, np.zeros(2))
        with pytest.raises(ValueError, match="non-negative"):
            replay_with_idle(old, const_device, np.full(4, -1.0))

    def test_empty_trace_rejected(self, const_device):
        with pytest.raises(ValueError):
            replay_with_idle(BlockTrace([], [], [], []), const_device, None)

    def test_full_length_idle_array_accepted(self, const_device):
        old = pattern_trace(5)
        result = replay_with_idle(old, const_device, np.zeros(5))
        assert len(result.trace) == 5

    def test_device_reset_before_replay(self, const_device):
        old = pattern_trace(3)
        a = replay_with_idle(old, const_device, None).trace.timestamps
        b = replay_with_idle(old, const_device, None).trace.timestamps
        np.testing.assert_allclose(a, b)


class TestDetectAsync:
    def test_detects_short_gaps(self):
        tintt = np.array([100.0, 30.0, 500.0])
        tsdev = np.array([50.0, 50.0, 50.0])
        np.testing.assert_array_equal(detect_async_indices(tintt, tsdev), [1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            detect_async_indices(np.zeros(3), np.zeros(2))


class TestReviveAsync:
    def _new_trace(self) -> BlockTrace:
        # Gaps 300 each; device time 200 each.
        ts = np.array([0.0, 300.0, 600.0, 900.0])
        return BlockTrace(
            ts,
            [0, 8, 16, 24],
            [8, 8, 8, 8],
            [0, 0, 0, 0],
            issues=ts + 10.0,
            completes=ts + 210.0,
        )

    def test_flagged_gap_tightened_by_device_time(self):
        out = revive_async(self._new_trace(), np.array([1]))
        gaps = out.inter_arrival_times()
        np.testing.assert_allclose(gaps, [300.0, 100.0, 300.0])

    def test_unflagged_trace_unchanged(self):
        original = self._new_trace()
        out = revive_async(original, np.array([], dtype=int))
        np.testing.assert_allclose(out.timestamps, original.timestamps)

    def test_min_gap_floor(self):
        out = revive_async(self._new_trace(), np.array([0, 1, 2]), min_gap_us=150.0)
        assert (out.inter_arrival_times() >= 150.0).all()

    def test_device_times_preserved(self):
        original = self._new_trace()
        out = revive_async(original, np.array([1, 2]))
        np.testing.assert_allclose(out.device_times(), original.device_times())

    def test_requires_device_times(self):
        bare = BlockTrace([0.0, 10.0], [0, 8], [8, 8], [0, 0])
        with pytest.raises(ValueError):
            revive_async(bare, np.array([0]))

    def test_out_of_range_indices(self):
        with pytest.raises(ValueError):
            revive_async(self._new_trace(), np.array([99]))

    def test_metadata_annotated(self):
        out = revive_async(self._new_trace(), np.array([1]))
        assert out.metadata["postprocessed"] is True
        assert out.metadata["n_async_gaps"] == 1

    def test_short_trace_passthrough(self):
        t = BlockTrace([0.0], [0], [8], [0], issues=[0.0], completes=[10.0])
        assert revive_async(t, np.array([], dtype=int)) is t
