"""Unit tests for the Algorithm 1 steepness examination."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import select_steepest, steepness_score


class TestSteepnessScore:
    def test_single_atom_is_maximally_steep(self):
        result = steepness_score(np.full(100, 42.0))
        assert result.steepness == pytest.approx(1.0)
        assert result.utmost_value == 42.0
        assert result.has_outlier

    def test_spiked_distribution_beats_flat(self, rng):
        # 80% of mass at one latency vs uniform spread.
        spiked = np.concatenate([np.full(800, 100.0), rng.uniform(50, 5000, 200)])
        flat = rng.uniform(50, 5000, 1000)
        s_spiked = steepness_score(spiked, resolution=10.0)
        s_flat = steepness_score(flat, resolution=10.0)
        assert s_spiked.steepness > s_flat.steepness

    def test_utmost_outlier_is_largest_significant_value(self, rng):
        # Two spikes: 60% at 100us, 25% at 900us, rest spread.  Both are
        # significant outliers; the utmost one is the *largest T_intt*
        # ("it first looks for the T_intt with the maximum value"), which
        # anchors the analysis on the service mode rather than on an
        # async-submission spike at the low end.
        samples = np.concatenate(
            [np.full(600, 100.0), np.full(250, 900.0), rng.uniform(10, 5000, 150)]
        )
        result = steepness_score(samples, resolution=10.0)
        assert result.utmost_value == pytest.approx(900.0)

    def test_insignificant_tail_repeats_do_not_win(self, rng):
        # One real mode plus a tail value repeated only twice: the pair
        # of tail samples must not become the utmost outlier even if it
        # clears the margin.
        samples = np.concatenate(
            [np.full(500, 100.0), rng.uniform(1_000, 1e6, 498), np.full(2, 5e6)]
        )
        result = steepness_score(samples, resolution=10.0)
        assert result.utmost_value < 1e6

    def test_no_outlier_yields_zero_score(self):
        # Perfectly uniform masses: every point sits on the fit line.
        samples = np.arange(1.0, 11.0)
        result = steepness_score(samples)
        assert result.steepness == 0.0
        assert not result.has_outlier
        assert np.isnan(result.utmost_value)

    def test_margin_factor_controls_outlier_count(self, rng):
        samples = np.concatenate([np.full(500, 100.0), rng.uniform(10, 1000, 500)])
        strict = steepness_score(samples, resolution=5.0, margin_factor=5.0)
        loose = steepness_score(samples, resolution=5.0, margin_factor=0.01)
        assert loose.n_outliers >= strict.n_outliers


class TestSelectSteepest:
    def test_ranks_by_steepness(self, rng):
        groups = {
            "tight": np.full(200, 500.0) + rng.normal(0, 1, 200),
            "loose": rng.uniform(10, 10_000, 200),
            "medium": np.concatenate([np.full(120, 300.0), rng.uniform(10, 3000, 80)]),
        }
        ranked = select_steepest(groups, k=3, resolution=10.0)
        keys = [k for k, _ in ranked]
        assert keys[0] == "tight"
        assert keys[-1] == "loose"

    def test_k_limits_results(self, rng):
        groups = {i: rng.uniform(0, 100, 50) for i in range(5)}
        assert len(select_steepest(groups, k=2, resolution=1.0)) == 2

    def test_small_groups_skipped(self):
        groups = {"tiny": np.array([1.0, 2.0]), "ok": np.full(50, 5.0)}
        ranked = select_steepest(groups, k=2, min_samples=8)
        assert [k for k, _ in ranked] == ["ok"]

    def test_deterministic_tie_break(self):
        groups = {"b": np.full(50, 5.0), "a": np.full(50, 5.0)}
        ranked = select_steepest(groups, k=2)
        assert [k for k, _ in ranked] == ["a", "b"]

    def test_k_validation(self):
        with pytest.raises(ValueError):
            select_steepest({}, k=0)

    def test_empty_input(self):
        assert select_steepest({}, k=2) == []
