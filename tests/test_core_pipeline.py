"""Unit and integration tests for the TraceTracker pipeline and baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Acceleration,
    Dynamic,
    FixedThreshold,
    Revision,
    TraceTracker,
    TraceTrackerConfig,
    TraceTrackerMethod,
    standard_methods,
)
from repro.metrics import ks_distance
from repro.workloads import collect_trace, generate_intents


class TestTraceTrackerPipeline:
    def test_reconstruction_preserves_pattern(self, old_trace, flash):
        result = TraceTracker().reconstruct(old_trace, flash)
        np.testing.assert_array_equal(result.trace.lbas, old_trace.lbas)
        np.testing.assert_array_equal(result.trace.ops, old_trace.ops)
        assert len(result.trace) == len(old_trace)

    def test_software_half_standalone(self, old_trace):
        tracker = TraceTracker()
        extraction = tracker.evaluate_software(old_trace)
        assert len(extraction) == len(old_trace) - 1
        assert extraction.used_measured_tsdev

    def test_reconstruction_is_deterministic(self, old_trace, flash):
        a = TraceTracker().reconstruct(old_trace, flash).trace
        b = TraceTracker().reconstruct(old_trace, flash).trace
        np.testing.assert_allclose(a.timestamps, b.timestamps)

    def test_result_exposes_idle_and_async(self, old_trace, flash):
        result = TraceTracker().reconstruct(old_trace, flash)
        assert (result.inferred_idle_us >= 0).all()
        assert result.async_indices.ndim == 1
        assert result.method == "tracetracker"

    def test_postprocess_shortens_trace(self, old_trace, flash):
        with_pp = TraceTracker().reconstruct(old_trace, flash).trace
        without = TraceTracker(
            TraceTrackerConfig(postprocess=False)
        ).reconstruct(old_trace, flash).trace
        # Post-processing only removes spurious waits.
        assert with_pp.duration <= without.duration

    def test_works_on_bare_traces(self, old_trace_bare, flash):
        result = TraceTracker().reconstruct(old_trace_bare, flash)
        assert result.extraction.report is not None
        assert len(result.trace) == len(old_trace_bare)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceTrackerConfig(min_async_gap_us=-1.0)


class TestBaselines:
    def test_acceleration_scales_gaps_exactly(self, old_trace, flash):
        rec = Acceleration(100.0).reconstruct(old_trace, flash)
        np.testing.assert_allclose(
            rec.inter_arrival_times(), old_trace.inter_arrival_times() / 100.0
        )

    def test_acceleration_validation(self):
        with pytest.raises(ValueError):
            Acceleration(0.0)

    def test_revision_drops_all_idle(self, old_trace, flash):
        rec = Revision().reconstruct(old_trace, flash)
        # Much shorter than the original: idles gone, device faster.
        assert rec.duration < old_trace.duration * 0.1

    def test_fixed_threshold_keeps_long_idles(self, old_trace, flash):
        rec = FixedThreshold(10_000.0).reconstruct(old_trace, flash)
        rev = Revision().reconstruct(old_trace, flash)
        assert rec.duration > rev.duration

    def test_fixed_threshold_validation(self):
        with pytest.raises(ValueError):
            FixedThreshold(0.0)

    def test_dynamic_skips_postprocess(self, old_trace, flash):
        dyn = Dynamic().reconstruct(old_trace, flash)
        full = TraceTrackerMethod().reconstruct(old_trace, flash)
        assert dyn.duration >= full.duration

    def test_standard_methods_roster(self):
        methods = standard_methods()
        names = [m.name for m in methods]
        assert names == [
            "acceleration-100x",
            "revision",
            "fixed-th-10ms",
            "dynamic",
            "tracetracker",
        ]

    def test_all_methods_preserve_length(self, old_trace, flash):
        for method in standard_methods():
            rec = method.reconstruct(old_trace, flash)
            assert len(rec) == len(old_trace), method.name


class TestHeadlineBehaviour:
    """The paper's qualitative ranking must hold on our substrate."""

    def test_tracetracker_hugs_target_best(self, mixed_spec, hdd, flash):
        # OLD/NEW pair from the same intent stream (the paper's method).
        stream = generate_intents(mixed_spec)
        old = collect_trace(stream, hdd)
        new = collect_trace(stream, flash)  # ground truth on flash
        distances = {}
        for method in standard_methods():
            rec = method.reconstruct(old, flash)
            distances[method.name] = ks_distance(rec, new)
        assert distances["tracetracker"] < distances["revision"]
        assert distances["tracetracker"] < distances["acceleration-100x"]
        assert distances["tracetracker"] < distances["fixed-th-10ms"]

    def test_duration_ordering(self, mixed_spec, hdd, flash):
        stream = generate_intents(mixed_spec)
        old = collect_trace(stream, hdd)
        new = collect_trace(stream, flash)
        tt = TraceTrackerMethod().reconstruct(old, flash)
        rev = Revision().reconstruct(old, flash)
        # Revision collapses everything; TraceTracker keeps idle, so its
        # duration must sit near the true NEW duration.
        assert rev.duration < tt.duration
        assert tt.duration == pytest.approx(new.duration, rel=0.5)
