"""Property-based tests for filters, RAID fragmenting, and replay invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay import replay_with_idle
from repro.storage import ConstantLatencyDevice, Raid0, SATA_600
from repro.trace import BlockTrace, filter_sizes, merge_traces, split_windows, time_window

from test_properties import block_traces


class TestFilterProperties:
    @given(block_traces(min_n=2, max_n=80), st.floats(min_value=1.0, max_value=1e7))
    @settings(max_examples=40, deadline=None)
    def test_split_windows_partition(self, trace, window_us):
        windows = split_windows(trace, window_us)
        assert sum(len(w) for w in windows) == len(trace)
        for w in windows:
            assert w.duration <= window_us

    @given(block_traces(min_n=2, max_n=60), st.data())
    @settings(max_examples=40)
    def test_time_window_subset(self, trace, data):
        lo = data.draw(st.floats(min_value=0.0, max_value=float(trace.timestamps[-1])))
        hi = data.draw(st.floats(min_value=lo, max_value=float(trace.timestamps[-1]) + 1.0))
        window = time_window(trace, lo, hi, rebase=False)
        assert len(window) <= len(trace)
        if len(window):
            assert window.timestamps[0] >= lo
            assert window.timestamps[-1] < hi

    @given(block_traces(min_n=1, max_n=60), st.integers(min_value=1, max_value=2048))
    @settings(max_examples=40)
    def test_filter_sizes_bounds(self, trace, bound):
        small = filter_sizes(trace, 1, bound)
        large = filter_sizes(trace, bound + 1) if bound < 2048 else small.empty_like()
        assert len(small) + len(large) == len(trace)

    @given(block_traces(min_n=1, max_n=30), block_traces(min_n=1, max_n=30))
    @settings(max_examples=40)
    def test_merge_preserves_multiset(self, a, b):
        merged = merge_traces([a, b])
        assert len(merged) == len(a) + len(b)
        assert np.all(np.diff(merged.timestamps) >= 0)
        np.testing.assert_array_equal(
            np.sort(merged.lbas), np.sort(np.concatenate([a.lbas, b.lbas]))
        )


class TestRaidProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10**7),
        st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=60)
    def test_fragments_cover_extent_exactly(self, n_members, stripe_kb, lba, size):
        raid = Raid0(
            [ConstantLatencyDevice(SATA_600) for _ in range(n_members)], stripe_kb=stripe_kb
        )
        frags = raid._fragments(lba, size)
        assert sum(f[2] for f in frags) == size
        assert all(0 <= f[0] < n_members for f in frags)
        assert all(f[2] >= 1 for f in frags)
        # No fragment exceeds the stripe unit.
        assert all(f[2] <= raid.stripe_sectors for f in frags)


class TestReplayProperties:
    @given(block_traces(min_n=2, max_n=40), st.data())
    @settings(max_examples=30, deadline=None)
    def test_replay_gap_decomposition(self, trace, data):
        n = len(trace)
        idle = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1e5),
                    min_size=n - 1,
                    max_size=n - 1,
                )
            )
        )
        device = ConstantLatencyDevice(SATA_600, read_us=50.0, write_us=75.0)
        result = replay_with_idle(trace, device, idle)
        gaps = result.trace.inter_arrival_times()
        # Every replayed gap is exactly service latency + injected idle.
        latencies = np.array([c.latency for c in result.completions[:-1]])
        np.testing.assert_allclose(gaps, latencies + idle, rtol=1e-9, atol=1e-6)
        # And therefore never shorter than the idle alone.
        assert np.all(gaps >= idle - 1e-9)
