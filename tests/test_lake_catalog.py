"""Result-lake catalog: dedup, queries, crash consistency, concurrency.

The lake's core contract (ISSUE: content-addressed result lake): the
SQLite catalog is a rebuildable index over flat files — a process
killed mid-ingest or mid-campaign leaves zero lost or duplicated rows
after restart, a full ``--rescan`` reproduces a live-recorded catalog
byte for byte (:meth:`LakeCatalog.dump_rows` is the oracle), and a
warm lake lets a brand-new campaign recompute nothing a prior campaign
already computed.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

import repro.campaign.engine as engine_mod
from repro.campaign import CampaignEngine, CampaignSpec, DeviceSpec, expand
from repro.campaign.cli import main as campaign_main
from repro.lake import (
    LakeCatalog,
    LakeError,
    default_lake_path,
    ingest_tree,
    spec_fingerprint,
)
from repro.lake.cli import main as lake_main
from repro.trace import BlockTrace, TraceStore, save_trace_npz

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_trace(seed: int = 0, n: int = 64) -> BlockTrace:
    rng = np.random.default_rng(seed)
    ts = np.cumsum(rng.random(n) * 100.0)
    ts -= ts[0]
    return BlockTrace(
        timestamps=ts,
        lbas=rng.integers(0, 1 << 40, n),
        sizes=rng.integers(1, 256, n),
        ops=rng.integers(0, 2, n).astype(np.int8),
        issues=ts + 0.5,
        completes=ts + rng.random(n) * 50 + 1,
        name=f"trace-{seed}",
    )


def _grid_spec(name: str = "lake-grid", workloads=("MSNFS", "ikki")) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        action="reconstruct",
        workloads=workloads,
        devices=(DeviceSpec("new", "new-node"), DeviceSpec("old", "old-node")),
        methods=("revision",),
        n_requests=(200,),
    )


def _synthetic_spec(sizes: tuple[int, ...], name: str = "lake-synth") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        action="synthetic",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=sizes,
        options={"iters_per_request": 3},
    )


def _point_row(i: int, **overrides) -> dict:
    row = {
        "workload": f"w{i % 3}",
        "device": f"d{i % 2}",
        "method": "revision",
        "n_requests": 100 + i,
        "metric": float(i),
    }
    row.update(overrides)
    return row


class _KillAfter:
    """Wrap ``run_point`` to simulate a crash after N completed points."""

    def __init__(self, original, n_points: int):
        self._original = original
        self.remaining = n_points
        self.calls = 0

    def __call__(self, spec, point):
        if self.remaining == 0:
            raise KeyboardInterrupt("simulated mid-shard kill")
        self.remaining -= 1
        self.calls += 1
        return self._original(spec, point)


@pytest.fixture
def counted_run_point(monkeypatch):
    original = engine_mod.run_point

    def install(kill_after: int | None = None):
        counter = _KillAfter(original, kill_after if kill_after is not None else 10**9)
        monkeypatch.setattr(engine_mod, "run_point", counter)
        return counter

    return install


# ----------------------------------------------------------------------
# Catalog basics
# ----------------------------------------------------------------------


class TestCatalogBasics:
    def test_schema_version_stamped_and_reopenable(self, tmp_path):
        db = tmp_path / "lake.sqlite"
        with LakeCatalog(db) as cat:
            cat.record_point("k1", "fp", "c", "a", _point_row(1), "hdd")
        with LakeCatalog(db) as cat:
            assert cat.counts()["campaign_points"] == 1

    def test_schema_version_mismatch_raises(self, tmp_path):
        db = tmp_path / "lake.sqlite"
        with LakeCatalog(db) as cat:
            cat._conn.execute("UPDATE lake_meta SET value='99' WHERE key='schema_version'")
            cat._conn.commit()
        with pytest.raises(LakeError, match="rescan"):
            LakeCatalog(db)

    def test_identical_bytes_dedup_to_one_row_two_refs(self, tmp_path):
        a = tmp_path / "a.bin"
        b = tmp_path / "sub" / "b.bin"
        b.parent.mkdir()
        a.write_bytes(b"same content")
        b.write_bytes(b"same content")
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            fp1 = cat.record_artifact("blob", a, ref="ref:a")
            fp2 = cat.record_artifact("blob", b, ref="ref:b")
            assert fp1 == fp2
            assert cat.counts()["artifacts"] == 1
            assert cat.refs(fp1) == ["ref:a", "ref:b"]
            # Canonical path is the lexicographically smallest seen.
            assert cat.artifact(fp1)["path"] == str(min(a, b))

    def test_rewritten_path_supersedes_stale_row(self, tmp_path):
        f = tmp_path / "results.csv"
        f.write_bytes(b"generation one")
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            old = cat.record_artifact("results", f, ref="campaign:x")
            f.write_bytes(b"generation two")
            new = cat.record_artifact("results", f, ref="campaign:x")
            assert old != new
            assert cat.artifact(old) is None
            assert cat.refs(old) == []
            assert cat.counts()["artifacts"] == 1

    def test_record_trace_stores_feature_vector(self, tmp_path):
        from repro.lake import FEATURES_VERSION, trace_feature_vector

        trace = make_trace(seed=1)
        path = save_trace_npz(trace, tmp_path / "t.npz")
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            fp = cat.record_trace(path, trace, ref="store:abc")
            fingerprints, matrix = cat.feature_matrix()
            assert fingerprints == [fp]
            np.testing.assert_array_equal(matrix[0], trace_feature_vector(trace))
            row = cat._conn.execute(
                "SELECT features_version FROM trace_features"
            ).fetchone()
            assert row[0] == FEATURES_VERSION

    def test_record_point_upsert_last_writer_wins(self, tmp_path):
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            cat.record_point("k", "fp1", "c1", "a", _point_row(1), "hdd", wall_s=1.0)
            cat.record_point("k", "fp2", "c2", "a", _point_row(2), "ssd", wall_s=2.0)
            assert cat.counts()["campaign_points"] == 1
            rows = cat.query_points(campaign="c2")
            assert len(rows) == 1 and rows[0]["wall_s"] == 2.0

    def test_completed_rows_chunks_past_parameter_limit(self, tmp_path):
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            keys = [f"k{i:04d}" for i in range(1201)]
            for i, key in enumerate(keys):
                cat.record_point(key, "fp", "c", "a", _point_row(i), "hdd")
            got = cat.completed_rows(keys + ["missing"])
            assert len(got) == 1201
            assert got["k0007"] == _point_row(7)

    def test_query_points_flash_array_qd8_example(self, tmp_path):
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            cat.record_point(
                "k1", "fp", "c", "replay", _point_row(1, workload="X"),
                "flash_array", queue_depth=16.0,
            )
            cat.record_point(
                "k2", "fp", "c", "replay", _point_row(2, workload="X"),
                "flash_array", queue_depth=4.0,
            )
            cat.record_point(
                "k3", "fp", "c", "replay", _point_row(3, workload="X"), "hdd",
                queue_depth=32.0,
            )
            cat.record_point(
                "k4", "fp", "c", "replay", _point_row(4, workload="Y"),
                "flash_array", queue_depth=32.0,
            )
            rows = cat.query_points(
                workload="X", device_kind="flash_array", min_queue_depth=8.0
            )
            assert [r["run_key"] for r in rows] == ["k1"]
            # No filters: every point, run-key order, provenance merged in.
            assert [r["run_key"] for r in cat.query_points()] == ["k1", "k2", "k3", "k4"]
            assert rows[0]["metric"] == 1.0 and rows[0]["queue_depth"] == 16.0

    def test_counts_and_clear(self, tmp_path):
        trace = make_trace(seed=2)
        path = save_trace_npz(trace, tmp_path / "t.npz")
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            cat.record_trace(path, trace, ref="store:x")
            cat.record_point("k", "fp", "c", "a", _point_row(0), "hdd")
            assert cat.counts() == {
                "artifacts": 1,
                "artifact_refs": 1,
                "trace_features": 1,
                "campaign_points": 1,
            }
            cat.clear()
            assert set(cat.counts().values()) == {0}

    def test_gc_drops_rows_with_missing_files(self, tmp_path):
        trace = make_trace(seed=3)
        kept = save_trace_npz(trace, tmp_path / "kept.npz")
        doomed = save_trace_npz(trace, tmp_path / "doomed" / "t.npz")
        camp = tmp_path / "camp"
        (camp / "runs").mkdir(parents=True)
        (camp / "runs" / "seg.jsonl").write_text("{}\n")
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            cat.record_trace(kept, trace)
            cat.record_artifact("trace", doomed, ref="store:doomed")
            cat.record_point(
                "k-live", "fp", "c", "a", _point_row(0), "hdd",
                source_dir=str(camp), checkpoint_file="seg.jsonl",
            )
            cat.record_point(
                "k-dead", "fp", "c", "a", _point_row(1), "hdd",
                source_dir=str(camp), checkpoint_file="gone.jsonl",
            )
            doomed.unlink()
            removed = cat.gc()
            assert removed == {"artifacts": 1, "campaign_points": 1}
            assert cat.counts()["campaign_points"] == 1
            assert [r["run_key"] for r in cat.query_points()] == ["k-live"]

    def test_dump_rows_is_insertion_order_invariant(self, tmp_path):
        rows = [(f"k{i}", _point_row(i)) for i in range(6)]
        with LakeCatalog(tmp_path / "fwd.sqlite") as fwd:
            for key, row in rows:
                fwd.record_point(key, "fp", "c", "a", row, "hdd")
            forward = fwd.dump_rows()
        with LakeCatalog(tmp_path / "rev.sqlite") as rev:
            for key, row in reversed(rows):
                rev.record_point(key, "fp", "c", "a", row, "hdd")
            assert rev.dump_rows() == forward

    def test_default_lake_path_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LAKE_DB", str(tmp_path / "custom.sqlite"))
        assert default_lake_path() == tmp_path / "custom.sqlite"
        monkeypatch.delenv("REPRO_LAKE_DB")
        assert default_lake_path().name == "lake.sqlite"

    def test_spec_fingerprint_stable_and_name_sensitive(self):
        a = _grid_spec(name="one").to_dict()
        assert spec_fingerprint(a) == spec_fingerprint(json.loads(json.dumps(a)))
        assert spec_fingerprint(a) != spec_fingerprint(_grid_spec(name="two").to_dict())


# ----------------------------------------------------------------------
# Engine integration: live recording and cross-campaign skip
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_engine_records_every_point_live(self, tmp_path):
        spec = _grid_spec()
        db = tmp_path / "lake.sqlite"
        result = CampaignEngine(
            spec, out_dir=tmp_path / "run", use_trace_store=False, lake=db
        ).run()
        with LakeCatalog(db) as cat:
            points = cat.query_points()
            assert len(points) == len(result.plan)
            assert {p["run_key"] for p in points} == set(expand(spec).keys())
            assert all(p["wall_s"] is not None and p["wall_s"] >= 0 for p in points)
            assert all(p["checkpoint_file"] for p in points)
            # Aggregate tables land as content-addressed artifacts.
            kinds = {a["kind"] for a in cat.artifacts()}
            assert kinds == {"results"}

    def test_warm_lake_recomputes_zero_points(self, tmp_path, counted_run_point):
        """ISSUE acceptance: engine skip count equals catalog hit count."""
        spec = _grid_spec()
        db = tmp_path / "lake.sqlite"
        first = CampaignEngine(
            spec, out_dir=tmp_path / "run1", use_trace_store=False, lake=db
        ).run()
        counter = counted_run_point()
        second = CampaignEngine(
            spec, out_dir=tmp_path / "run2", use_trace_store=False, lake=db
        ).run()
        assert counter.calls == 0
        assert second.n_computed == 0
        assert second.n_lake_hits == len(first.plan)
        with LakeCatalog(db) as cat:
            assert second.n_lake_hits == cat.counts()["campaign_points"]
        assert second.table == first.table

    def test_cross_campaign_skip_computes_only_new_points(
        self, tmp_path, counted_run_point
    ):
        """A *differently named* campaign reuses overlapping run keys —
        dedup keys on the run key, which excludes the campaign name."""
        db = tmp_path / "lake.sqlite"
        CampaignEngine(
            _grid_spec(name="first"), out_dir=tmp_path / "a",
            use_trace_store=False, lake=db,
        ).run()
        grown = _grid_spec(name="second", workloads=("MSNFS", "ikki", "CFS"))
        counter = counted_run_point()
        result = CampaignEngine(
            grown, out_dir=tmp_path / "b", use_trace_store=False, lake=db
        ).run()
        assert counter.calls == 2  # only CFS x {new, old}
        assert result.n_lake_hits == 4 and result.n_computed == 2

    def test_no_resume_ignores_lake(self, tmp_path, counted_run_point):
        spec = _grid_spec()
        db = tmp_path / "lake.sqlite"
        CampaignEngine(
            spec, out_dir=tmp_path / "a", use_trace_store=False, lake=db
        ).run()
        counter = counted_run_point()
        result = CampaignEngine(
            spec, out_dir=tmp_path / "b", use_trace_store=False, lake=db,
            resume=False,
        ).run()
        assert counter.calls == len(expand(spec))
        assert result.n_lake_hits == 0 and result.n_computed == len(expand(spec))

    def test_checkpoint_resume_takes_precedence_over_lake(
        self, tmp_path, counted_run_point
    ):
        spec = _grid_spec()
        db = tmp_path / "lake.sqlite"
        out = tmp_path / "run"
        CampaignEngine(spec, out_dir=out, use_trace_store=False, lake=db).run()
        counter = counted_run_point()
        again = CampaignEngine(spec, out_dir=out, use_trace_store=False, lake=db).run()
        assert counter.calls == 0
        assert again.n_resumed == len(expand(spec)) and again.n_lake_hits == 0

    def test_campaign_cli_reports_lake_hits(self, tmp_path, capsys):
        spec = _grid_spec()
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec.to_dict()))
        db = tmp_path / "lake.sqlite"
        args = ["run", str(spec_path), "--quiet", "--no-trace-store"]
        assert campaign_main(args + ["--out-dir", str(tmp_path / "a"), "--lake", str(db)]) == 0
        first = capsys.readouterr().out
        assert "(0 resumed, 4 computed, 0 from lake)" in first
        assert campaign_main(args + ["--out-dir", str(tmp_path / "b"), "--lake", str(db)]) == 0
        second = capsys.readouterr().out
        assert "(0 resumed, 0 computed, 4 from lake)" in second
        # Without --lake the historical output format is unchanged.
        assert campaign_main(args + ["--out-dir", str(tmp_path / "c")]) == 0
        plain = capsys.readouterr().out
        assert "(0 resumed, 4 computed)" in plain and "from lake" not in plain


# ----------------------------------------------------------------------
# Rescan: the rebuildable-index invariant
# ----------------------------------------------------------------------


class TestRescan:
    def _live_and_tree(self, tmp_path) -> tuple[str, Path]:
        """A live-recorded catalog dump plus the tree it described."""
        db = tmp_path / "live.sqlite"
        spec = _grid_spec()
        CampaignEngine(
            spec, out_dir=tmp_path / "tree" / "run1", use_trace_store=False, lake=db
        ).run()
        CampaignEngine(
            spec, out_dir=tmp_path / "tree" / "run2", use_trace_store=False, lake=db
        ).run()
        with LakeCatalog(db) as cat:
            return cat.dump_rows(), tmp_path / "tree"

    def test_rescan_reproduces_live_catalog_byte_for_byte(self, tmp_path):
        live, tree = self._live_and_tree(tmp_path)
        with LakeCatalog(tmp_path / "rebuild.sqlite") as cat:
            report = ingest_tree(cat, tree)
            assert report["campaigns"] == 2 and report["skipped"] == 0
            assert cat.dump_rows() == live

    def test_rescan_cli_recovers_deleted_catalog(self, tmp_path):
        live, tree = self._live_and_tree(tmp_path)
        db = tmp_path / "live.sqlite"
        for suffix in ("", "-wal", "-shm"):
            p = Path(str(db) + suffix)
            if p.exists():
                p.unlink()
        assert lake_main(["--db", str(db), "ingest", str(tree), "--rescan"]) == 0
        with LakeCatalog(db) as cat:
            assert cat.dump_rows() == live

    def test_rescan_through_relative_paths_matches_live(self, tmp_path, monkeypatch):
        """`repro-lake ingest ./tree` (relative cwd paths) must land on
        the same rows live producers recorded through absolute paths —
        the catalog stores paths resolved, not as typed."""
        live, tree = self._live_and_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        with LakeCatalog(tmp_path / "rebuild.sqlite") as cat:
            ingest_tree(cat, Path(tree.name))
            assert cat.dump_rows() == live

    def test_reingest_is_idempotent(self, tmp_path):
        _, tree = self._live_and_tree(tmp_path)
        with LakeCatalog(tmp_path / "x.sqlite") as cat:
            ingest_tree(cat, tree)
            once = cat.dump_rows()
            ingest_tree(cat, tree)
            assert cat.dump_rows() == once

    def test_ingest_skips_garbage_without_failing(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "junk.npz").write_bytes(b"not an npz at all")
        bad = tree / "badcamp"
        bad.mkdir()
        (bad / "spec.json").write_text("{ this is not json")
        with LakeCatalog(tmp_path / "lake.sqlite") as cat:
            report = ingest_tree(cat, tree)
            assert report["skipped"] == 2
            assert report["campaigns"] == 0 and report["traces"] == 0

    def test_torn_segment_line_is_not_cataloged(self, tmp_path):
        _, tree = self._live_and_tree(tmp_path)
        segments = sorted((tree / "run1" / "runs").glob("segment-*.jsonl"))
        assert segments
        with segments[0].open("a") as handle:
            handle.write('{"key": "torn-off-mid-wri')  # no newline: a torn write
        with LakeCatalog(tmp_path / "x.sqlite") as cat:
            ingest_tree(cat, tree)
            keys = {r["run_key"] for r in cat.query_points()}
            assert keys == set(expand(_grid_spec()).keys())

    def test_trace_store_rescan_matches_live_registration(self, tmp_path):
        db = tmp_path / "live.sqlite"
        store = TraceStore(root=tmp_path / "store", lake=db)
        for seed in range(3):
            store.get_or_build(
                TraceStore.key_for("w", str(seed)), lambda s=seed: make_trace(s)
            )
        with LakeCatalog(db) as cat:
            live = cat.dump_rows()
            assert cat.counts()["trace_features"] == 3
            fp = cat.artifacts("trace")[0]["fingerprint"]
            assert cat.refs(fp)[0].startswith("store:")
        with LakeCatalog(tmp_path / "rebuild.sqlite") as cat:
            ingest_tree(cat, tmp_path / "store")
            assert cat.dump_rows() == live

    def test_store_lake_registration_is_best_effort(self, tmp_path):
        # A lake path that cannot be a database never fails the build.
        bad = tmp_path / "not-a-dir"
        bad.write_text("file, not directory")
        store = TraceStore(root=tmp_path / "store", lake=bad / "lake.sqlite")
        trace = store.get_or_build(TraceStore.key_for("w"), lambda: make_trace(9))
        assert trace.content_fingerprint is not None


# ----------------------------------------------------------------------
# Crash consistency
# ----------------------------------------------------------------------


_KILL_MID_INGEST = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.lake.catalog import LakeCatalog
from repro.lake.ingest import ingest_tree

calls = 0
original = LakeCatalog.record_point
def killing_record_point(self, *args, **kwargs):
    global calls
    calls += 1
    if calls > {kill_after}:
        os.kill(os.getpid(), signal.SIGKILL)
    return original(self, *args, **kwargs)
LakeCatalog.record_point = killing_record_point

catalog = LakeCatalog({db!r})
ingest_tree(catalog, {tree!r})
"""


class TestCrashConsistency:
    def _tree(self, tmp_path) -> Path:
        CampaignEngine(
            _grid_spec(), out_dir=tmp_path / "tree" / "run", use_trace_store=False
        ).run()
        return tmp_path / "tree"

    def test_sigkill_mid_ingest_then_rescan_converges(self, tmp_path):
        """A process SIGKILLed between row commits loses nothing it
        committed, tears nothing, and a restarted ingest over the same
        database converges to exactly the clean full-scan row set."""
        tree = self._tree(tmp_path)
        db = tmp_path / "killed.sqlite"
        script = _KILL_MID_INGEST.format(
            src=REPO_SRC, db=str(db), tree=str(tree), kill_after=2
        )
        proc = subprocess.run([sys.executable, "-c", script], capture_output=True)
        assert proc.returncode == -signal.SIGKILL

        with LakeCatalog(tmp_path / "clean.sqlite") as cat:
            ingest_tree(cat, tree)
            clean = json.loads(cat.dump_rows())
        with LakeCatalog(db) as cat:
            partial = json.loads(cat.dump_rows())
            # Zero torn rows: every surviving row is a complete clean row.
            for table in ("campaign_points", "artifacts", "artifact_refs"):
                for row in partial[table]:
                    assert row in clean[table], (table, row)
            assert len(partial["campaign_points"]) == 2
            # Restart: plain re-ingest, no special recovery path.
            ingest_tree(cat, tree)
            assert json.loads(cat.dump_rows()) == clean

    def test_kill_mid_campaign_then_resume_matches_rescan(
        self, tmp_path, counted_run_point
    ):
        spec = _grid_spec()
        db = tmp_path / "lake.sqlite"
        out = tmp_path / "run"
        counted_run_point(kill_after=2)
        with pytest.raises(KeyboardInterrupt):
            CampaignEngine(spec, out_dir=out, use_trace_store=False, lake=db).run()
        with LakeCatalog(db) as cat:
            rows = cat.query_points()
            assert len(rows) == 2  # the completed points, nothing torn
            assert all(json.loads(json.dumps(r)) == r for r in rows)

        counted_run_point()
        resumed = CampaignEngine(spec, out_dir=out, use_trace_store=False, lake=db).run()
        assert resumed.n_resumed == 2 and resumed.n_computed == 2
        with LakeCatalog(db) as cat:
            live = cat.dump_rows()
            assert cat.counts()["campaign_points"] == len(expand(spec))
        with LakeCatalog(tmp_path / "rebuild.sqlite") as cat:
            ingest_tree(cat, tmp_path / "run")
            assert cat.dump_rows() == live

    def test_rescan_after_crash_never_duplicates(self, tmp_path):
        tree = self._tree(tmp_path)
        db = tmp_path / "killed.sqlite"
        script = _KILL_MID_INGEST.format(
            src=REPO_SRC, db=str(db), tree=str(tree), kill_after=1
        )
        subprocess.run([sys.executable, "-c", script], capture_output=True)
        with LakeCatalog(db) as cat:
            for _ in range(3):
                ingest_tree(cat, tree)
            counts = cat.counts()
            assert counts["campaign_points"] == len(expand(_grid_spec()))
            assert counts["artifacts"] == 2  # results.npz + results.csv


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------


class TestConcurrency:
    def test_busy_timeout_and_wal_configured(self, tmp_path):
        with LakeCatalog(tmp_path / "lake.sqlite", timeout_s=7.0) as cat:
            assert cat._conn.execute("PRAGMA busy_timeout").fetchone()[0] == 7000
            assert cat._conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"

    def test_two_parallel_workers_record_same_rows_as_serial(self, tmp_path):
        """jobs=2 writes every point through two concurrent worker
        connections; the recorded row set must equal the serial run's
        (a silently-dropped 'database is locked' write would show up
        here as a missing row)."""
        spec = _synthetic_spec(tuple(range(100, 112)))
        keys = expand(spec).keys()
        serial_db = tmp_path / "serial.sqlite"
        parallel_db = tmp_path / "parallel.sqlite"
        CampaignEngine(
            spec, out_dir=tmp_path / "serial", jobs=1,
            use_trace_store=False, lake=serial_db,
        ).run()
        CampaignEngine(
            spec, out_dir=tmp_path / "parallel", jobs=2, scheduler="stealing",
            use_trace_store=False, lake=parallel_db,
        ).run()
        with LakeCatalog(serial_db) as a, LakeCatalog(parallel_db) as b:
            serial_rows = a.completed_rows(keys)
            parallel_rows = b.completed_rows(keys)
            assert len(serial_rows) == len(keys)
            assert parallel_rows == serial_rows

    def test_interleaved_writer_connections(self, tmp_path):
        db = tmp_path / "lake.sqlite"
        errors: list[Exception] = []

        def write(offset: int) -> None:
            try:
                with LakeCatalog(db) as cat:
                    for i in range(offset, offset + 40):
                        cat.record_point(f"k{i:03d}", "fp", "c", "a", _point_row(i), "hdd")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(o,)) for o in (0, 40)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with LakeCatalog(db) as cat:
            assert cat.counts()["campaign_points"] == 80


# ----------------------------------------------------------------------
# repro-lake CLI
# ----------------------------------------------------------------------


class TestLakeCli:
    def test_stats_query_and_gc_round_trip(self, tmp_path, capsys):
        db = tmp_path / "lake.sqlite"
        CampaignEngine(
            _grid_spec(), out_dir=tmp_path / "run", use_trace_store=False, lake=db
        ).run()
        assert lake_main(["--db", str(db), "stats"]) == 0
        assert "campaign_points: 4" in capsys.readouterr().out
        assert lake_main(["--db", str(db), "query", "--workload", "MSNFS"]) == 0
        out = capsys.readouterr().out
        assert "MSNFS" in out and "ikki" not in out
        assert lake_main(["--db", str(db), "query", "--workload", "nope"]) == 1
        capsys.readouterr()
        assert lake_main(["--db", str(db), "gc"]) == 0

    def test_query_csv_format(self, tmp_path, capsys):
        db = tmp_path / "lake.sqlite"
        with LakeCatalog(db) as cat:
            cat.record_point("k", "fp", "c", "a", _point_row(0), "hdd")
        assert lake_main(["--db", str(db), "query", "--format", "csv"]) == 0
        assert "workload" in capsys.readouterr().out

    def test_similar_against_stored_trace(self, tmp_path, capsys):
        db = tmp_path / "lake.sqlite"
        paths = {}
        with LakeCatalog(db) as cat:
            for seed in range(3):
                trace = make_trace(seed)
                path = save_trace_npz(trace, tmp_path / f"t{seed}.npz")
                paths[seed] = path
                cat.record_trace(path, trace)
        assert lake_main(["--db", str(db), "similar", "--trace", str(paths[0]), "-k", "2"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2
        assert lake_main(["--db", str(db), "similar", "--fingerprint", "no-such"]) == 2

    def test_ingest_unknown_path_errors(self, tmp_path, capsys):
        rc = lake_main(["--db", str(tmp_path / "db"), "ingest", str(tmp_path / "nope")])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Lock-contention retry + multi-process write hammering (ISSUE 9)
# ----------------------------------------------------------------------


def _hammer_points(db: str, worker: int, per_worker: int, shared_key: str) -> None:
    """Child-process body: record distinct points plus one contended key."""
    import sqlite3 as _sqlite3

    from repro.lake.catalog import LakeCatalog as _Catalog
    from repro.lake.ingest import record_campaign_point as _record

    spec = _grid_spec(name="hammer")
    with _Catalog(db, timeout_s=30.0) as catalog:
        for i in range(per_worker):
            _record(
                catalog,
                spec,
                f"w{worker}-point-{i}",
                _point_row(i, worker=worker),
                wall_s=0.001 * i,
            )
            # Every worker also upserts one shared key: the upsert must
            # survive the contention, last writer winning.
            _record(catalog, spec, shared_key, _point_row(worker))


class TestWriteRetry:
    def test_locked_error_retried_until_success(self):
        from repro.lake.catalog import _write_with_retry

        attempts: list[int] = []

        def flaky() -> str:
            attempts.append(1)
            if len(attempts) < 3:
                raise __import__("sqlite3").OperationalError("database is locked")
            return "ok"

        assert _write_with_retry(flaky) == "ok"
        assert len(attempts) == 3

    def test_non_lock_operational_error_raises_immediately(self):
        import sqlite3 as _sqlite3

        from repro.lake.catalog import _write_with_retry

        attempts: list[int] = []

        def broken() -> None:
            attempts.append(1)
            raise _sqlite3.OperationalError("attempt to write a readonly database")

        with pytest.raises(_sqlite3.OperationalError):
            _write_with_retry(broken)
        assert len(attempts) == 1

    def test_lock_exhaustion_raises_the_last_error(self):
        import sqlite3 as _sqlite3

        from repro.lake.catalog import _LOCKED_ATTEMPTS, _write_with_retry

        attempts: list[int] = []

        def always_locked() -> None:
            attempts.append(1)
            raise _sqlite3.OperationalError("database is locked")

        with pytest.raises(_sqlite3.OperationalError, match="locked"):
            _write_with_retry(always_locked)
        assert len(attempts) == _LOCKED_ATTEMPTS


class TestConcurrentRecording:
    def test_many_processes_record_points_without_loss(self, tmp_path):
        """Hammer ``record_campaign_point`` from several processes at
        once: every distinct key lands, the contended key upserts
        cleanly, and the catalog stays readable throughout."""
        import multiprocessing

        db = str(tmp_path / "lake.sqlite")
        LakeCatalog(db).close()  # create the schema up front
        n_workers, per_worker = 4, 10
        shared_key = "contended-key"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_points, args=(db, w, per_worker, shared_key))
            for w in range(n_workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        with LakeCatalog(db) as catalog:
            assert catalog.counts()["campaign_points"] == n_workers * per_worker + 1
            expected = [
                f"w{w}-point-{i}" for w in range(n_workers) for i in range(per_worker)
            ]
            rows = catalog.completed_rows(expected + [shared_key])
            assert set(rows) == set(expected) | {shared_key}
            # The contended row is one worker's intact payload, not a blend.
            winner = rows[shared_key]
            assert winner == _point_row(int(winner["metric"]))
