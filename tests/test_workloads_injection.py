"""Unit tests for ground-truth idle injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import BlockTrace
from repro.workloads import inject_idles


def base_trace(n: int = 101) -> BlockTrace:
    ts = np.arange(n) * 1000.0
    return BlockTrace(
        timestamps=ts,
        lbas=np.arange(n) * 8,
        sizes=np.full(n, 8),
        ops=np.zeros(n, dtype=int),
        issues=ts + 1.0,
        completes=ts + 500.0,
        name="base",
    )


class TestInjectIdles:
    def test_injection_count(self):
        trace, record = inject_idles(base_trace(), period_us=5000.0, fraction=0.1)
        assert len(record) == 10
        assert record.n_gaps == 100

    def test_selected_gaps_grow_by_period(self):
        original = base_trace()
        trace, record = inject_idles(original, period_us=5000.0, fraction=0.1)
        gaps_before = original.inter_arrival_times()
        gaps_after = trace.inter_arrival_times()
        np.testing.assert_allclose(gaps_after[record.gap_indices], gaps_before[record.gap_indices] + 5000.0)

    def test_other_gaps_untouched(self):
        original = base_trace()
        trace, record = inject_idles(original, period_us=5000.0, fraction=0.1)
        mask = record.mask()
        np.testing.assert_allclose(
            trace.inter_arrival_times()[~mask], original.inter_arrival_times()[~mask]
        )

    def test_pattern_preserved(self):
        original = base_trace()
        trace, __ = inject_idles(original, period_us=100.0)
        np.testing.assert_array_equal(trace.lbas, original.lbas)
        np.testing.assert_array_equal(trace.sizes, original.sizes)

    def test_device_stamps_shift_with_requests(self):
        original = base_trace()
        trace, __ = inject_idles(original, period_us=100.0)
        np.testing.assert_allclose(trace.device_times(), original.device_times())

    def test_range_sampling_log_uniform(self):
        trace, record = inject_idles(base_trace(2001), period_us=(100.0, 100_000.0), fraction=0.5)
        assert record.periods_us.min() >= 100.0
        assert record.periods_us.max() <= 100_000.0
        # Log-uniform: substantial spread across the range.
        assert record.periods_us.max() / record.periods_us.min() > 10

    def test_deterministic_given_seed(self):
        a = inject_idles(base_trace(), period_us=100.0, seed=5)[1]
        b = inject_idles(base_trace(), period_us=100.0, seed=5)[1]
        np.testing.assert_array_equal(a.gap_indices, b.gap_indices)

    def test_record_helpers(self):
        __, record = inject_idles(base_trace(), period_us=100.0, fraction=0.1)
        assert record.mask().sum() == len(record)
        assert record.period_of_gap().sum() == pytest.approx(record.total_injected_us())

    def test_validation(self):
        with pytest.raises(ValueError):
            inject_idles(base_trace(1), period_us=100.0)
        with pytest.raises(ValueError):
            inject_idles(base_trace(), period_us=0.0)
        with pytest.raises(ValueError):
            inject_idles(base_trace(), period_us=100.0, fraction=0.0)
        with pytest.raises(ValueError):
            inject_idles(base_trace(), period_us=(100.0, 50.0))

    def test_metadata_annotated(self):
        trace, record = inject_idles(base_trace(), period_us=100.0)
        assert trace.metadata["injected_idles"] == len(record)
