"""Chaos harness: deterministic fault injection against real campaigns.

The acceptance contract (ISSUE 9): with worker SIGKILLs, hangs, raised
exceptions, and checkpoint corruption injected mid-run, a supervised
campaign completes with **zero lost or duplicated points** and a
:class:`ResultsTable` bit-identical (excluding quarantined rows) to an
undisturbed oracle run; a poison point is quarantined after N retries
without sinking the campaign; and resume after a supervisor crash
recomputes nothing already checkpointed.

Injections are scheduled by plan index (``kill@3``) and claimed through
``O_EXCL`` markers under the campaign directory, so every fault fires
exactly once no matter which worker reaches it first — which is what
makes the recovered results comparable bit for bit.  Completed-point
accounting crosses process boundaries through an append-only log file
the (forked) workers inherit via a patched ``run_point``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro.campaign.engine as engine_mod
from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    ChaosSpec,
    DeviceSpec,
    Resilience,
    RetryPolicy,
    ResultsTable,
    SupervisionError,
    expand,
)
from repro.campaign.engine import _scan_checkpoints
from repro.campaign.plan import run_key
from repro.campaign.supervise import QUARANTINED

#: Fast, deterministic backoff for every scenario below.
_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05)


def _spec(n_points: int = 6) -> CampaignSpec:
    """A cheap deterministic grid: one synthetic point per size."""
    return CampaignSpec(
        name="chaos-grid",
        action="synthetic",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=tuple(range(100, 100 + n_points)),
        options={"iters_per_request": 3},
    )


@pytest.fixture
def oracle(tmp_path: Path) -> ResultsTable:
    """The undisturbed run every disturbed scenario is compared against."""
    return CampaignEngine(_spec(), out_dir=tmp_path / "oracle", jobs=1).run().table


@pytest.fixture
def compute_log(tmp_path: Path, monkeypatch):
    """Record every *completed* ``run_point`` across all worker processes.

    The patched function appends the point's run key to a shared file
    (O_APPEND, one small write — atomic on POSIX); forked supervised
    workers inherit the patch.  Reading it back answers the zero
    lost/duplicated question: every non-quarantined key appears exactly
    once per computation.
    """
    log = tmp_path / "computed.log"
    original = engine_mod.run_point

    def recording_run_point(spec, point):
        row = original(spec, point)
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(run_key(spec, point) + "\n")
        return row

    monkeypatch.setattr(engine_mod, "run_point", recording_run_point)

    def read() -> list[str]:
        try:
            return log.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return []

    return read


def _run_chaos(
    out_dir: Path,
    chaos: str,
    jobs: int = 2,
    hang_timeout_s: float = 2.0,
    respawn_budget: int | None = None,
    point_timeout_s: float | None = None,
    n_points: int = 6,
):
    engine = CampaignEngine(
        _spec(n_points),
        out_dir=out_dir,
        jobs=jobs,
        scheduler="supervised",
        resilience=Resilience(
            retry=_RETRY,
            point_timeout_s=point_timeout_s,
            chaos=ChaosSpec.parse(chaos),
        ),
        hang_timeout_s=hang_timeout_s,
        respawn_budget=respawn_budget,
    )
    return engine.run()


class TestChaosRecovery:
    def test_worker_kill_recovers_bit_identical(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        result = _run_chaos(tmp_path / "kill", "kill@1")
        assert result.table == oracle
        assert result.supervision["dead"] == 1
        assert result.supervision["respawned"] >= 1
        assert result.n_quarantined == 0
        # Zero lost, zero duplicated: every key computed exactly once.
        keys = expand(_spec()).keys()
        assert sorted(compute_log()) == sorted(keys)

    def test_injected_exception_retried_bit_identical(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        result = _run_chaos(tmp_path / "exc", "exc@2")
        assert result.table == oracle
        assert result.n_quarantined == 0
        assert result.supervision["dead"] == 0
        assert sorted(compute_log()) == sorted(expand(_spec()).keys())

    def test_hung_worker_reclaimed_bit_identical(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        result = _run_chaos(tmp_path / "hang", "hang@0", hang_timeout_s=1.0)
        assert result.table == oracle
        assert result.supervision["hung"] == 1
        assert result.n_quarantined == 0
        assert sorted(compute_log()) == sorted(expand(_spec()).keys())

    def test_corrupt_checkpoint_tolerated_bit_identical(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        out = tmp_path / "corrupt"
        result = _run_chaos(out, "corrupt@3")
        assert result.table == oracle
        assert sorted(compute_log()) == sorted(expand(_spec()).keys())
        # The torn segment costs the lines the truncation destroyed —
        # never the whole directory: a fresh engine over it salvages
        # the surviving checkpoints, recomputes the rest without
        # raising, and still matches the oracle.
        resumed = CampaignEngine(_spec(), out_dir=out, jobs=1).run()
        assert resumed.table == oracle
        assert resumed.n_resumed >= 1
        assert resumed.n_computed < len(oracle)

    def test_combined_faults_bit_identical(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        """Kill + exception + corruption in one run still converges."""
        result = _run_chaos(tmp_path / "combo", "kill@1,exc@2,corrupt@4")
        assert result.table == oracle
        assert result.n_quarantined == 0
        assert sorted(compute_log()) == sorted(expand(_spec()).keys())


class TestPoisonQuarantine:
    def test_poison_point_quarantined_without_sinking(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        poisoned = 4
        result = _run_chaos(tmp_path / "poison", f"poison@{poisoned}")
        # The campaign finished; the poison row is marked, not fatal.
        assert result.n_quarantined == 1
        statuses = result.table.column("status")
        assert statuses[poisoned] == QUARANTINED
        assert result.table.column("attempts")[poisoned] == _RETRY.max_attempts
        # Minus the quarantined row (and its marker columns), the table
        # is bit-identical to the oracle minus that point.
        expected = ResultsTable.from_rows(
            [row for i, row in enumerate(oracle.rows()) if i != poisoned]
        )
        assert result.table.without_quarantined() == expected
        # Every healthy key computed exactly once; the poison key never
        # completed a computation.
        keys = expand(_spec()).keys()
        healthy = [key for i, key in enumerate(keys) if i != poisoned]
        assert sorted(compute_log()) == sorted(healthy)

    def test_quarantine_is_checkpointed(self, tmp_path: Path, compute_log):
        """A poison point costs its retries once per directory: the
        quarantine row resumes like any other checkpoint."""
        out = tmp_path / "poison"
        first = _run_chaos(out, "poison@0")
        assert first.n_quarantined == 1
        keys = expand(_spec()).keys()
        assert len(_scan_checkpoints(out, keys)) == len(keys)
        # Rerun without chaos: nothing recomputes, the quarantined row
        # (status/error/attempts intact) comes back from the checkpoint.
        before = len(compute_log())
        again = CampaignEngine(_spec(), out_dir=out, jobs=1).run()
        assert len(compute_log()) == before
        assert again.n_resumed == len(keys) and again.n_computed == 0
        assert again.n_quarantined == 1
        assert again.table == first.table


class TestSupervisorCrashResume:
    def test_resume_after_supervisor_crash_recomputes_nothing(
        self, tmp_path: Path, oracle: ResultsTable, compute_log
    ):
        """Worker killed with a zero respawn budget: the supervisor
        raises (its own 'crash'), completed points stay checkpointed,
        and the rerun computes exactly the missing ones."""
        out = tmp_path / "crash"
        with pytest.raises(SupervisionError):
            _run_chaos(out, "kill@3", jobs=1, respawn_budget=0)
        computed_before = compute_log()
        checkpointed = _scan_checkpoints(out, expand(_spec()).keys())
        assert len(checkpointed) == len(computed_before)

        # The kill marker is claimed, so the same chaos flags rerun
        # clean — exactly how an operator would retry the command.
        result = _run_chaos(out, "kill@3", jobs=1, respawn_budget=0)
        assert result.table == oracle
        assert result.n_resumed == len(checkpointed)
        assert result.n_computed == len(expand(_spec())) - len(checkpointed)
        # No key computed twice across crash + resume.
        total = compute_log()
        assert sorted(total) == sorted(expand(_spec()).keys())
