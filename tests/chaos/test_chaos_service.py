"""Chaos: SIGKILL the streaming daemon, restart, demand bit-identity.

The property under test: a daemon SIGKILLed at *any* point and
restarted over the same work directory produces a sink and metrics
byte-/bit-identical to an undisturbed batch-oracle run — zero
duplicated and zero lost requests.  Kill points are chosen at random
chunk boundaries from a seeded RNG (the chaos-harness style of
tests/chaos/test_chaos_campaign.py: real processes, real signals,
deterministic schedule).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro import TraceTracker
from repro.storage import ConstantLatencyDevice, HDDModel, SATA_600
from repro.trace import TraceReader, dump_trace, load_trace
from repro.workloads import collect_trace, generate_intents, get_spec

CHUNK = 50
N_REQUESTS = 600


def device():
    return ConstantLatencyDevice(SATA_600, read_us=80.0, write_us=120.0)


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    base = tmp_path_factory.mktemp("chaos-stream")
    old = collect_trace(
        generate_intents(get_spec("MSNFS").scaled(N_REQUESTS)), HDDModel()
    )
    src = base / "old.csv"
    dump_trace(old, src, fmt="internal")
    return src


@pytest.fixture(scope="module")
def oracle(stream_file, tmp_path_factory):
    base = tmp_path_factory.mktemp("chaos-oracle")
    result = TraceTracker().pipeline.run_stream(
        TraceReader(stream_file, chunk_requests=CHUNK), device()
    )
    out = base / "out.csv"
    dump_trace(result.trace, out, fmt="internal")
    return {"bytes": out.read_bytes(), "metrics": result.metrics}


def serve_file(src, workdir):
    """Child-process entry: run the daemon to completion over a file."""
    from repro.service import FileTailSource, ServiceConfig, StreamingReconstructionService

    service = StreamingReconstructionService(
        FileTailSource(src),
        device(),
        workdir,
        ServiceConfig(chunk_requests=CHUNK, until_idle_s=0.3),
    )
    service.run()


def serve_spool(spool, workdir):
    """Child-process entry: resume a socket stream from its spool."""
    from repro.service import SocketLineSource, ServiceConfig, StreamingReconstructionService

    service = StreamingReconstructionService(
        SocketLineSource("127.0.0.1", 0, spool),
        device(),
        workdir,
        ServiceConfig(chunk_requests=CHUNK, until_idle_s=0.3),
    )
    service.run()


def wait_rows_consumed(checkpoint_path, threshold, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if json.loads(checkpoint_path.read_text())["rows_consumed"] >= threshold:
                return
        except (OSError, ValueError, KeyError):
            pass
        time.sleep(0.003)
    raise AssertionError(f"daemon never consumed {threshold} rows")


def assert_exactly_once(workdir, oracle):
    """Byte parity implies zero duplicated and zero lost requests."""
    assert (workdir / "out.csv").read_bytes() == oracle["bytes"]
    got = load_trace(workdir / "out.csv", fmt="internal")
    assert len(got) == oracle["metrics"].n_requests
    assert len(np.unique(got.timestamps)) == len(got)  # no duplicated rows
    saved = json.loads((workdir / "metrics.json").read_text())
    m = oracle["metrics"]
    assert saved == {
        "n_requests": m.n_requests,
        "old_duration_us": m.old_duration_us,
        "new_duration_us": m.new_duration_us,
        "slept_idle_us": m.slept_idle_us,
        "n_async_gaps": m.n_async_gaps,
        "used_measured_tsdev": m.used_measured_tsdev,
        "n_chunks": m.n_chunks,
    }


@pytest.mark.parametrize("seed", [0, 1])
def test_sigkill_at_random_chunk_boundaries(stream_file, oracle, tmp_path, seed):
    """Kill the daemon twice at seeded random progress points, then finish."""
    ctx = multiprocessing.get_context("fork")
    workdir = tmp_path / "wd"
    rng = np.random.default_rng(seed)
    kill_points = sorted(
        rng.choice(np.arange(1, N_REQUESTS // CHUNK), size=2, replace=False) * CHUNK
    )
    for threshold in kill_points:
        proc = ctx.Process(target=serve_file, args=(stream_file, workdir))
        proc.start()
        wait_rows_consumed(workdir / "checkpoint.json", int(threshold))
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=30.0)
        assert proc.exitcode == -signal.SIGKILL
    proc = ctx.Process(target=serve_file, args=(stream_file, workdir))
    proc.start()
    proc.join(timeout=180.0)
    assert proc.exitcode == 0
    assert_exactly_once(workdir, oracle)


def test_sigkill_mid_socket_stream_resumes_from_spool(stream_file, oracle, tmp_path):
    """Socket data survives the kill because the spool journaled it."""
    ctx = multiprocessing.get_context("fork")
    workdir = tmp_path / "wd"
    workdir.mkdir()
    spool = workdir / "spool.lines"
    proc = ctx.Process(target=serve_spool, args=(spool, workdir))
    proc.start()
    # discover the ephemeral port from the status page
    deadline = time.monotonic() + 30.0
    port = 0
    while time.monotonic() < deadline and not port:
        try:
            port = json.loads((workdir / "status.json").read_text())["endpoint"]["port"]
        except (OSError, ValueError, KeyError):
            time.sleep(0.01)
    assert port
    with socket.create_connection(("127.0.0.1", port)) as conn:
        conn.sendall(stream_file.read_bytes())
    # kill mid-processing, after the spool has it all but the pipeline
    # has only partially caught up
    wait_rows_consumed(workdir / "checkpoint.json", CHUNK * 3)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=30.0)
    expected_spool = stream_file.read_bytes()
    deadline = time.monotonic() + 10.0
    while spool.read_bytes() != expected_spool and time.monotonic() < deadline:
        time.sleep(0.01)
    assert spool.read_bytes() == expected_spool  # journal complete
    proc = ctx.Process(target=serve_spool, args=(spool, workdir))
    proc.start()
    proc.join(timeout=180.0)
    assert proc.exitcode == 0
    assert_exactly_once(workdir, oracle)


def test_sigterm_drains_and_exits_zero(stream_file, oracle, tmp_path):
    """Real-signal drain: SIGTERM mid-stream exits cleanly and resumably."""
    ctx = multiprocessing.get_context("fork")
    workdir = tmp_path / "wd"
    proc = ctx.Process(target=serve_file, args=(stream_file, workdir))
    proc.start()
    wait_rows_consumed(workdir / "checkpoint.json", CHUNK * 2)
    os.kill(proc.pid, signal.SIGTERM)
    proc.join(timeout=60.0)
    assert proc.exitcode == 0
    status = json.loads((workdir / "status.json").read_text())
    assert status["state"] in ("stopped", "finished")
    proc = ctx.Process(target=serve_file, args=(stream_file, workdir))
    proc.start()
    proc.join(timeout=180.0)
    assert proc.exitcode == 0
    assert_exactly_once(workdir, oracle)
