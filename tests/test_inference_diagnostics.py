"""Unit tests for inference diagnostics and sanity checks."""

from __future__ import annotations

from repro.inference import LatencyModel, estimate_model, explain_report, model_sanity


class TestExplainReport:
    def test_explains_full_report(self, old_trace_bare):
        report = estimate_model(old_trace_bare)
        text = explain_report(report)
        assert "Inferred latency model" in text
        assert "beta" in text and "eta" in text
        assert "T_movd" in text
        # Group sizes appear in the prose.
        assert str(report.read.size_steep1) in text

    def test_mentions_fallback_notes(self, old_trace_bare):
        report = estimate_model(old_trace_bare)
        text = explain_report(report)
        for note in report.fallbacks:
            assert note in text


class TestModelSanity:
    def test_reasonable_model_passes(self):
        model = LatencyModel(5.0, 6.0, 20.0, 25.0, 9_000.0)
        assert model_sanity(model) == []

    def test_inferred_models_mostly_sane(self, old_trace_bare):
        report = estimate_model(old_trace_bare)
        warnings = model_sanity(report.model)
        # The mixed-spec trace has good size variety; no warnings expected.
        assert warnings == []

    def test_absurd_slope_flagged(self):
        warnings = model_sanity(LatencyModel(1e-6, 5.0, 20.0, 20.0, 0.0))
        assert any("beta" in w or "read slope" in w for w in warnings)

    def test_extreme_ratio_flagged(self):
        warnings = model_sanity(LatencyModel(100.0, 0.1, 20.0, 20.0, 0.0))
        assert any("ratio" in w for w in warnings)

    def test_huge_channel_delay_flagged(self):
        warnings = model_sanity(LatencyModel(5.0, 5.0, 50_000.0, 20.0, 0.0))
        assert any("channel" in w for w in warnings)

    def test_impossible_movd_flagged(self):
        warnings = model_sanity(LatencyModel(5.0, 5.0, 20.0, 20.0, 5e6))
        assert any("moving delay" in w for w in warnings)
