"""Unit tests for trace filtering, windowing, splitting, and merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import (
    BlockTrace,
    OpType,
    filter_ops,
    filter_sizes,
    lba_range,
    merge_traces,
    split_windows,
    subsample,
    time_window,
)


def sample_trace(n: int = 20) -> BlockTrace:
    ts = np.arange(n) * 1000.0
    return BlockTrace(
        timestamps=ts,
        lbas=np.arange(n) * 100,
        sizes=np.tile([8, 64], n)[:n],
        ops=np.tile([0, 1], n)[:n],
        issues=ts,
        completes=ts + 50.0,
        name="sample",
    )


class TestTimeWindow:
    def test_half_open_interval(self):
        t = sample_trace()
        w = time_window(t, 5000.0, 10_000.0, rebase=False)
        assert list(w.timestamps) == [5000.0, 6000.0, 7000.0, 8000.0, 9000.0]

    def test_rebase(self):
        w = time_window(sample_trace(), 5000.0, 10_000.0)
        assert w.timestamps[0] == 0.0
        assert w.issues is not None and w.issues[0] == 0.0

    def test_empty_window(self):
        assert len(time_window(sample_trace(), 1e9, 2e9)) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            time_window(sample_trace(), 10.0, 5.0)


class TestSplitWindows:
    def test_covers_all_requests(self):
        t = sample_trace()
        windows = split_windows(t, 4000.0)
        assert sum(len(w) for w in windows) == len(t)

    def test_each_window_rebased_and_bounded(self):
        windows = split_windows(sample_trace(), 4000.0)
        for w in windows:
            assert w.timestamps[0] == 0.0
            assert w.duration < 4000.0

    def test_window_count(self):
        # 20 requests at 1ms spacing = 19ms span -> 5 windows of 4ms.
        assert len(split_windows(sample_trace(), 4000.0)) == 5

    def test_empty_trace(self):
        assert split_windows(BlockTrace([], [], [], []), 1000.0) == []

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            split_windows(sample_trace(), 0.0)


class TestLbaRange:
    def test_overlap_semantics(self):
        # Request at lba=100 size=8 covers [100, 108): overlaps range
        # ending at 100 but not one ending at 99.
        t = sample_trace()
        assert 100 in lba_range(t, 0, 100).lbas
        assert 100 not in lba_range(t, 0, 99).lbas

    def test_straddling_request_included(self):
        t = BlockTrace([0.0], [90], [20], [0])  # covers [90, 110)
        assert len(lba_range(t, 100, 200)) == 1

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            lba_range(sample_trace(), 10, 5)


class TestOpSizeFilters:
    def test_filter_ops(self):
        t = sample_trace()
        reads = filter_ops(t, OpType.READ)
        assert (reads.ops == int(OpType.READ)).all()
        writes = filter_ops(t, OpType.WRITE)
        assert len(reads) + len(writes) == len(t)

    def test_filter_sizes(self):
        t = sample_trace()
        small = filter_sizes(t, 1, 8)
        assert (small.sizes == 8).all()
        big = filter_sizes(t, 64)
        assert (big.sizes == 64).all()

    def test_filter_sizes_validation(self):
        with pytest.raises(ValueError):
            filter_sizes(sample_trace(), 0)
        with pytest.raises(ValueError):
            filter_sizes(sample_trace(), 10, 5)


class TestMerge:
    def test_merge_interleaves_by_time(self):
        a = BlockTrace([0.0, 2000.0], [0, 8], [8, 8], [0, 0], name="a")
        b = BlockTrace([1000.0, 3000.0], [100, 108], [8, 8], [1, 1], name="b")
        merged = merge_traces([a, b])
        assert list(merged.timestamps) == [0.0, 1000.0, 2000.0, 3000.0]
        assert list(merged.ops) == [0, 1, 0, 1]
        assert merged.metadata["merged_from"] == ["a", "b"]

    def test_merge_drops_partial_device_columns(self):
        a = sample_trace(4)
        b = BlockTrace([100.0], [0], [8], [0])
        merged = merge_traces([a, b])
        assert not merged.has_device_times

    def test_merge_keeps_full_device_columns(self):
        merged = merge_traces([sample_trace(4), sample_trace(4).shifted(1e6)])
        assert merged.has_device_times

    def test_merge_stable_on_ties(self):
        a = BlockTrace([0.0], [1], [8], [0], name="a")
        b = BlockTrace([0.0], [2], [8], [0], name="b")
        merged = merge_traces([a, b])
        assert list(merged.lbas) == [1, 2]

    def test_merge_empty_list(self):
        with pytest.raises(ValueError):
            merge_traces([])


class TestSubsample:
    def test_fraction_respected(self):
        t = sample_trace(20)
        s = subsample(t, 0.5, seed=1)
        assert len(s) == 10
        assert np.all(np.diff(s.timestamps) >= 0)

    def test_deterministic(self):
        t = sample_trace(20)
        a = subsample(t, 0.3, seed=2)
        b = subsample(t, 0.3, seed=2)
        np.testing.assert_array_equal(a.lbas, b.lbas)

    def test_full_fraction_is_identity(self):
        t = sample_trace(5)
        assert len(subsample(t, 1.0)) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            subsample(sample_trace(), 0.0)
