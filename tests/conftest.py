"""Shared fixtures: small traces, devices, and workload specs.

Fixture sizes are deliberately modest so the whole suite runs in well
under a minute; the benchmark harness exercises full-scale runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import ConstantLatencyDevice, FlashArray, HDDModel, SATA_600
from repro.trace import BlockTrace, OpType
from repro.workloads import (
    IdleProcess,
    SizeMix,
    WorkloadSpec,
    collect_trace,
    generate_intents,
)


@pytest.fixture()
def tiny_trace() -> BlockTrace:
    """Five hand-written requests with known gaps and device stamps."""
    return BlockTrace(
        timestamps=[0.0, 100.0, 250.0, 1250.0, 1300.0],
        lbas=[0, 8, 16, 1000, 1008],
        sizes=[8, 8, 8, 16, 8],
        ops=[int(OpType.READ)] * 3 + [int(OpType.WRITE)] * 2,
        issues=[0.0, 105.0, 255.0, 1255.0, 1310.0],
        completes=[80.0, 185.0, 335.0, 1350.0, 1400.0],
        name="tiny",
    )


@pytest.fixture()
def mixed_spec() -> WorkloadSpec:
    """A compact workload with size variety, idles and async requests."""
    return WorkloadSpec(
        name="mixed",
        category="test",
        n_requests=2_000,
        read_fraction=0.6,
        seq_run_continue=0.45,
        size_mix=SizeMix(sizes=(8, 16, 64, 256), weights=(0.55, 0.25, 0.15, 0.05)),
        idle=IdleProcess(idle_fraction=0.25, idle_median_us=15_000.0, idle_sigma=1.8),
        async_fraction=0.2,
        seed=11,
    )


@pytest.fixture()
def hdd() -> HDDModel:
    """Default decade-old disk model."""
    return HDDModel()

@pytest.fixture()
def flash() -> FlashArray:
    """Default four-SSD all-flash array (the NEW node)."""
    return FlashArray()


@pytest.fixture()
def const_device() -> ConstantLatencyDevice:
    """Deterministic fixed-latency device for replayer arithmetic tests."""
    return ConstantLatencyDevice(SATA_600, read_us=100.0, write_us=200.0)


@pytest.fixture()
def old_trace(mixed_spec: WorkloadSpec, hdd: HDDModel) -> BlockTrace:
    """OLD-node collection of the mixed workload (device stamps kept)."""
    return collect_trace(generate_intents(mixed_spec), hdd, record_device_times=True)


@pytest.fixture()
def old_trace_bare(mixed_spec: WorkloadSpec, hdd: HDDModel) -> BlockTrace:
    """FIU-style OLD trace: no device stamps, inference required."""
    return collect_trace(generate_intents(mixed_spec), hdd, record_device_times=False)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic NumPy generator for ad-hoc sampling in tests."""
    return np.random.default_rng(1234)
