"""Unit tests for the HDD model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import HDDGeometry, HDDModel
from repro.trace import OpType


class TestGeometry:
    def test_rotation_time(self):
        g = HDDGeometry(rpm=7200.0)
        assert g.rotation_us == pytest.approx(60e6 / 7200.0)

    def test_seek_zero_distance_is_free(self):
        assert HDDGeometry().seek_us(0) == 0.0

    def test_seek_monotone_in_distance(self):
        g = HDDGeometry()
        seeks = [g.seek_us(d) for d in (1, 10, 100, 10_000, 100_000)]
        assert all(a < b for a, b in zip(seeks, seeks[1:]))

    def test_average_seek_calibrated(self):
        g = HDDGeometry()
        avg_distance = int(g.cylinders / 3)
        assert g.seek_us(avg_distance) == pytest.approx(g.avg_seek_ms * 1e3, rel=0.01)

    def test_transfer_rate_sane(self):
        g = HDDGeometry()
        # ~100 MB/s media rate for the default geometry.
        mb_per_s = 512 / g.transfer_us_per_sector
        assert 50 < mb_per_s < 200

    def test_validation(self):
        with pytest.raises(ValueError):
            HDDGeometry(rpm=0.0)
        with pytest.raises(ValueError):
            HDDGeometry(avg_seek_ms=0.1, track_to_track_ms=0.8)

    def test_negative_seek_distance_rejected(self):
        with pytest.raises(ValueError):
            HDDGeometry().seek_us(-1)


class TestHDDModel:
    def test_sequential_faster_than_random(self):
        hdd = HDDModel()
        # Establish head position, then access sequentially vs far away.
        c0 = hdd.submit(OpType.READ, 1000, 8, 0.0)
        c_seq = hdd.submit(OpType.READ, 1008, 8, c0.finish + 10.0)
        hdd2 = HDDModel()
        d0 = hdd2.submit(OpType.READ, 1000, 8, 0.0)
        c_rand = hdd2.submit(OpType.READ, 500_000_000, 8, d0.finish + 10.0)
        assert c_seq.device_time < c_rand.device_time

    def test_sequential_is_pure_transfer(self):
        hdd = HDDModel()
        c0 = hdd.submit(OpType.READ, 0, 8, 0.0)
        c1 = hdd.submit(OpType.READ, 8, 8, c0.finish + 5.0)
        assert c1.device_time == pytest.approx(8 * hdd.geometry.transfer_us_per_sector)

    def test_random_latency_in_mechanical_range(self):
        hdd = HDDModel()
        rng = np.random.default_rng(3)
        times = []
        t = 0.0
        for _ in range(200):
            lba = int(rng.integers(0, hdd.geometry.total_sectors - 8))
            c = hdd.submit(OpType.READ, lba, 8, t)
            times.append(c.device_time)
            t = c.finish + 1.0
        mean_ms = np.mean(times) / 1e3
        # Mean random access: seek (~ms) + half rotation (4.2ms) + transfer.
        assert 4.0 < mean_ms < 30.0

    def test_deterministic_given_seed(self):
        def run() -> list[float]:
            hdd = HDDModel(seed=9)
            out = []
            t = 0.0
            for i in range(50):
                c = hdd.submit(OpType.WRITE, (i * 7919) % 10**6, 8, t)
                out.append(c.finish)
                t = c.finish + 1.0
            return out

        assert run() == run()

    def test_reset_restores_cold_state(self):
        hdd = HDDModel(seed=5)
        first = hdd.submit(OpType.READ, 12345, 8, 0.0)
        hdd.reset()
        again = hdd.submit(OpType.READ, 12345, 8, 0.0)
        assert first.finish == pytest.approx(again.finish)

    def test_queueing_behind_busy_spindle(self):
        hdd = HDDModel()
        c0 = hdd.submit(OpType.READ, 10_000_000, 64, 0.0)
        c1 = hdd.submit(OpType.READ, 900_000_000, 64, 0.0)
        assert c1.start >= c0.finish

    def test_write_back_cache_accelerates_writes(self):
        cached = HDDModel(write_back_cache_kb=8192, seed=2)
        plain = HDDModel(write_back_cache_kb=0, seed=2)
        c = cached.submit(OpType.WRITE, 77_000_000, 8, 0.0)
        p = plain.submit(OpType.WRITE, 77_000_000, 8, 0.0)
        assert c.device_time < p.device_time

    def test_expected_movd_in_range(self):
        hdd = HDDModel()
        # Half a rotation is 4.17 ms; seeks add several ms.
        assert 5_000 < hdd.expected_movd_us < 25_000

    def test_expected_service_matches_structure(self):
        hdd = HDDModel()
        seq = hdd.service_time_us(OpType.READ, 8, sequential=True)
        rand = hdd.service_time_us(OpType.READ, 8, sequential=False)
        assert seq == pytest.approx(8 * hdd.geometry.transfer_us_per_sector)
        assert rand == pytest.approx(seq + hdd.expected_movd_us)
