"""Staged pipeline: whole-trace equivalence and chunked streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ReconstructionMetrics,
    StagedReconstructionPipeline,
    TraceTracker,
    TraceTrackerConfig,
)
from repro.storage import ConstantLatencyDevice, FlashArray, SATA_600


def chunked(trace, size):
    for start in range(0, len(trace), size):
        yield trace.select(slice(start, start + size))


class TestWholeTraceEquivalence:
    """The staged pipeline IS the tracker's engine; results must agree."""

    def test_pipeline_matches_tracker(self, old_trace, flash):
        tracker = TraceTracker()
        via_tracker = tracker.reconstruct(old_trace, flash)
        new, extraction, async_indices, metrics = StagedReconstructionPipeline(
            TraceTrackerConfig()
        ).run(old_trace, FlashArray())
        np.testing.assert_array_equal(via_tracker.trace.timestamps, new.timestamps)
        np.testing.assert_array_equal(via_tracker.async_indices, async_indices)
        np.testing.assert_allclose(
            via_tracker.extraction.tidle_us, extraction.tidle_us
        )
        assert via_tracker.metrics == metrics

    def test_metrics_populated(self, old_trace, flash):
        result = TraceTracker().reconstruct(old_trace, flash)
        metrics = result.metrics
        assert isinstance(metrics, ReconstructionMetrics)
        assert metrics.n_requests == len(old_trace)
        assert metrics.old_duration_us == pytest.approx(old_trace.duration)
        assert metrics.new_duration_us == pytest.approx(result.trace.duration)
        assert metrics.n_chunks == 1
        assert metrics.used_measured_tsdev
        assert metrics.speedup > 1.0  # flash replays an HDD trace faster

    def test_postprocess_stage_optional(self, old_trace):
        pipeline = StagedReconstructionPipeline(TraceTrackerConfig(postprocess=False))
        assert pipeline.postprocess is None


class TestStreaming:
    @pytest.mark.parametrize("chunk_size", [50, 333, 5_000])
    def test_stream_preserves_pattern_and_length(self, old_trace, chunk_size):
        device = ConstantLatencyDevice(SATA_600, read_us=80.0, write_us=120.0)
        streamed = TraceTracker().reconstruct_stream(
            chunked(old_trace, chunk_size), device
        )
        assert len(streamed.trace) == len(old_trace)
        np.testing.assert_array_equal(streamed.trace.lbas, old_trace.lbas)
        np.testing.assert_array_equal(streamed.trace.ops, old_trace.ops)
        assert np.all(np.diff(streamed.trace.timestamps) >= 0)

    @pytest.mark.parametrize("chunk_size", [100, 999])
    def test_stream_matches_whole_trace_closely(self, old_trace, chunk_size):
        """Gap-invariant device: chunking changes results only at rounding."""
        tracker = TraceTracker()
        device = ConstantLatencyDevice(SATA_600, read_us=80.0, write_us=120.0)
        whole = tracker.reconstruct(old_trace, device)
        streamed = tracker.reconstruct_stream(chunked(old_trace, chunk_size), device)
        np.testing.assert_allclose(
            streamed.trace.timestamps, whole.trace.timestamps, rtol=1e-9, atol=1e-6
        )
        assert streamed.metrics.n_async_gaps == whole.metrics.n_async_gaps
        assert streamed.metrics.slept_idle_us == pytest.approx(
            whole.metrics.slept_idle_us
        )
        assert streamed.metrics.n_chunks == -(-len(old_trace) // chunk_size)

    def test_stream_on_flash_array(self, old_trace, flash):
        streamed = TraceTracker().reconstruct_stream(chunked(old_trace, 250), flash)
        whole = TraceTracker().reconstruct(old_trace, FlashArray())
        assert len(streamed.trace) == len(whole.trace)
        assert streamed.trace.duration == pytest.approx(whole.trace.duration, rel=0.01)

    def test_single_request_stream(self, old_trace):
        device = ConstantLatencyDevice(SATA_600)
        one = old_trace.select(slice(0, 1))
        streamed = TraceTracker().reconstruct_stream(iter([one]), device)
        assert len(streamed.trace) == 1

    def test_tiny_chunks(self, old_trace):
        device = ConstantLatencyDevice(SATA_600)
        head = old_trace.select(slice(0, 6))
        streamed = TraceTracker().reconstruct_stream(chunked(head, 1), device)
        assert len(streamed.trace) == 6

    def test_empty_chunks_skipped(self, old_trace):
        device = ConstantLatencyDevice(SATA_600)
        head = old_trace.select(slice(0, 10))
        pieces = [
            head.select(slice(0, 0)),
            head.select(slice(0, 5)),
            head.select(slice(5, 5)),
            head.select(slice(5, 10)),
        ]
        streamed = TraceTracker().reconstruct_stream(iter(pieces), device)
        assert len(streamed.trace) == 10

    def test_empty_stream_rejected(self):
        device = ConstantLatencyDevice(SATA_600)
        with pytest.raises(ValueError, match="empty stream"):
            TraceTracker().reconstruct_stream(iter([]), device)


class TestStreamingSession:
    """Incremental session ≡ run_stream, including across a state round-trip."""

    def _device(self):
        return ConstantLatencyDevice(SATA_600, read_us=80.0, write_us=120.0)

    def test_session_matches_run_stream(self, old_trace):
        tracker = TraceTracker()
        oracle = tracker.reconstruct_stream(chunked(old_trace, 64), self._device())
        session = tracker.stream_session(self._device())
        pieces = [
            p for p in (session.feed(c) for c in chunked(old_trace, 64)) if p is not None
        ]
        tail = session.finish()
        if tail is not None:
            pieces.append(tail)
        got = pieces[0].concat_all(pieces)
        np.testing.assert_array_equal(got.timestamps, oracle.trace.timestamps)
        np.testing.assert_array_equal(got.lbas, oracle.trace.lbas)
        assert session.metrics() == oracle.metrics

    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_state_roundtrip_is_bit_identical(self, old_trace, cut):
        """SIGKILL-at-a-chunk-boundary simulated via state_dict/load_state."""
        import json

        tracker = TraceTracker()
        oracle = tracker.reconstruct_stream(chunked(old_trace, 40), self._device())

        first = tracker.stream_session(self._device())
        pieces = []
        chunks = list(chunked(old_trace, 40))
        for chunk in chunks[:cut]:
            piece = first.feed(chunk)
            if piece is not None:
                pieces.append(piece)
        # serialise through JSON exactly like the daemon's checkpoint
        state = json.loads(json.dumps(first.state_dict()))

        second = tracker.stream_session(self._device())  # fresh device: cold replay
        second.load_state(state)
        for chunk in chunks[cut:]:
            piece = second.feed(chunk)
            if piece is not None:
                pieces.append(piece)
        tail = second.finish()
        if tail is not None:
            pieces.append(tail)
        got = pieces[0].concat_all(pieces)
        np.testing.assert_array_equal(got.timestamps, oracle.trace.timestamps)
        np.testing.assert_array_equal(got.issues, oracle.trace.issues)
        assert second.metrics() == oracle.metrics

    def test_failed_feed_leaves_state_retryable(self, old_trace):
        tracker = TraceTracker()
        session = tracker.stream_session(self._device())
        chunks = list(chunked(old_trace, 64))
        session.feed(chunks[0])
        before = session.state_dict()
        bad = chunks[1].shifted(-10**9)  # overlaps the carried boundary
        with pytest.raises(ValueError):
            session.feed(bad)
        assert session.state_dict() == before  # untouched, retryable
        session.feed(chunks[1])  # the good chunk still lands

    def test_single_request_stream_finish(self, tiny_trace):
        tracker = TraceTracker()
        session = tracker.stream_session(self._device())
        assert session.feed(tiny_trace.select(slice(0, 1))) is None
        piece = session.finish()
        assert piece is not None and len(piece) == 1
        assert session.metrics().n_requests == 1

    def test_empty_session_metrics_raises(self):
        session = TraceTracker().stream_session(self._device())
        with pytest.raises(ValueError, match="empty stream"):
            session.metrics()
