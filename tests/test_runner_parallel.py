"""Tests for the ParallelRunner: CLI parsing, caching, parallel parity."""

from __future__ import annotations

import io

import pytest

from repro.experiments.runner import ParallelRunner, default_cache_dir, main, run_all

FAST_SUBSET = {"fig5", "fig9"}


def render(runner: ParallelRunner) -> str:
    out = io.StringIO()
    runner.run(out=out, log=io.StringIO())
    return out.getvalue()


class TestCLI:
    def test_full_flag_set_parses_and_writes(self, tmp_path):
        out = tmp_path / "report.txt"
        code = main(
            [
                "--fast",
                "--only", "fig9",
                "--out", str(out),
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "Figure 9" in out.read_text()
        assert (tmp_path / "cache").exists()  # cache enabled by default

    def test_no_cache_writes_nothing(self, tmp_path):
        out = tmp_path / "report.txt"
        cache = tmp_path / "cache"
        code = main(
            ["--fast", "--only", "fig9", "--out", str(out), "--no-cache", "--cache-dir", str(cache)]
        )
        assert code == 0
        assert not cache.exists()

    def test_unknown_experiment_id_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment ids"):
            ParallelRunner(only={"fig99"})

    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            ParallelRunner(jobs=0)

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"


class TestCache:
    def test_miss_then_hit_identical_report(self, tmp_path):
        cache = tmp_path / "cache"
        first = render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig5"}))
        files = list(cache.glob("*.pkl"))
        assert len(files) == 1
        second = render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig5"}))
        assert first == second

    def test_hit_skips_computation(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig9"}))

        def boom(exp_id, n):
            raise AssertionError("cache hit expected; experiment recomputed")

        monkeypatch.setattr("repro.experiments.runner._compute_experiment", boom)
        log = io.StringIO()
        ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig9"}).run(
            out=io.StringIO(), log=log
        )
        assert "cache hit" in log.getvalue()

    def test_key_includes_n_requests(self, tmp_path):
        cache = tmp_path / "cache"
        render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig9"}))
        render(ParallelRunner(n_requests=700, use_cache=True, cache_dir=cache, only={"fig9"}))
        assert len(list(cache.glob("*.pkl"))) == 2

    def test_corrupt_cache_recomputes(self, tmp_path):
        cache = tmp_path / "cache"
        baseline = render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig9"}))
        for path in cache.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        again = render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig9"}))
        assert again == baseline

    def test_disabled_cache_reads_nothing(self, tmp_path):
        cache = tmp_path / "cache"
        render(ParallelRunner(n_requests=600, use_cache=True, cache_dir=cache, only={"fig9"}))
        runner = ParallelRunner(n_requests=600, use_cache=False, cache_dir=cache, only={"fig9"})
        assert runner._cache_load("fig9") is None


class TestTraceStore:
    def test_second_run_loads_from_store(self, tmp_path):
        """Catalog traces are materialised once, then memory-mapped back."""
        store_dir = tmp_path / "traces"

        def run() -> tuple[str, str]:
            out, log = io.StringIO(), io.StringIO()
            ParallelRunner(
                n_requests=600,
                only={"fig16"},
                use_cache=False,
                use_trace_store=True,
                trace_store_dir=store_dir,
            ).run(out=out, log=log)
            return out.getvalue(), log.getvalue()

        first_report, first_log = run()
        second_report, second_log = run()
        assert first_report == second_report
        assert "misses=" in first_log and "hits=0" in first_log
        assert "hits=0" not in second_log and "misses=0" in second_log
        assert list(store_dir.glob("*.npz"))

    def test_parallel_workers_report_store_stats(self, tmp_path):
        """hit/miss counters from worker processes reach the parent's log."""
        import re

        store_dir = tmp_path / "traces"

        def run() -> tuple[int, int]:
            log = io.StringIO()
            ParallelRunner(
                n_requests=600,
                only={"fig5", "fig16"},
                jobs=2,
                use_cache=False,
                use_trace_store=True,
                trace_store_dir=store_dir,
            ).run(out=io.StringIO(), log=log)
            match = re.search(r"hits=(\d+) misses=(\d+)", log.getvalue())
            assert match is not None
            return int(match.group(1)), int(match.group(2))

        _, first_misses = run()
        second_hits, second_misses = run()
        assert first_misses > 0
        assert second_hits > 0 and second_misses == 0

    def test_store_off_matches_store_on(self, tmp_path):
        plain, stored = io.StringIO(), io.StringIO()
        ParallelRunner(n_requests=600, only={"fig16"}, use_cache=False).run(
            out=plain, log=io.StringIO()
        )
        ParallelRunner(
            n_requests=600,
            only={"fig16"},
            use_cache=False,
            use_trace_store=True,
            trace_store_dir=tmp_path / "traces",
        ).run(out=stored, log=io.StringIO())
        assert plain.getvalue() == stored.getvalue()

    def test_cli_flags(self, tmp_path):
        out = tmp_path / "report.txt"
        code = main(
            [
                "--fast",
                "--only", "fig16",
                "--out", str(out),
                "--no-cache",
                "--trace-store-dir", str(tmp_path / "traces"),
            ]
        )
        assert code == 0
        assert list((tmp_path / "traces").glob("*.npz"))
        code = main(
            [
                "--fast",
                "--only", "fig16",
                "--out", str(out),
                "--no-cache",
                "--no-trace-store",
                "--trace-store-dir", str(tmp_path / "empty"),
            ]
        )
        assert code == 0
        assert not (tmp_path / "empty").exists()


class TestParallelParity:
    def test_parallel_report_matches_sequential(self):
        sequential = render(ParallelRunner(n_requests=600, only=FAST_SUBSET, jobs=1))
        parallel = render(ParallelRunner(n_requests=600, only=FAST_SUBSET, jobs=2))
        assert sequential == parallel
        # Canonical ordering: fig5 renders before fig9 in both.
        assert sequential.index("Figure 5") < sequential.index("Figure 9")

    def test_cached_report_matches_uncached(self, tmp_path):
        uncached = render(ParallelRunner(n_requests=600, only={"fig5"}, use_cache=False))
        cache = tmp_path / "cache"
        render(ParallelRunner(n_requests=600, only={"fig5"}, use_cache=True, cache_dir=cache))
        cached = render(ParallelRunner(n_requests=600, only={"fig5"}, use_cache=True, cache_dir=cache))
        assert cached == uncached

    def test_run_all_wrapper(self):
        buffer = io.StringIO()
        run_all(n_requests=600, out=buffer, only={"fig9"})
        text = buffer.getvalue()
        assert "Figure 9" in text and "pchip" in text
