"""Campaign layer: specs, device registry, planning, results, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignEngine,
    CampaignSpec,
    DeviceSpec,
    ResultsTable,
    build_device,
    expand,
    load_spec,
    loads_spec,
    run_campaign,
    run_key,
)
from repro.campaign.cli import main as cli_main
from repro.experiments.nodes import calibration_disk, new_node, old_node


# ----------------------------------------------------------------------
# Spec loading
# ----------------------------------------------------------------------


class TestSpecLoading:
    def test_json_round_trip(self):
        spec = CampaignSpec(
            name="rt",
            action="idle",
            workloads=("MSNFS", "ikki"),
            devices=(DeviceSpec("d", "hdd", {"rpm": 10000.0}),),
            methods=("tracetracker",),
            n_requests=(500, 1000),
            options={"min_idle_us": 100.0},
            exclude=({"workload": "ikki", "n_requests": 500},),
        )
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_loads_json_text(self):
        spec = loads_spec(json.dumps({"name": "j", "workloads": ["MSNFS"]}))
        assert spec.name == "j"
        assert spec.devices[0].kind == "new-node"

    def test_loads_yaml_text(self):
        pytest.importorskip("yaml")
        spec = loads_spec("name: y\nworkloads: [MSNFS]\ndevices: [old-node]\n")
        assert spec.devices[0].name == "old-node"

    def test_load_file(self, tmp_path: Path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "f", "n_requests": 300}))
        assert load_spec(path).n_requests == (300,)

    def test_scalar_fields_promote_to_axes(self):
        spec = CampaignSpec.from_dict(
            {"name": "s", "workloads": "MSNFS", "methods": "revision", "n_requests": 400}
        )
        assert spec.workloads == ("MSNFS",)
        assert spec.methods == ("revision",)
        assert spec.n_requests == (400,)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec field"):
            CampaignSpec.from_dict({"name": "x", "wrokloads": ["MSNFS"]})

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            CampaignSpec(name="x", action="destroy")

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            CampaignSpec.from_dict(
                {"name": "x", "devices": [{"name": "d", "kind": "hdd"}, {"name": "d", "kind": "flash"}]}
            )


# ----------------------------------------------------------------------
# Device registry
# ----------------------------------------------------------------------


class TestDeviceRegistry:
    def test_presets_match_evaluation_nodes(self):
        # Fingerprint equality == identical traces and shared store keys.
        assert build_device("old-node").fingerprint() == old_node().fingerprint()
        assert build_device("new-node").fingerprint() == new_node().fingerprint()
        assert (
            build_device("calibration-disk").fingerprint()
            == calibration_disk().fingerprint()
        )

    def test_kinds_build(self):
        assert build_device("hdd", {"rpm": 10000.0}).geometry.rpm == 10000.0
        assert build_device("flash_array", {"n_ssds": 2}).n_ssds == 2
        raid = build_device("raid0", {"n": 3, "member": {"kind": "hdd"}})
        assert len(raid.members) == 3
        # Distinct member seeds -> distinct fingerprints.
        assert len({m.fingerprint() for m in raid.members}) == 3

    def test_unknown_kind_and_param_rejected(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            build_device("quantum-drive")
        with pytest.raises(ValueError, match="unknown parameter"):
            build_device("hdd", {"rpmm": 7200})

    def test_preset_with_overrides(self):
        device = build_device("old-node", {"rpm": 15000.0})
        assert device.geometry.rpm == 15000.0

    def test_raid0_preset_members_get_distinct_seeds(self):
        # A preset member kind must still receive per-spindle seeds.
        raid = build_device("raid0", {"n": 3, "member": {"kind": "old-node"}})
        assert len({m.fingerprint() for m in raid.members}) == 3


# ----------------------------------------------------------------------
# Plan expansion
# ----------------------------------------------------------------------


def _grid_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="grid",
        action="reconstruct",
        workloads=("MSNFS", "ikki"),
        devices=(DeviceSpec("a", "new-node"), DeviceSpec("b", "old-node")),
        methods=("tracetracker", "revision"),
        n_requests=(300,),
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestPlan:
    def test_cross_product_order(self):
        plan = expand(_grid_spec())
        assert len(plan) == 2 * 2 * 2
        # Workloads outermost, then devices, then methods.
        assert [p.workload for p in plan.points[:4]] == ["MSNFS"] * 4
        assert [p.device.name for p in plan.points[:4]] == ["a", "a", "b", "b"]

    def test_selectors(self):
        plan = expand(_grid_spec(workloads=("family:MSPS",)))
        assert len(plan) == 8 * 2 * 2
        all_plan = expand(_grid_spec(workloads=("all",), methods=("revision",)))
        assert len(all_plan) == 31 * 2
        with pytest.raises(KeyError):
            expand(_grid_spec(workloads=("nope",)))

    def test_exclude_and_limit(self):
        plan = expand(_grid_spec(exclude=({"workload": "ikki", "device": "b"},)))
        assert len(plan) == 8 - 2
        assert not any(
            p.workload == "ikki" and p.device.name == "b" for p in plan.points
        )
        assert len(expand(_grid_spec(limit=3))) == 3

    def test_run_keys_stable_and_content_sensitive(self):
        spec = _grid_spec()
        keys = expand(spec).keys()
        assert keys == expand(spec).keys()
        assert len(set(keys)) == len(keys)
        # Campaign name does not change keys (resume across renames)...
        renamed = _grid_spec(name="other")
        assert expand(renamed).keys() == keys
        # ...but device parameters and options do.
        retuned = _grid_spec(devices=(DeviceSpec("a", "hdd", {"rpm": 9999.0}), DeviceSpec("b", "old-node")))
        assert expand(retuned).keys() != keys
        opted = _grid_spec(options={"device_times": False})
        assert expand(opted).keys() != keys

    def test_shards_cover_all_points(self):
        plan = expand(_grid_spec())
        shards = plan.shards(3)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(len(plan)))

    def test_empty_expansion_rejected(self):
        with pytest.raises(ValueError, match="zero grid points"):
            expand(_grid_spec(exclude=({"workload": "MSNFS"}, {"workload": "ikki"})))


# ----------------------------------------------------------------------
# Results table
# ----------------------------------------------------------------------


class TestResultsTable:
    ROWS = [
        {"workload": "a", "n": 1, "value": 1.5, "flag": True},
        {"workload": "b", "n": 2, "value": 2.5, "flag": False},
        {"workload": "c", "n": 3, "value": float("inf"), "extra": [1, 2]},
    ]

    def test_from_rows_and_back(self):
        table = ResultsTable.from_rows(self.ROWS)
        assert len(table) == 3
        assert table.rows()[0]["workload"] == "a"
        assert table.rows()[0]["extra"] is None  # ragged key filled with None
        assert table.column("n") == [1, 2, 3]

    def test_npz_round_trip(self, tmp_path: Path):
        table = ResultsTable.from_rows(self.ROWS)
        path = tmp_path / "t.npz"
        table.save_npz(path)
        assert ResultsTable.load_npz(path) == table

    def test_select(self):
        table = ResultsTable.from_rows(self.ROWS)
        assert table.select(workload="b").column("value") == [2.5]

    def test_renderings(self, tmp_path: Path):
        table = ResultsTable.from_rows(self.ROWS)
        md = table.to_markdown()
        assert md.count("\n") == 4 and "| workload |" in md
        csv_text = table.to_csv(tmp_path / "t.csv")
        assert (tmp_path / "t.csv").read_text() == csv_text
        assert csv_text.splitlines()[0] == "workload,n,value,flag,extra"

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            ResultsTable({"a": [1], "b": [1, 2]})


# ----------------------------------------------------------------------
# Engine + CLI (tiny grids)
# ----------------------------------------------------------------------


def _tiny_spec() -> CampaignSpec:
    return CampaignSpec(
        name="tiny",
        action="reconstruct",
        workloads=("MSNFS",),
        devices=(DeviceSpec("new", "new-node"),),
        methods=("revision",),
        n_requests=(200,),
    )


class TestEngine:
    def test_in_process_run(self):
        table = run_campaign(_tiny_spec())
        assert len(table) == 1
        row = table.rows()[0]
        assert row["method_name"] == "revision"
        assert row["new_duration_us"] > 0

    def test_outputs_written(self, tmp_path: Path):
        out = tmp_path / "camp"
        result = CampaignEngine(_tiny_spec(), out_dir=out).run()
        assert result.n_computed == 1 and result.n_resumed == 0
        for name in ("results.npz", "results.csv", "report.md", "spec.json"):
            assert (out / name).exists(), name
        assert ResultsTable.load_npz(out / "results.npz") == result.table
        report = (out / "report.md").read_text()
        assert "Campaign report: tiny" in report and "| workload |" in report

    def test_corrupt_checkpoint_recomputed(self, tmp_path: Path):
        out = tmp_path / "camp"
        spec = _tiny_spec()
        CampaignEngine(spec, out_dir=out, checkpoint_format="json").run()
        key = expand(spec).keys()[0]
        (out / "runs" / f"{key}.json").write_text("{not json")
        result = CampaignEngine(spec, out_dir=out, checkpoint_format="json").run()
        assert result.n_computed == 1

    def test_torn_segment_line_recomputed(self, tmp_path: Path):
        """A crash mid-append leaves a torn line; that point recomputes."""
        out = tmp_path / "camp"
        spec = _tiny_spec()
        CampaignEngine(spec, out_dir=out).run()
        (segment,) = (out / "runs").glob("segment-*.jsonl")
        text = segment.read_text()
        segment.write_text(text[: len(text) // 2])  # tear the line
        result = CampaignEngine(spec, out_dir=out).run()
        assert result.n_computed == 1 and result.n_resumed == 0

    def test_trace_store_round_trip(self, tmp_path: Path):
        """A store-backed run materialises traces and reproduces exactly."""
        store = tmp_path / "store"
        cold = CampaignEngine(
            _tiny_spec(), out_dir=tmp_path / "a",
            use_trace_store=True, trace_store_dir=store,
        ).run()
        assert list(store.glob("*.npz"))  # traces landed in the store
        warm = CampaignEngine(
            _tiny_spec(), out_dir=tmp_path / "b",
            use_trace_store=True, trace_store_dir=store,
        ).run()
        assert warm.table == cold.table
        bare = CampaignEngine(_tiny_spec(), out_dir=tmp_path / "c").run()
        assert bare.table == cold.table  # store hits reproduce misses

    def test_jobs_sharding_matches_inline(self, tmp_path: Path):
        spec = CampaignSpec(
            name="shards",
            action="reconstruct",
            workloads=("MSNFS", "ikki", "CFS"),
            devices=(DeviceSpec("new", "new-node"),),
            methods=("revision",),
            n_requests=(200,),
        )
        inline = CampaignEngine(spec, out_dir=tmp_path / "a", jobs=1).run()
        sharded = CampaignEngine(spec, out_dir=tmp_path / "b", jobs=3).run()
        assert inline.table == sharded.table


class TestCli:
    def _write_spec(self, tmp_path: Path) -> Path:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(_tiny_spec().to_dict()))
        return path

    def test_plan_run_report(self, tmp_path: Path, capsys):
        spec_path = self._write_spec(tmp_path)
        out = tmp_path / "out"
        store = tmp_path / "store"  # keep test disk traffic out of ~/.cache
        run_args = ["--out-dir", str(out), "--trace-store-dir", str(store), "--quiet"]
        assert cli_main(["plan", str(spec_path)]) == 0
        assert "1 point(s)" in capsys.readouterr().out
        assert cli_main(["run", str(spec_path), *run_args]) == 0
        assert "0 resumed, 1 computed" in capsys.readouterr().out
        assert cli_main(["run", str(spec_path), *run_args]) == 0
        assert "1 resumed, 0 computed" in capsys.readouterr().out
        assert cli_main(["report", str(out)]) == 0
        assert "| workload |" in capsys.readouterr().out

    def test_report_on_partial_campaign(self, tmp_path: Path, capsys):
        """An interrupted campaign's checkpoints are reportable."""
        spec_path = self._write_spec(tmp_path)
        out = tmp_path / "out"
        assert cli_main(
            ["run", str(spec_path), "--out-dir", str(out), "--no-trace-store", "--quiet"]
        ) == 0
        capsys.readouterr()
        # Simulate the interruption: aggregate gone, checkpoints intact.
        (out / "results.npz").unlink()
        assert cli_main(["report", str(out)]) == 0
        captured = capsys.readouterr()
        assert "| workload |" in captured.out
        assert "partial campaign: 1/1" in captured.err

    def test_bad_inputs(self, tmp_path: Path, capsys):
        missing = tmp_path / "nope.yaml"
        assert cli_main(["run", str(missing)]) == 2
        assert cli_main(["report", str(tmp_path)]) == 1
        capsys.readouterr()


class TestCliResilience:
    """Run flags from ISSUE 9: --chaos, quarantine reporting, corrupt
    aggregate recovery in ``report``."""

    def _write_spec(self, tmp_path: Path, n_points: int = 3) -> Path:
        spec = CampaignSpec(
            name="cli-chaos",
            action="synthetic",
            workloads=("MSNFS",),
            devices=(DeviceSpec("new", "new-node"),),
            methods=("revision",),
            n_requests=tuple(range(100, 100 + n_points)),
            options={"iters_per_request": 3},
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path

    def test_chaos_forces_supervised_and_recovers(self, tmp_path: Path, capsys):
        spec_path = self._write_spec(tmp_path)
        out = tmp_path / "out"
        assert cli_main(
            ["run", str(spec_path), "--out-dir", str(out), "--no-trace-store",
             "--quiet", "--jobs", "2", "--chaos", "exc@1", "--retries", "3"]
        ) == 0
        captured = capsys.readouterr()
        assert "[campaign] --chaos forces --scheduler supervised" in captured.err
        assert "3 point(s) (0 resumed, 3 computed)" in captured.out
        assert "quarantined" not in captured.out  # exc is transient: retried

    def test_poison_quarantine_reported(self, tmp_path: Path, capsys):
        spec_path = self._write_spec(tmp_path)
        out = tmp_path / "out"
        assert cli_main(
            ["run", str(spec_path), "--out-dir", str(out), "--no-trace-store",
             "--quiet", "--chaos", "poison@1", "--retries", "2"]
        ) == 0
        captured = capsys.readouterr()
        # The grepped summary line stays first and intact ...
        assert "3 point(s) (0 resumed, 3 computed)" in captured.out
        # ... and the quarantine note follows it.
        assert "quarantined: 1 point(s)" in captured.out

    def test_report_rebuilds_from_corrupt_aggregate(self, tmp_path: Path, capsys):
        spec_path = self._write_spec(tmp_path)
        out = tmp_path / "out"
        assert cli_main(
            ["run", str(spec_path), "--out-dir", str(out), "--no-trace-store", "--quiet"]
        ) == 0
        capsys.readouterr()
        npz = out / "results.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        assert cli_main(["report", str(out)]) == 0
        captured = capsys.readouterr()
        assert "rebuilding from checkpoints" in captured.err
        assert (out / "results.npz.bad").exists()
        assert "| workload |" in captured.out
