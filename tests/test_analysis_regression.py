"""Unit tests for line fits and outlier margins (Algorithm 1 steps 2-3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    LineFit,
    find_outliers,
    least_squares_fit,
    outlier_margin,
    paper_line_fit,
)


class TestPaperLineFit:
    def test_slope_is_std_ratio(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([0.0, 2.0, 4.0, 6.0])
        fit = paper_line_fit(x, y)
        assert fit.slope == pytest.approx(np.std(y) / np.std(x))
        # Passes through the means.
        assert fit(np.mean(x)) == pytest.approx(np.mean(y))

    def test_perfectly_linear_data_recovered(self):
        x = np.linspace(0, 10, 50)
        y = 3.0 * x + 1.0
        fit = paper_line_fit(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)

    def test_slope_always_non_negative(self):
        # std ratio is non-negative even for anti-correlated data — the
        # documented deviation from OLS.
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([2.0, 1.0, 0.0])
        assert paper_line_fit(x, y).slope >= 0.0

    def test_constant_x_gives_horizontal_line(self):
        fit = paper_line_fit(np.array([5.0, 5.0]), np.array([1.0, 3.0]))
        assert fit.slope == 0.0
        assert fit.intercept == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paper_line_fit(np.array([]), np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paper_line_fit(np.array([1.0]), np.array([1.0, 2.0]))


class TestLeastSquaresFit:
    def test_matches_polyfit(self, rng):
        x = rng.uniform(0, 10, 100)
        y = 2.5 * x - 4.0 + rng.normal(0, 0.1, 100)
        fit = least_squares_fit(x, y)
        expected = np.polyfit(x, y, 1)
        assert fit.slope == pytest.approx(expected[0], rel=1e-6)
        assert fit.intercept == pytest.approx(expected[1], rel=1e-4)

    def test_handles_negative_slope(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([2.0, 1.0, 0.0])
        assert least_squares_fit(x, y).slope == pytest.approx(-1.0)


class TestOutliers:
    def test_margin_is_half_variance_by_default(self):
        y = np.array([0.1, 0.2, 0.3, 0.4])
        assert outlier_margin(y) == pytest.approx(np.var(y) / 2)

    def test_margin_factor(self):
        y = np.array([0.1, 0.5])
        assert outlier_margin(y, factor=1.0) == pytest.approx(np.var(y))

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            outlier_margin(np.array([1.0]), factor=-1.0)

    def test_find_outliers_flags_upward_spikes_only(self):
        x = np.arange(10, dtype=float)
        y = np.full(10, 0.1)
        y[4] = 0.9   # upward spike
        y[7] = -0.7  # downward spike (must not count)
        fit = LineFit(slope=0.0, intercept=0.1)
        out = find_outliers(x, y, fit, margin=0.2)
        assert list(out) == [4]

    def test_no_outliers_when_margin_large(self):
        x = np.arange(5, dtype=float)
        y = np.array([0.1, 0.2, 0.1, 0.2, 0.1])
        fit = paper_line_fit(x, y)
        assert find_outliers(x, y, fit, margin=10.0).size == 0

    def test_residuals(self):
        fit = LineFit(slope=1.0, intercept=0.0)
        res = fit.residuals(np.array([1.0, 2.0]), np.array([2.0, 2.0]))
        np.testing.assert_allclose(res, [1.0, 0.0])
