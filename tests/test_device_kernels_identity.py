"""Bit-identity suite for the columnar device-model kernels.

Every columnar kernel introduced by the storage-emulation overhaul must
reproduce its retained scalar oracle *exactly* — same IEEE-754 doubles,
same simulator state afterwards:

- the wave kernels (:func:`repro.storage.kernels.read_wave_kernel` /
  ``program_wave_kernel``) against the scalar per-page walks
  ``FlashSSD._read_pages`` / ``_program_pages``;
- the memoised busy walks (``FlashSSD._busy_read`` / ``_busy_program``,
  including the exception/slice split) against the same oracles;
- the grouped ``_service_batch`` kernels (flash and array) against the
  retained per-request loops;
- the RAID member-stream decomposition against the scalar builders;
- the plan-based queue-depth event loop against the scalar replay
  oracle, including *simulator-state equivalence* (die/channel busy
  stamps, write-buffer occupancy, horizons, RNG state where present)
  and mixed batch/scalar use.

CI runs this file twice: once with the columnar engines enabled and
once with ``REPRO_SCALAR_KERNELS=1`` forcing the scalar paths, so the
oracles cannot rot (see ``_forced_scalar`` below — when the engines are
forced off the identity assertions compare the oracle with itself,
which still exercises the toggle plumbing and the scalar paths).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.replay import replay_queue_depth, replay_queue_depth_scalar
from repro.storage import FlashArray, FlashGeometry, FlashSSD, HDDModel, Raid0, Raid1
from repro.storage import kernels
from repro.storage.kernels import (
    COLUMNAR_MIN_PAGES,
    group_shapes,
    page_span,
    program_wave_kernel,
    read_wave_kernel,
)
from repro.trace.record import OpType
from repro.trace.trace import BlockTrace
from test_replay_batch import DEVICE_FACTORIES, assert_replays_identical

#: Geometries covering the default device, a tiny array-shaped layout,
#: single-plane dies, and a buffer-less configuration.
GEOMETRIES = {
    "default": FlashGeometry(),
    "tiny": FlashGeometry(channels=3, dies_per_channel=2, planes_per_die=2, page_kb=4),
    "single-plane": FlashGeometry(channels=4, dies_per_channel=1, planes_per_die=1),
    "no-buffer": FlashGeometry(write_buffer_kb=0),
    "wide-planes": FlashGeometry(channels=2, dies_per_channel=3, planes_per_die=4),
}


def _random_state(rng, ssd):
    """Random busy stamps: a mix of idle, mildly busy, and far-future."""
    g = ssd.geometry
    die = rng.uniform(0.0, 3000.0, g.total_dies)
    die[rng.random(g.total_dies) < 0.4] = 0.0
    chan = rng.uniform(0.0, 2000.0, g.channels)
    chan[rng.random(g.channels) < 0.4] = 0.0
    ssd._die_busy = die.tolist()
    ssd._chan_busy = chan.tolist()


def _clone_state(ssd):
    return list(ssd._die_busy), list(ssd._chan_busy)


class TestWaveKernels:
    """Wave kernels vs the scalar page walks, all sizes and states."""

    @pytest.mark.parametrize("geom_key", sorted(GEOMETRIES))
    @pytest.mark.parametrize("interleave", [True, False])
    def test_read_wave_bit_identical(self, geom_key, interleave):
        g = GEOMETRIES[geom_key]
        ssd = FlashSSD(geometry=g, plane_interleave=interleave)
        rng = np.random.default_rng(7)
        td = g.total_dies
        for n_pages in [1, 2, g.channels - 1, g.channels, g.channels + 1,
                        td - 1, td, td + 1, 2 * td, 3 * td + 5]:
            if n_pages < 1:
                continue
            for first_page in [0, 1, td - 1, 7 * td + 3]:
                for t_ready in [0.0, 123.456]:
                    _random_state(rng, ssd)
                    d0, c0 = _clone_state(ssd)
                    oracle = ssd._read_pages(range(first_page, first_page + n_pages), t_ready)
                    d1, c1 = _clone_state(ssd)
                    ssd._die_busy, ssd._chan_busy = list(d0), list(c0)
                    got = read_wave_kernel(
                        first_page, n_pages, t_ready, ssd._die_busy, ssd._chan_busy,
                        g.channels, td, g.read_us, g.page_transfer_us,
                        g.planes_per_die, interleave,
                    )
                    assert got == oracle
                    assert ssd._die_busy == d1
                    assert ssd._chan_busy == c1

    @pytest.mark.parametrize("geom_key", sorted(GEOMETRIES))
    @pytest.mark.parametrize("interleave", [True, False])
    def test_program_wave_bit_identical(self, geom_key, interleave):
        g = GEOMETRIES[geom_key]
        ssd = FlashSSD(geometry=g, plane_interleave=interleave)
        rng = np.random.default_rng(11)
        td = g.total_dies
        for n_pages in [1, 3, g.channels, g.channels + 2, td, td + 1, 2 * td + 3]:
            for first_page in [0, td - 2, 5 * td + 1]:
                if first_page < 0:
                    continue
                for t_ready in [0.0, 987.25]:
                    _random_state(rng, ssd)
                    d0, c0 = _clone_state(ssd)
                    oracle = ssd._program_pages(
                        range(first_page, first_page + n_pages), t_ready
                    )
                    d1, c1 = _clone_state(ssd)
                    ssd._die_busy, ssd._chan_busy = list(d0), list(c0)
                    got = program_wave_kernel(
                        first_page, n_pages, t_ready, ssd._die_busy, ssd._chan_busy,
                        g.channels, td, g.program_us, g.page_transfer_us,
                        g.planes_per_die, interleave,
                    )
                    assert got == oracle
                    assert ssd._die_busy == d1
                    assert ssd._chan_busy == c1


class TestBusyWalks:
    """Memoised busy walks (exception/slice split + wave dispatch)."""

    @pytest.mark.parametrize("geom_key", sorted(GEOMETRIES))
    def test_busy_read_matches_oracle(self, geom_key):
        g = GEOMETRIES[geom_key]
        ssd = FlashSSD(geometry=g)
        rng = np.random.default_rng(23)
        ps = g.page_sectors
        for n_pages in [1, 2, g.channels, g.channels + 1, COLUMNAR_MIN_PAGES + 3]:
            for lba_page in [0, 3, g.total_dies + 1]:
                lba = lba_page * ps
                size = n_pages * ps
                entry = ssd._rel_entry(OpType.READ, lba // ps, n_pages, size)
                for t_ready in [0.0, 500.5]:
                    _random_state(rng, ssd)
                    d0, c0 = _clone_state(ssd)
                    oracle = ssd._read_pages(ssd._pages_of(lba, size), t_ready)
                    d1, c1 = _clone_state(ssd)
                    ssd._die_busy, ssd._chan_busy = list(d0), list(c0)
                    got = ssd._busy_read(entry, t_ready)
                    assert got == oracle
                    assert ssd._die_busy == d1
                    assert ssd._chan_busy == c1

    @pytest.mark.parametrize("geom_key", sorted(GEOMETRIES))
    def test_busy_program_matches_oracle(self, geom_key):
        g = GEOMETRIES[geom_key]
        ssd = FlashSSD(geometry=g)
        rng = np.random.default_rng(29)
        ps = g.page_sectors
        for n_pages in [1, 2, g.channels, g.channels + 2, COLUMNAR_MIN_PAGES + 1]:
            for lba_page in [0, 5]:
                lba = lba_page * ps
                size = n_pages * ps
                entry = ssd._rel_entry(OpType.WRITE, lba // ps, n_pages, size)
                for t_ready in [0.0, 77.125]:
                    _random_state(rng, ssd)
                    d0, c0 = _clone_state(ssd)
                    oracle = ssd._program_pages(ssd._pages_of(lba, size), t_ready)
                    d1, c1 = _clone_state(ssd)
                    ssd._die_busy, ssd._chan_busy = list(d0), list(c0)
                    got = ssd._busy_program(entry, t_ready)
                    assert got == oracle
                    assert ssd._die_busy == d1
                    assert ssd._chan_busy == c1


class TestMultiPlaneInterleave:
    """Satellite: ``_page_op_us`` edge cases, scalar vs columnar."""

    def test_planes_per_die_one_no_speedup(self):
        g = FlashGeometry(channels=2, dies_per_channel=2, planes_per_die=1)
        ssd = FlashSSD(geometry=g)
        # Page count above the die count forces multi-visit waves.
        assert ssd._page_op_us(g.read_us, 3) == g.read_us
        self._assert_kernels_match(g, plane_interleave=True)

    def test_interleave_disabled(self):
        self._assert_kernels_match(FlashGeometry(), plane_interleave=False)

    @pytest.mark.parametrize("n_pages_per_die", [1, 2, 3, 5])
    def test_page_count_around_plane_count(self, n_pages_per_die):
        # planes_per_die = 2: covers below (1), at (2), above (3, 5).
        g = FlashGeometry(channels=2, dies_per_channel=1, planes_per_die=2)
        ssd = FlashSSD(geometry=g)
        n_pages = n_pages_per_die * g.total_dies
        oracle = ssd._read_pages(range(0, n_pages), 0.0)
        d1, c1 = list(ssd._die_busy), list(ssd._chan_busy)
        ssd.reset()
        got = read_wave_kernel(
            0, n_pages, 0.0, ssd._die_busy, ssd._chan_busy,
            g.channels, g.total_dies, g.read_us, g.page_transfer_us,
            g.planes_per_die, True,
        )
        assert got == oracle
        assert ssd._die_busy == d1 and ssd._chan_busy == c1

    @staticmethod
    def _assert_kernels_match(g, plane_interleave):
        ssd = FlashSSD(geometry=g, plane_interleave=plane_interleave)
        for n_pages in [1, g.planes_per_die, g.planes_per_die + 1, 2 * g.total_dies]:
            ssd.reset()
            oracle = ssd._program_pages(range(3, 3 + n_pages), 10.0)
            d1, c1 = list(ssd._die_busy), list(ssd._chan_busy)
            ssd.reset()
            got = program_wave_kernel(
                3, n_pages, 10.0, ssd._die_busy, ssd._chan_busy,
                g.channels, g.total_dies, g.program_us, g.page_transfer_us,
                g.planes_per_die, plane_interleave,
            )
            assert got == oracle
            assert ssd._die_busy == d1 and ssd._chan_busy == c1


def _random_stream(rng, n, max_lba=1 << 22, max_size=600):
    return (
        rng.integers(0, 2, n).astype(np.int8),
        rng.integers(0, max_lba, n),
        rng.integers(1, max_size, n),
    )


class TestGroupedServiceBatch:
    """Grouped unique-shape kernels vs the retained per-request loops."""

    @pytest.mark.parametrize("geom_key", sorted(GEOMETRIES))
    def test_flash_service_batch_identical(self, geom_key):
        g = GEOMETRIES[geom_key]
        rng = np.random.default_rng(31)
        ops, lbas, sizes = _random_stream(rng, 300)
        ssd = FlashSSD(geometry=g)
        d0, c0 = _clone_state(ssd)
        scalar = ssd._service_batch_scalar(ops, lbas, sizes)
        columnar = ssd._service_batch_columnar(ops, lbas, sizes)
        np.testing.assert_array_equal(scalar, columnar)
        # Both paths are pure w.r.t. timing state.
        assert ssd._die_busy == d0 and ssd._chan_busy == c0

    def test_array_service_batch_identical(self):
        rng = np.random.default_rng(37)
        ops, lbas, sizes = _random_stream(rng, 300)
        arr = FlashArray()
        scalar = arr._service_batch_scalar(ops, lbas, sizes)
        columnar = arr._service_batch_columnar(ops, lbas, sizes)
        np.testing.assert_array_equal(scalar, columnar)

    def test_array_service_batch_wide_extents(self):
        # Extents spanning many stripes (fragment count above n_ssds).
        arr = FlashArray(n_ssds=3, stripe_kb=8)
        ops = np.zeros(40, dtype=np.int8)
        lbas = np.arange(40, dtype=np.int64) * 13
        sizes = np.full(40, 8 * 2 * 7, dtype=np.int64)  # 7 stripes each
        np.testing.assert_array_equal(
            arr._service_batch_scalar(ops, lbas, sizes),
            arr._service_batch_columnar(ops, lbas, sizes),
        )

    def test_group_shapes_roundtrip(self):
        rng = np.random.default_rng(41)
        ops = rng.integers(0, 2, 500)
        slots = rng.integers(0, 36, 500)
        n_pages = rng.integers(1, 40, 500)
        sizes = rng.integers(1, 1 << 40, 500)  # forces the row-unique fallback
        uniq, inverse = group_shapes(ops, slots, n_pages, sizes)
        rebuilt = uniq[inverse]
        np.testing.assert_array_equal(rebuilt[:, 0], ops)
        np.testing.assert_array_equal(rebuilt[:, 1], slots)
        np.testing.assert_array_equal(rebuilt[:, 2], n_pages)
        np.testing.assert_array_equal(rebuilt[:, 3], sizes)

    def test_page_span_matches_pages_of(self):
        ssd = FlashSSD()
        ps = ssd.geometry.page_sectors
        for lba, size in [(0, 1), (ps - 1, 1), (ps - 1, 2), (123456, 999)]:
            first, n_pages = page_span(lba, size, ps)
            pages = ssd._pages_of(lba, size)
            assert pages.start == first and len(pages) == n_pages


class TestRaidStreams:
    """RAID fan-out: columnar member streams vs the scalar builders."""

    def _assert_streams_equal(self, got, expected):
        assert (got is None) == (expected is None)
        if expected is None:
            return
        assert len(got) == len(expected)
        for g_s, e_s in zip(got, expected):
            for col_g, col_e in zip(g_s, e_s):
                np.testing.assert_array_equal(np.asarray(col_g), np.asarray(col_e))

    def test_raid0_streams_identical(self):
        rng = np.random.default_rng(43)
        raid = Raid0([HDDModel(seed=s) for s in (1, 2, 3)], stripe_kb=64)
        ops, lbas, sizes = _random_stream(rng, 200, max_size=64 * 2 * 3)
        self._assert_streams_equal(
            raid._member_streams_columnar(ops, lbas, sizes),
            raid._member_streams_scalar(ops, lbas, sizes),
        )

    def test_raid0_wide_extent_rejected_by_both(self):
        raid = Raid0([HDDModel(seed=s) for s in (1, 2)], stripe_kb=8)
        ops = np.zeros(3, dtype=np.int8)
        lbas = np.array([0, 5, 10])
        sizes = np.array([8, 8 * 2 * 5, 8])  # middle spans > 2 stripes
        assert raid._member_streams_scalar(ops, lbas, sizes) is None
        assert raid._member_streams_columnar(ops, lbas, sizes) is None

    @pytest.mark.parametrize("counter", [0, 1, 5])
    def test_raid1_streams_identical(self, counter):
        rng = np.random.default_rng(47)
        raid = Raid1([HDDModel(seed=s) for s in (1, 2)])
        ops, lbas, sizes = _random_stream(rng, 150)
        self._assert_streams_equal(
            raid._member_streams_columnar(ops, lbas, sizes, counter),
            raid._member_streams_scalar(ops, lbas, sizes, counter),
        )

    def test_raid1_custom_policy_uses_scalar(self):
        raid = Raid1(
            [HDDModel(seed=s) for s in (1, 2)],
            read_policy=lambda lba, n: lba % n,
        )
        rng = np.random.default_rng(53)
        ops, lbas, sizes = _random_stream(rng, 60)
        streams = raid._member_streams(ops, lbas, sizes, 0)
        expected = raid._member_streams_scalar(ops, lbas, sizes, 0)
        self._assert_streams_equal(streams, expected)

    def test_raid_service_batch_end_to_end(self):
        rng = np.random.default_rng(59)
        for make in (
            lambda: Raid0([HDDModel(seed=s) for s in (1, 2, 3)], stripe_kb=64),
            lambda: Raid1([HDDModel(seed=s) for s in (1, 2)]),
        ):
            ops, lbas, sizes = _random_stream(rng, 120, max_size=64 * 2 * 3)
            d1, d2 = make(), make()
            got = d1.service_batch(ops, lbas, sizes)
            kernels.set_force_scalar(True)
            try:
                expected = d2.service_batch(ops, lbas, sizes)
            finally:
                kernels.set_force_scalar(False)
            assert (got is None) == (expected is None)
            if got is not None:
                np.testing.assert_array_equal(got, expected)


def _flash_state(device):
    """Comparable simulator-state snapshot for flash-family devices."""
    ssds = device.ssds if isinstance(device, FlashArray) else [device]
    return [
        (
            s._die_busy,
            s._chan_busy,
            s._state_horizon,
            list(s._buffered),
            s._buffered_bytes,
        )
        for s in ssds
    ]


class TestPlanReplayStateEquivalence:
    """Plan event loop: stamps AND simulator state match the oracle."""

    @pytest.mark.parametrize(
        "device_key", ["flash-buffered", "flash-nobuffer", "array-default", "array-nobuffer"]
    )
    @pytest.mark.parametrize("queue_depth", [2, 4, 9])
    def test_state_after_replay(self, device_key, queue_depth):
        make = DEVICE_FACTORIES[device_key]
        rng = np.random.default_rng(61)
        n = 120
        trace = BlockTrace(
            timestamps=np.cumsum(rng.integers(1, 200, n)).astype(np.float64),
            lbas=rng.integers(0, 1 << 22, n),
            sizes=rng.integers(1, 600, n),
            ops=rng.integers(0, 2, n).astype(np.int8),
        )
        idle = rng.uniform(0, 800.0, n - 1)
        fast_dev, oracle_dev = make(), make()
        fast = replay_queue_depth(trace, fast_dev, idle_us=idle, queue_depth=queue_depth)
        oracle = replay_queue_depth_scalar(
            trace, oracle_dev, idle_us=idle, queue_depth=queue_depth
        )
        assert_replays_identical(fast, oracle)
        assert _flash_state(fast_dev) == _flash_state(oracle_dev)

    def test_state_after_mixed_batch_and_scalar_use(self):
        """Batch pricing, replay, then scalar submits — state stays lockstep."""
        rng = np.random.default_rng(67)
        n = 60
        trace = BlockTrace(
            timestamps=np.arange(n, dtype=np.float64),
            lbas=rng.integers(0, 1 << 20, n),
            sizes=rng.integers(1, 300, n),
            ops=np.zeros(n, dtype=np.int8),  # reads: batch-capable
        )
        d_fast, d_oracle = FlashArray(), FlashArray()
        # Pure batch pricing consumes no timing state on either engine.
        svc_fast = d_fast.service_batch(trace.ops, trace.lbas, trace.sizes)
        kernels.set_force_scalar(True)
        try:
            svc_oracle = d_oracle.service_batch(trace.ops, trace.lbas, trace.sizes)
        finally:
            kernels.set_force_scalar(False)
        np.testing.assert_array_equal(svc_fast, svc_oracle)
        # Replay (plan engine vs oracle), then identical scalar submits.
        fast = replay_queue_depth(trace, d_fast, queue_depth=3)
        oracle = replay_queue_depth_scalar(trace, d_oracle, queue_depth=3)
        assert_replays_identical(fast, oracle)
        t = float(fast.finishes[-1]) + 1e4
        for j in range(8):
            c_fast = d_fast.submit(OpType.READ, int(trace.lbas[j]), int(trace.sizes[j]), t)
            c_oracle = d_oracle.submit(
                OpType.READ, int(trace.lbas[j]), int(trace.sizes[j]), t
            )
            assert (c_fast.start, c_fast.ack, c_fast.finish) == (
                c_oracle.start, c_oracle.ack, c_oracle.finish
            )
            t = c_fast.finish + 5.0
        assert _flash_state(d_fast) == _flash_state(d_oracle)

    def test_hdd_rng_state_unaffected(self):
        """Non-plan devices keep RNG lockstep (regression guard)."""
        rng = np.random.default_rng(71)
        n = 40
        trace = BlockTrace(
            timestamps=np.arange(n, dtype=np.float64),
            lbas=rng.integers(0, 1 << 20, n),
            sizes=rng.integers(1, 200, n),
            ops=rng.integers(0, 2, n).astype(np.int8),
        )
        d1, d2 = HDDModel(), HDDModel()
        fast = replay_queue_depth(trace, d1, queue_depth=4)
        oracle = replay_queue_depth_scalar(trace, d2, queue_depth=4)
        assert_replays_identical(fast, oracle)
        assert d1._rng.uniform() == d2._rng.uniform()


class TestForcedScalarToggle:
    """The env toggle swaps engines without changing any result."""

    def test_replay_identical_under_both_engines(self):
        rng = np.random.default_rng(73)
        n = 80
        trace = BlockTrace(
            timestamps=np.arange(n, dtype=np.float64),
            lbas=rng.integers(0, 1 << 22, n),
            sizes=rng.integers(1, 600, n),
            ops=rng.integers(0, 2, n).astype(np.int8),
        )
        idle = rng.uniform(0, 500.0, n - 1)
        d1, d2 = FlashArray(), FlashArray()
        columnar = replay_queue_depth(trace, d1, idle_us=idle, queue_depth=4)
        kernels.set_force_scalar(True)
        try:
            assert d2.replay_plan(trace.ops, trace.lbas, trace.sizes) is None
            forced = replay_queue_depth(trace, d2, idle_us=idle, queue_depth=4)
        finally:
            kernels.set_force_scalar(False)
        assert_replays_identical(columnar, forced)
        assert _flash_state(d1) == _flash_state(d2)

    def test_toggle_reflects_environment(self, monkeypatch):
        import importlib

        monkeypatch.setenv("REPRO_SCALAR_KERNELS", "1")
        state = kernels._FORCE_SCALAR
        try:
            importlib.reload(kernels)
            assert not kernels.columnar_enabled()
        finally:
            monkeypatch.delenv("REPRO_SCALAR_KERNELS")
            importlib.reload(kernels)
            kernels.set_force_scalar(state)


class TestFastVsScalarPathPin:
    """Satellite: pin the known ~1-ulp seed-revision delta precisely.

    The memoised fast path sums *relative* offsets before adding
    ``t_ready``; the seed-era scalar walk added ``t_ready`` first.  The
    two can differ at rounding level for multi-wave shapes — but batch,
    plan-replay, and scalar engines (which all share the memoised
    ``_service``) must agree with each other with tolerance zero.
    This test pins that contract across the zoo.
    """

    @pytest.mark.parametrize("device_key", sorted(DEVICE_FACTORIES))
    def test_batch_vs_scalar_tolerance_zero(self, device_key):
        from repro.replay import replay_with_idle, replay_with_idle_batch

        rng = np.random.default_rng(79)
        n = 64
        trace = BlockTrace(
            timestamps=np.cumsum(rng.integers(1, 400, n)).astype(np.float64),
            lbas=rng.integers(0, 1 << 22, n),
            sizes=rng.integers(1, 96, n),
            ops=rng.integers(0, 2, n).astype(np.int8),
        )
        idle = rng.uniform(0.0, 1e4, n - 1)
        make = DEVICE_FACTORIES[device_key]
        batch = replay_with_idle_batch(trace, make(), idle_us=idle)
        scalar = replay_with_idle(trace, make(), idle_us=idle)
        # Tolerance-zero: assert_array_equal is exact equality.
        assert_replays_identical(batch, scalar)
