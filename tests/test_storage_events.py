"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.storage import EventQueue, Simulation


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        assert q.pop().time == 1.0
        assert q.pop().time == 3.0
        assert q.pop().time == 5.0
        assert q.pop() is None

    def test_fifo_tie_break(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("first"))
        q.push(1.0, lambda: order.append("second"))
        q.pop().action()
        q.pop().action()
        assert order == ["first", "second"]

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        assert q.pop().time == 2.0

    def test_len_counts_live_events(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        e.cancel()
        assert len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        e = q.push(4.0, lambda: None)
        assert q.peek_time() == 4.0
        e.cancel()
        assert q.peek_time() is None


class TestSimulation:
    def test_runs_in_time_order(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.schedule_after(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0, 5.0]

    def test_events_can_schedule_events(self):
        sim = Simulation()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule_after(10.0, lambda: seen.append(sim.now))

        sim.schedule_at(1.0, first)
        sim.run()
        assert seen == [1.0, 11.0]

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulation()
        seen = []
        sim.schedule_at(1.0, lambda: seen.append(1))
        sim.schedule_at(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_cannot_schedule_in_past(self):
        sim = Simulation()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError, match="past"):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule_after(-1.0, lambda: None)

    def test_step(self):
        sim = Simulation()
        sim.schedule_at(3.0, lambda: None)
        assert sim.step() is True
        assert sim.now == 3.0
        assert sim.step() is False

    def test_pending(self):
        sim = Simulation()
        assert sim.pending == 0
        sim.schedule_at(1.0, lambda: None)
        assert sim.pending == 1
