"""Unit tests for the trace parsers and writers (round trips included)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.trace import (
    BlockTrace,
    OpType,
    TraceParseError,
    dump_trace,
    load_trace,
    parse_fiu,
    parse_internal,
    parse_msps,
    parse_msrc,
    write_blktrace_text,
    write_csv,
    write_msrc,
)


class TestMsrcParser:
    LINES = [
        "128166372003061629,host,0,Read,4096,8192,1200",
        "128166372013061629,host,0,Write,8192,4096,800",
    ]

    def test_parses_and_rebases(self):
        t = parse_msrc(self.LINES)
        assert len(t) == 2
        assert t.timestamps[0] == 0.0
        # Second row is 1e7 ticks = 1e6 us later.
        assert t.timestamps[1] == pytest.approx(1e6)

    def test_converts_bytes_to_sectors(self):
        t = parse_msrc(self.LINES)
        assert t.lbas[0] == 4096 // 512
        assert t.sizes[0] == 8192 // 512

    def test_response_time_becomes_device_time(self):
        t = parse_msrc(self.LINES)
        assert t.has_device_times
        assert t.device_times()[0] == pytest.approx(120.0)  # 1200 ticks = 120 us

    def test_skips_comments_and_blanks(self):
        t = parse_msrc(["# header", "", *self.LINES])
        assert len(t) == 2

    def test_bad_field_count(self):
        with pytest.raises(TraceParseError, match="7"):
            parse_msrc(["1,2,3"])

    def test_bad_number(self):
        with pytest.raises(TraceParseError):
            parse_msrc(["notanumber,host,0,Read,0,512,1"])

    def test_non_positive_size(self):
        with pytest.raises(TraceParseError, match="size"):
            parse_msrc(["1,host,0,Read,0,0,1"])


class TestFiuParser:
    LINES = [
        "1225448400.000000 123 proc 1000 8 W 8 1 abcdef",
        "1225448400.001000 123 proc 1008 8 R 8 1 abcdef",
    ]

    def test_parses(self):
        t = parse_fiu(self.LINES)
        assert len(t) == 2
        assert not t.has_device_times
        assert t.ops[0] == int(OpType.WRITE)
        assert t.timestamps[1] - t.timestamps[0] == pytest.approx(1000.0)

    def test_md5_optional(self):
        t = parse_fiu(["1.0 1 p 0 8 R 8 1"])
        assert len(t) == 1

    def test_too_few_fields(self):
        with pytest.raises(TraceParseError):
            parse_fiu(["1.0 1 p 0 8"])


class TestMspsParser:
    LINES = ["0.0 150.0 R 0 8", "200.0 900.0 W 8 16"]

    def test_parses_with_device_times(self):
        t = parse_msps(self.LINES)
        assert t.has_device_times
        np.testing.assert_allclose(t.device_times(), [150.0, 700.0])

    def test_completion_before_issue_rejected(self):
        with pytest.raises(TraceParseError, match="precedes"):
            parse_msps(["100.0 50.0 R 0 8"])


class TestInternalRoundTrip:
    def _round_trip(self, trace: BlockTrace) -> BlockTrace:
        buffer = io.StringIO()
        write_csv(trace, buffer)
        buffer.seek(0)
        return parse_internal(buffer, name=trace.name)

    def test_round_trip_plain(self):
        t = BlockTrace([0.0, 10.0], [0, 8], [8, 16], [0, 1], name="x")
        r = self._round_trip(t)
        np.testing.assert_allclose(r.timestamps, t.timestamps)
        np.testing.assert_array_equal(r.sizes, t.sizes)
        np.testing.assert_array_equal(r.ops, t.ops)

    def test_round_trip_with_device_and_sync(self):
        t = BlockTrace(
            [0.0, 10.0],
            [0, 8],
            [8, 16],
            [0, 1],
            issues=[1.0, 11.0],
            completes=[5.0, 30.0],
            syncs=[True, False],
            name="x",
        )
        r = self._round_trip(t)
        assert r.has_device_times and r.has_sync_flags
        np.testing.assert_allclose(r.device_times(), t.device_times())
        assert r.syncs is not None
        assert list(r.syncs) == [True, False]

    def test_empty_round_trip(self):
        t = BlockTrace([], [], [], [])
        assert len(self._round_trip(t)) == 0

    def test_bad_header(self):
        with pytest.raises(TraceParseError, match="header"):
            parse_internal(["foo,bar,baz,qux", "1,2,3,R"])


class TestMsrcWriter:
    def test_msrc_round_trip(self):
        t = BlockTrace(
            [0.0, 1000.0],
            [8, 16],
            [8, 8],
            [0, 1],
            issues=[0.0, 1000.0],
            completes=[120.0, 1500.0],
            name="host",
        )
        buffer = io.StringIO()
        write_msrc(t, buffer)
        buffer.seek(0)
        r = parse_msrc(buffer)
        np.testing.assert_allclose(r.timestamps, t.timestamps, atol=0.2)
        np.testing.assert_allclose(r.device_times(), t.device_times(), atol=0.2)

    def test_msrc_writer_needs_device_times(self):
        t = BlockTrace([0.0], [0], [8], [0])
        with pytest.raises(ValueError, match="stamps"):
            write_msrc(t, io.StringIO())


class TestBlktraceWriter:
    def test_emits_dispatch_and_complete_lines(self):
        t = BlockTrace(
            [0.0], [8], [8], [0], issues=[0.0], completes=[100.0], name="x"
        )
        buffer = io.StringIO()
        write_blktrace_text(t, buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        assert " D R 8 + 8" in lines[0]
        assert " C R 8 + 8" in lines[1]


class TestFileIO:
    def test_dump_and_load(self, tmp_path):
        t = BlockTrace([0.0, 5.0], [0, 8], [8, 8], [0, 1], name="disk0")
        path = dump_trace(t, tmp_path / "disk0.csv")
        loaded = load_trace(path, fmt="internal")
        assert loaded.name == "disk0"
        assert len(loaded) == 2

    def test_load_unknown_format(self, tmp_path):
        p = tmp_path / "x.csv"
        p.write_text("")
        with pytest.raises(ValueError, match="unknown trace format"):
            load_trace(p, fmt="nope")

    def test_dump_unknown_format(self, tmp_path):
        t = BlockTrace([0.0], [0], [8], [0])
        with pytest.raises(ValueError, match="unknown trace format"):
            dump_trace(t, tmp_path / "x", fmt="nope")
