"""Unit tests for the campaign fault-tolerance substrate.

Everything here runs in-process with injected clocks: the retry policy's
backoff sequence and jitter bounds (hypothesis property tests), the
transient-vs-permanent error taxonomy, quarantine-after-N semantics with
a recording fake sleep, the chaos-spec grammar, heartbeat bookkeeping,
and the quarantine-aware :class:`ResultsTable` views.  The
process-killing scenarios live in ``tests/chaos/``.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.results import ResultsTable
from repro.campaign.supervise import (
    CHAOS_KINDS,
    QUARANTINED,
    ChaosError,
    ChaosInjector,
    ChaosSpec,
    PermanentPointError,
    PointTimeout,
    Resilience,
    RetryPolicy,
    TransientPointError,
    classify_error,
    heartbeat_age_s,
    quarantine_row,
    run_point_resilient,
    time_limit,
    write_heartbeat,
)


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------


class TestClassifyError:
    @pytest.mark.parametrize(
        "exc",
        [
            TransientPointError("x"),
            PointTimeout("x"),
            ChaosError("x"),
            TimeoutError("x"),
            ConnectionError("x"),
            InterruptedError("x"),
            BlockingIOError("x"),
            OSError("x"),
            sqlite3.OperationalError("database is locked"),
        ],
    )
    def test_transient(self, exc):
        assert classify_error(exc) == "transient"

    @pytest.mark.parametrize(
        "exc",
        [
            PermanentPointError("x"),
            ValueError("x"),
            TypeError("x"),
            KeyError("x"),
            IndexError("x"),
            AttributeError("x"),
            AssertionError("x"),
            ZeroDivisionError("x"),
            NotImplementedError("x"),
            MemoryError("x"),
        ],
    )
    def test_permanent(self, exc):
        assert classify_error(exc) == "permanent"

    def test_unknown_defaults_to_transient(self):
        class Weird(Exception):
            pass

        assert classify_error(Weird("?")) == "transient"

    def test_marker_classes_outrank_builtin_bases(self):
        # A PermanentPointError is a RuntimeError; a subclass mixing in
        # a transient builtin must still follow the explicit marker.
        class Mixed(PermanentPointError, OSError):
            pass

        assert classify_error(Mixed("x")) == "permanent"


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------

_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=8),
    base_delay_s=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_delay_s=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


class TestRetryPolicy:
    def test_defaults_round_trip(self):
        policy = RetryPolicy()
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_s": -0.1},
            {"max_delay_s": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_sequence_grows_then_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        assert policy.delays("k") == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_deterministic_across_calls(self):
        policy = RetryPolicy()
        assert policy.delays("some-key") == policy.delays("some-key")

    def test_jitter_desynchronises_keys(self):
        policy = RetryPolicy(jitter=0.25)
        assert policy.delay_s("key-a", 0) != policy.delay_s("key-b", 0)

    @settings(max_examples=50)
    @given(policy=_policies, key=st.text(min_size=1, max_size=16))
    def test_delay_bounds(self, policy: RetryPolicy, key: str):
        """Every delay lies in [raw, raw * (1 + jitter)] with raw capped."""
        for attempt in range(policy.max_attempts - 1):
            raw = min(policy.base_delay_s * policy.multiplier**attempt, policy.max_delay_s)
            delay = policy.delay_s(key, attempt)
            assert raw <= delay <= raw * (1.0 + policy.jitter) + 1e-12

    @settings(max_examples=50)
    @given(policy=_policies, key=st.text(min_size=1, max_size=16))
    def test_delays_length_and_round_trip(self, policy: RetryPolicy, key: str):
        assert len(policy.delays(key)) == policy.max_attempts - 1
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


# ----------------------------------------------------------------------
# Resilient point execution (fake clock: sleeps are recorded, not slept)
# ----------------------------------------------------------------------


class _Point:
    """Stand-in grid point: only ``axis_values`` is consulted."""

    def axis_values(self):
        return {"workload": "w", "device": "d", "method": "m", "n_requests": 100}


class _FlakyPoint:
    """A run_point that fails transiently ``failures`` times, then works."""

    def __init__(self, failures: int, exc: BaseException | None = None):
        self.failures = failures
        self.calls = 0
        self.exc = exc if exc is not None else TransientPointError("flaky")

    def __call__(self, spec, point):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc
        return {"workload": "w", "value": 42}


def _resilience(max_attempts: int = 3) -> Resilience:
    return Resilience(retry=RetryPolicy(max_attempts=max_attempts, jitter=0.0))


class TestRunPointResilient:
    def test_success_first_try_no_sleep(self):
        sleeps: list[float] = []
        fn = _FlakyPoint(0)
        row, quarantined = run_point_resilient(
            fn, None, _Point(), 0, "k", _resilience(), sleep=sleeps.append
        )
        assert row == {"workload": "w", "value": 42}
        assert not quarantined and sleeps == [] and fn.calls == 1

    def test_transient_retries_with_policy_backoff(self):
        sleeps: list[float] = []
        fn = _FlakyPoint(2)
        resilience = _resilience(max_attempts=3)
        row, quarantined = run_point_resilient(
            fn, None, _Point(), 0, "k", resilience, sleep=sleeps.append
        )
        assert not quarantined and fn.calls == 3
        assert sleeps == resilience.retry.delays("k")

    def test_quarantine_after_n_attempts(self):
        sleeps: list[float] = []
        fn = _FlakyPoint(10)  # never recovers
        resilience = _resilience(max_attempts=4)
        row, quarantined = run_point_resilient(
            fn, None, _Point(), 0, "k", resilience, sleep=sleeps.append
        )
        assert quarantined and fn.calls == 4
        assert len(sleeps) == 3  # one backoff per retry, none after the last
        assert row["status"] == QUARANTINED
        assert row["attempts"] == 4
        assert "flaky" in row["error"]
        assert row["workload"] == "w"  # axis values preserved

    def test_permanent_quarantines_immediately(self):
        sleeps: list[float] = []
        fn = _FlakyPoint(10, exc=ValueError("bad shape"))
        row, quarantined = run_point_resilient(
            fn, None, _Point(), 0, "k", _resilience(), sleep=sleeps.append
        )
        assert quarantined and fn.calls == 1 and sleeps == []
        assert row["error"].startswith("ValueError")

    def test_keyboard_interrupt_propagates(self):
        def fn(spec, point):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_point_resilient(
                fn, None, _Point(), 0, "k", _resilience(), sleep=lambda s: None
            )

    @settings(max_examples=30, deadline=None)
    @given(
        failures=st.integers(min_value=0, max_value=10),
        max_attempts=st.integers(min_value=1, max_value=6),
    )
    def test_quarantine_after_n_property(self, failures: int, max_attempts: int):
        """Attempts used = min(failures + 1, max_attempts); quarantine
        iff the failures outlast the budget."""
        fn = _FlakyPoint(failures)
        row, quarantined = run_point_resilient(
            fn, None, _Point(), 0, "k",
            _resilience(max_attempts=max_attempts), sleep=lambda s: None,
        )
        assert quarantined == (failures >= max_attempts)
        assert fn.calls == min(failures + 1, max_attempts)
        if quarantined:
            assert row["attempts"] == max_attempts


class TestTimeLimit:
    def test_interrupts_a_hung_loop(self):
        import time as _time

        with pytest.raises(PointTimeout):
            with time_limit(0.05):
                _time.sleep(5.0)

    def test_no_budget_is_a_noop(self):
        with time_limit(None):
            pass
        with time_limit(0):
            pass

    def test_timer_disarmed_after_exit(self):
        import signal as _signal
        import time as _time

        with time_limit(0.2):
            pass
        _time.sleep(0.3)  # a leaked timer would fire here
        assert _signal.getitimer(_signal.ITIMER_REAL) == (0.0, 0.0)


# ----------------------------------------------------------------------
# Chaos grammar + fire-once claims
# ----------------------------------------------------------------------


class TestChaosSpec:
    def test_parse_round_trip(self):
        spec = ChaosSpec.parse("kill@3, hang@5 ,exc@2,poison@7,corrupt@4")
        assert spec.to_text() == "kill@3,hang@5,exc@2,poison@7,corrupt@4"
        assert ChaosSpec.parse(spec.to_text()) == spec

    def test_at_groups_by_index(self):
        spec = ChaosSpec.parse("exc@2,corrupt@2,kill@3")
        assert spec.at(2) == ["exc", "corrupt"]
        assert spec.at(3) == ["kill"]
        assert spec.at(0) == []

    @pytest.mark.parametrize("bad", ["explode@1", "kill", "kill@x", "@3"])
    def test_rejects_bad_grammar(self, bad):
        with pytest.raises(ValueError):
            ChaosSpec.parse(bad)

    def test_kinds_are_documented(self):
        assert set(CHAOS_KINDS) == {"exc", "poison", "kill", "hang", "corrupt"}


class TestChaosInjector:
    def test_exc_fires_exactly_once(self, tmp_path: Path):
        injector = ChaosInjector(ChaosSpec.parse("exc@1"), tmp_path / "markers")
        with pytest.raises(ChaosError):
            injector.before_point(1)
        injector.before_point(1)  # second pass: already claimed
        injector.before_point(0)  # other indices never fire

    def test_poison_fires_every_time(self, tmp_path: Path):
        injector = ChaosInjector(ChaosSpec.parse("poison@1"), tmp_path / "markers")
        for _ in range(3):
            with pytest.raises(ChaosError):
                injector.before_point(1)

    def test_claims_shared_across_injectors(self, tmp_path: Path):
        # Two injectors over one marker dir model two worker processes.
        a = ChaosInjector(ChaosSpec.parse("exc@1"), tmp_path / "m")
        b = ChaosInjector(ChaosSpec.parse("exc@1"), tmp_path / "m")
        with pytest.raises(ChaosError):
            a.before_point(1)
        b.before_point(1)  # the claim is global, not per-injector

    def test_corrupt_truncates_checkpoint(self, tmp_path: Path):
        target = tmp_path / "segment-x.jsonl"
        target.write_bytes(b"x" * 100)
        injector = ChaosInjector(ChaosSpec.parse("corrupt@2"), tmp_path / "m")
        injector.after_checkpoint(2, target)
        assert target.stat().st_size == 50
        injector.after_checkpoint(2, target)  # fire-once
        assert target.stat().st_size == 50


# ----------------------------------------------------------------------
# Resilience config plumbing
# ----------------------------------------------------------------------


class TestResilience:
    def test_round_trip(self):
        resilience = Resilience(
            retry=RetryPolicy(max_attempts=5),
            point_timeout_s=2.5,
            chaos=ChaosSpec.parse("kill@1"),
            chaos_dir="/tmp/x",
        )
        assert Resilience.from_dict(resilience.to_dict()) == resilience

    def test_injector_requires_chaos_and_dir(self, tmp_path: Path):
        assert Resilience().injector() is None
        assert Resilience(chaos=ChaosSpec.parse("kill@1")).injector() is None
        armed = Resilience(chaos=ChaosSpec.parse("kill@1"), chaos_dir=str(tmp_path))
        assert isinstance(armed.injector(), ChaosInjector)


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------


class TestHeartbeats:
    def test_write_then_age(self, tmp_path: Path):
        beat = tmp_path / "hearts" / "w0.hb"
        assert heartbeat_age_s(beat) == float("inf")
        write_heartbeat(beat)
        assert heartbeat_age_s(beat) < 5.0

    def test_age_uses_supplied_now(self, tmp_path: Path):
        beat = tmp_path / "w0.hb"
        write_heartbeat(beat)
        mtime = beat.stat().st_mtime
        assert heartbeat_age_s(beat, now=mtime + 42.0) == pytest.approx(42.0)


# ----------------------------------------------------------------------
# Quarantine-aware table views
# ----------------------------------------------------------------------


def _mixed_table() -> ResultsTable:
    good = {"workload": "a", "value": 1.0}
    bad = quarantine_row(
        {"workload": "b", "value": None}, ValueError("boom"), attempts=3
    )
    good2 = {"workload": "c", "value": 3.0}
    return ResultsTable.from_rows([good, bad, good2])


class TestQuarantineViews:
    def test_quarantined_rows_selected(self):
        table = _mixed_table()
        assert len(table.quarantined()) == 1
        assert table.quarantined().column("workload") == ["b"]

    def test_without_quarantined_drops_rows_and_marker_columns(self):
        table = _mixed_table()
        clean = table.without_quarantined()
        assert len(clean) == 2
        assert set(clean.columns) == {"workload", "value"}

    def test_without_quarantined_matches_undisturbed(self):
        disturbed = _mixed_table().without_quarantined()
        oracle = ResultsTable.from_rows(
            [{"workload": "a", "value": 1.0}, {"workload": "c", "value": 3.0}]
        )
        assert disturbed == oracle

    def test_tables_without_status_pass_through(self):
        table = ResultsTable.from_rows([{"x": 1}, {"x": 2}])
        assert table.without_quarantined() == table
        assert len(table.quarantined()) == 0
