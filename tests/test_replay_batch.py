"""Equivalence suite for the vectorised batch replay engine.

The batch engine's contract is strict: for every device type and every
valid (trace, idle) input, :func:`replay_with_idle_batch` must produce
*bit-identical* stamps to the scalar :func:`replay_with_idle` — whether
it took the cumulative-sum vector path (gap-invariant devices) or the
fast scalar fallback (e.g. a flash array with buffered writes).  These
tests enforce that property with hypothesis across the device zoo.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replay import replay_back_to_back, replay_back_to_back_batch, replay_with_idle, replay_with_idle_batch
from repro.storage import (
    SATA_600,
    ConstantLatencyDevice,
    FlashArray,
    FlashGeometry,
    FlashSSD,
    HDDModel,
    Raid0,
    Raid1,
)
from repro.workloads import collect_trace, generate_intents, get_spec
from test_properties import block_traces

# Factories build a fresh device per call so scalar and batch runs see
# identical cold state (shared memo caches are state-free by design).
DEVICE_FACTORIES = {
    "const": lambda: ConstantLatencyDevice(SATA_600, read_us=50.0, write_us=80.0),
    "hdd": lambda: HDDModel(),
    "hdd-cache": lambda: HDDModel(write_back_cache_kb=2048),
    "flash-nobuffer": lambda: FlashSSD(geometry=FlashGeometry(write_buffer_kb=0)),
    "flash-buffered": lambda: FlashSSD(),
    "array-default": lambda: FlashArray(),
    "array-nobuffer": lambda: FlashArray(geometry=FlashGeometry(write_buffer_kb=0)),
    "raid0-const": lambda: Raid0(
        [ConstantLatencyDevice(SATA_600) for _ in range(3)], stripe_kb=8
    ),
    "raid0-hdd": lambda: Raid0([HDDModel(seed=s) for s in (1, 2, 3)], stripe_kb=64),
    "raid1-hdd": lambda: Raid1([HDDModel(seed=s) for s in (1, 2)]),
}

#: Configurations whose latencies are gap-invariant: the vector path
#: must actually engage (service_batch returns an array).
VECTOR_CAPABLE = ("const", "hdd", "flash-nobuffer", "array-nobuffer", "raid0-const", "raid0-hdd", "raid1-hdd")

#: Configurations that must fall back (timing-dependent internal state).
FALLBACK_ONLY = ("hdd-cache",)


def assert_replays_identical(a, b):
    np.testing.assert_array_equal(a.submits, b.submits)
    np.testing.assert_array_equal(a.acks, b.acks)
    np.testing.assert_array_equal(a.starts, b.starts)
    np.testing.assert_array_equal(a.finishes, b.finishes)
    np.testing.assert_array_equal(a.trace.timestamps, b.trace.timestamps)
    np.testing.assert_array_equal(a.trace.issues, b.trace.issues)
    np.testing.assert_array_equal(a.trace.completes, b.trace.completes)
    np.testing.assert_array_equal(a.trace.lbas, b.trace.lbas)
    np.testing.assert_array_equal(a.trace.ops, b.trace.ops)
    assert a.trace.metadata == b.trace.metadata
    assert a.device_name == b.device_name


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("device_key", sorted(DEVICE_FACTORIES))
    @given(trace=block_traces(min_n=2, max_n=50), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_stamps_bit_identical(self, device_key, trace, data):
        make = DEVICE_FACTORIES[device_key]
        idle = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=1e5),
                    min_size=len(trace) - 1,
                    max_size=len(trace) - 1,
                )
            )
        )
        scalar = replay_with_idle(trace, make(), idle)
        batch = replay_with_idle_batch(trace, make(), idle)
        assert_replays_identical(scalar, batch)

    @pytest.mark.parametrize("device_key", sorted(DEVICE_FACTORIES))
    @given(trace=block_traces(min_n=2, max_n=40))
    @settings(max_examples=10, deadline=None)
    def test_back_to_back_bit_identical(self, device_key, trace):
        make = DEVICE_FACTORIES[device_key]
        scalar = replay_back_to_back(trace, make())
        batch = replay_back_to_back_batch(trace, make())
        assert_replays_identical(scalar, batch)

    @pytest.mark.parametrize("device_key", VECTOR_CAPABLE)
    def test_vector_path_engages(self, device_key):
        rng = np.random.default_rng(3)
        n = 64
        ops = rng.integers(0, 2, n).astype(np.int8)
        lbas = rng.integers(0, 10**8, n)
        # Small extents: even the narrow-stripe RAID keeps fragments on
        # distinct members, so every capable config takes the vector path.
        sizes = rng.choice([8, 16], n)
        device = DEVICE_FACTORIES[device_key]()
        device.reset()
        svc = device.service_batch(ops, lbas, sizes)
        assert svc is not None
        assert svc.shape == (n,)
        assert np.all(svc >= 0.0)

    @pytest.mark.parametrize("device_key", FALLBACK_ONLY)
    def test_gap_sensitive_devices_refuse(self, device_key):
        rng = np.random.default_rng(4)
        n = 32
        ops = rng.integers(0, 2, n).astype(np.int8)
        device = DEVICE_FACTORIES[device_key]()
        assert device.service_batch(ops, rng.integers(0, 10**8, n), np.full(n, 8)) is None

    def test_buffered_flash_refuses_writes_but_takes_reads(self):
        device = FlashSSD()  # default geometry has a write buffer
        n = 16
        lbas = np.arange(n) * 64
        sizes = np.full(n, 8)
        assert device.service_batch(np.ones(n, dtype=np.int8), lbas, sizes) is None
        device.reset()
        assert device.service_batch(np.zeros(n, dtype=np.int8), lbas, sizes) is not None


class TestBatchValidation:
    def test_empty_trace_rejected(self, const_device):
        from repro.trace import BlockTrace

        with pytest.raises(ValueError):
            replay_with_idle_batch(BlockTrace([], [], [], []), const_device, None)

    def test_idle_length_validation(self, const_device):
        from repro.trace import BlockTrace

        trace = BlockTrace([0.0, 10.0, 20.0], [0, 8, 16], [8, 8, 8], [0, 0, 0])
        with pytest.raises(ValueError, match="length"):
            replay_with_idle_batch(trace, const_device, np.zeros(1))
        with pytest.raises(ValueError, match="non-negative"):
            replay_with_idle_batch(trace, const_device, np.full(2, -1.0))

    def test_full_length_idle_accepted(self, const_device):
        from repro.trace import BlockTrace

        trace = BlockTrace([0.0, 10.0], [0, 8], [8, 8], [0, 0])
        result = replay_with_idle_batch(trace, const_device, np.zeros(2))
        assert len(result.trace) == 2

    def test_lazy_completions_match_arrays(self, const_device):
        from repro.trace import BlockTrace

        trace = BlockTrace([0.0, 10.0, 50.0], [0, 8, 16], [8, 8, 8], [0, 1, 0])
        result = replay_with_idle_batch(trace, const_device, np.array([5.0, 9.0]))
        for i, completion in enumerate(result.completions):
            assert completion.submit == result.submits[i]
            assert completion.ack == result.acks[i]
            assert completion.start == result.starts[i]
            assert completion.finish == result.finishes[i]


class TestFlashNonMonotoneReady:
    def test_same_timestamp_submissions_stay_exact(self):
        """t_ready is not monotone under submit(): a smaller request at
        the same submit time has a smaller channel delay.  The fast
        path must not lose busy-state stamps that a later, earlier-
        ``t_ready`` request still needs (regression: deferred updates
        used to be dropped once the horizon was passed)."""
        from repro.trace.record import OpType

        def drive(ssd):
            # Buffered write: drains in the background on page 0's die;
            # then, at one submit instant, a huge read (large channel
            # delay, t_ready beyond the drain horizon) followed by a
            # small read of page 0 (small channel delay, t_ready below
            # the drain stamp it must still observe).
            sequence = [
                (OpType.WRITE, 0, 8, 0.0),
                (OpType.READ, 10_000, 2048, 700.0),
                (OpType.READ, 0, 8, 700.0),
                (OpType.READ, 20_000, 2048, 900.0),
                (OpType.READ, 0, 8, 900.0),
            ]
            return np.array([ssd.submit(*request).finish for request in sequence])

        fast = drive(FlashSSD())
        reference = FlashSSD()
        # Forcing every request down the absolute-time slow path
        # reproduces the pre-memoisation semantics.
        reference._state_idle_for = lambda entry, t_ready: False
        slow = drive(reference)
        np.testing.assert_allclose(fast, slow, rtol=1e-12, atol=1e-6)


class TestHDDBatchInternals:
    def test_uniform_block_draw_matches_scalar_stream(self):
        """The vector path's block RNG draw must equal n scalar draws."""
        a = np.random.default_rng(42)
        b = np.random.default_rng(42)
        block = a.uniform(0.0, 123.4, 100)
        singles = np.array([float(b.uniform(0.0, 123.4)) for _ in range(100)])
        np.testing.assert_array_equal(block, singles)

    def test_state_consumed_like_scalar(self):
        """service_batch leaves head/LBA state where scalar calls would."""
        from repro.trace.record import OpType

        lbas = np.array([1000, 1064, 5000])
        sizes = np.array([64, 64, 8])
        ops = np.zeros(3, dtype=np.int8)
        vec = HDDModel()
        vec.reset()
        vec.service_batch(ops, lbas, sizes)
        scalar = HDDModel()
        scalar.reset()
        t = 0.0
        for i in range(3):
            __, f = scalar._service(OpType.READ, int(lbas[i]), int(sizes[i]), t)
            t = f
        assert vec._head_cylinder == scalar._head_cylinder
        assert vec._last_end_lba == scalar._last_end_lba


class TestFastCollectEquivalence:
    @pytest.mark.parametrize("record_dev", [True, False])
    def test_fifo_collect_matches_scalar_path(self, record_dev, monkeypatch):
        intents = generate_intents(get_spec("MSNFS").scaled(400))
        fast = collect_trace(intents, HDDModel(), record_device_times=record_dev, record_sync_flags=True)
        monkeypatch.setattr(HDDModel, "fifo_single_server", False)
        scalar = collect_trace(intents, HDDModel(), record_device_times=record_dev, record_sync_flags=True)
        np.testing.assert_array_equal(fast.timestamps, scalar.timestamps)
        if record_dev:
            np.testing.assert_array_equal(fast.issues, scalar.issues)
            np.testing.assert_array_equal(fast.completes, scalar.completes)
        np.testing.assert_array_equal(fast.syncs, scalar.syncs)
        assert fast.metadata == scalar.metadata
