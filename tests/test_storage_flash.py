"""Unit tests for the flash SSD model and the all-flash array."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import FlashArray, FlashGeometry, FlashSSD
from repro.trace import OpType


class TestFlashGeometry:
    def test_paper_geometry_counts(self):
        g = FlashGeometry()
        # "a single device consists of 18 channels, 36 dies, and 72 planes"
        assert g.channels == 18
        assert g.total_dies == 36
        assert g.total_planes == 72

    def test_page_sectors(self):
        assert FlashGeometry(page_kb=8).page_sectors == 16

    def test_die_striping_covers_all_dies(self):
        g = FlashGeometry()
        seen = {g.die_of_page(p) for p in range(g.total_dies)}
        assert len(seen) == g.total_dies

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashGeometry(channels=0)
        with pytest.raises(ValueError):
            FlashGeometry(read_us=0.0)
        with pytest.raises(ValueError):
            FlashGeometry(write_buffer_kb=-1)


class TestFlashSSD:
    def test_small_read_latency_magnitude(self):
        ssd = FlashSSD()
        c = ssd.submit(OpType.READ, 0, 8, 0.0)
        # One page read + transfer + channel: order of 100 us (NVMe-class).
        assert 30.0 < c.device_time < 300.0

    def test_buffered_write_acks_fast(self):
        ssd = FlashSSD()
        c = ssd.submit(OpType.WRITE, 0, 8, 0.0)
        # Write-back buffer hides the ~900 us program latency.
        assert c.device_time < 100.0

    def test_large_read_exploits_parallelism(self):
        ssd = FlashSSD()
        small = ssd.submit(OpType.READ, 0, 16, 0.0).device_time
        ssd.reset()
        # 64 pages spread over 36 dies: much less than 64x one page.
        big = ssd.submit(OpType.READ, 0, 16 * 64, 0.0).device_time
        assert big < 20 * small

    def test_sustained_write_throttles_to_program_rate(self):
        geometry = FlashGeometry(write_buffer_kb=64)
        ssd = FlashSSD(geometry)
        t = 0.0
        finishes = []
        for i in range(200):
            c = ssd.submit(OpType.WRITE, i * 16, 16, t)
            finishes.append(c.finish)
            t = c.finish
        gaps = np.diff(finishes)
        # Early writes are absorbed at buffer speed; once the 64 KB
        # buffer is full, admission waits for background drains.
        assert np.mean(gaps[:5]) < np.mean(gaps[-20:])

    def test_read_faster_than_unbuffered_write(self):
        g = FlashGeometry(write_buffer_kb=0)
        ssd = FlashSSD(g)
        r = ssd.submit(OpType.READ, 0, 16, 0.0).device_time
        ssd.reset()
        w = ssd.submit(OpType.WRITE, 0, 16, 0.0).device_time
        assert r < w

    def test_reset_reproducible(self):
        ssd = FlashSSD()
        a = ssd.submit(OpType.READ, 123, 32, 0.0).finish
        ssd.reset()
        b = ssd.submit(OpType.READ, 123, 32, 0.0).finish
        assert a == b

    def test_expected_service_read_scale(self):
        ssd = FlashSSD()
        assert ssd.service_time_us(OpType.READ, 8, True) < ssd.service_time_us(
            OpType.READ, 16 * 200, True
        )


class TestFlashArray:
    def test_paper_array_shape(self):
        arr = FlashArray()
        assert arr.n_ssds == 4
        assert "4x" in arr.name

    def test_fragments_split_on_stripe_boundaries(self):
        arr = FlashArray(stripe_kb=128)  # 256 sectors
        frags = arr._fragments(lba=200, size=200)
        assert [(f[0], f[2]) for f in frags] == [(0, 56), (1, 144)]
        assert sum(f[2] for f in frags) == 200

    def test_fragments_round_robin(self):
        arr = FlashArray(n_ssds=4, stripe_kb=128)
        frags = arr._fragments(lba=0, size=256 * 4)
        assert [f[0] for f in frags] == [0, 1, 2, 3]

    def test_array_read_bandwidth_exceeds_single_ssd(self):
        # Stream large reads; the array must finish sooner than one SSD.
        def run(device) -> float:
            device.reset()
            t = 0.0
            for i in range(50):
                c = device.submit(OpType.READ, i * 2048, 2048, t)
                t = c.finish
            return t

        single = run(FlashSSD())
        array = run(FlashArray())
        assert array < single

    def test_array_headline_bandwidth(self):
        # Sustained sequential reads should reach several GB/s
        # (the paper's array peaks at 9 GB/s read).
        arr = FlashArray()
        t = 0.0
        total_bytes = 0
        for i in range(100):
            c = arr.submit(OpType.READ, i * 4096, 4096, t)  # 2 MB each
            total_bytes += 4096 * 512
            t = c.finish
        gb_per_s = total_bytes / (t / 1e6) / 1e9
        assert gb_per_s > 2.0

    def test_small_request_latency_close_to_single_ssd(self):
        arr = FlashArray()
        ssd = FlashSSD()
        a = arr.submit(OpType.READ, 0, 8, 0.0).device_time
        s = ssd.submit(OpType.READ, 0, 8, 0.0).device_time
        assert a == pytest.approx(s, rel=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashArray(n_ssds=0)
        with pytest.raises(ValueError):
            FlashArray(stripe_kb=0)

    def test_reset_resets_members(self):
        arr = FlashArray()
        a = arr.submit(OpType.READ, 0, 512, 0.0).finish
        arr.reset()
        b = arr.submit(OpType.READ, 0, 512, 0.0).finish
        assert a == b
