"""Lightweight stage timing and counters for the pipeline benchmarks.

The performance subsystem needs one small, dependency-free primitive:
record how long named stages take (and how often named events happen)
without perturbing the thing being measured.  :class:`PerfRecorder`
provides exactly that — monotonic-clock stage timing with
context-manager ergonomics, best-of-N aggregation, and a JSON-able
summary — and is shared by ``benchmarks/bench_pipeline.py`` and the
campaign engine (which times its plan/scan/compute/aggregate phases
when handed a recorder).

A disabled recorder (``PerfRecorder(enabled=False)``) keeps every call
site branch-free and costs one attribute check per stage, so production
paths can stay instrumented unconditionally.
"""

from .recorder import PerfRecorder, StageStats

__all__ = ["PerfRecorder", "StageStats"]
