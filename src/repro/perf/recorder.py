"""Monotonic stage timing and event counters.

Everything here is deliberately boring: ``time.perf_counter_ns`` under
a context manager, per-stage aggregates, plain-dict export.  The value
is the shared vocabulary — every benchmark stage and every engine phase
reports through the same :class:`StageStats` shape, so the pipeline
benchmark, the CI regression gate, and ad-hoc profiling all read one
format.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["PerfRecorder", "StageStats"]


@dataclass
class StageStats:
    """Aggregate timing of one named stage.

    Attributes
    ----------
    calls:
        How many times the stage ran.
    total_s:
        Summed wall-clock seconds across calls.
    best_s:
        Fastest single call (the steady-state figure benchmarks report).
    last_s:
        Most recent call.
    """

    calls: int = 0
    total_s: float = 0.0
    best_s: float = float("inf")
    last_s: float = 0.0

    def add(self, seconds: float) -> None:
        """Fold one timed call into the aggregate."""
        self.calls += 1
        self.total_s += seconds
        self.last_s = seconds
        if seconds < self.best_s:
            self.best_s = seconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-able summary (seconds, float)."""
        return {
            "calls": self.calls,
            "total_s": round(self.total_s, 6),
            "best_s": round(self.best_s, 6) if self.calls else None,
            "last_s": round(self.last_s, 6),
        }


class PerfRecorder:
    """Collects named stage timings and event counters.

    Parameters
    ----------
    enabled:
        A disabled recorder records nothing and its :meth:`stage`
        context manager degenerates to a no-op, so hot paths can stay
        instrumented unconditionally.

    Usage::

        perf = PerfRecorder()
        with perf.stage("inference"):
            estimate_model(trace)
        perf.count("memo_hit")
        perf.to_dict()   # {"stages": {...}, "counters": {...}}
    """

    __slots__ = ("enabled", "stages", "counters")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.stages: dict[str, StageStats] = {}
        self.counters: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one run of the named stage (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.add_seconds(name, (time.perf_counter_ns() - start) / 1e9)

    def add_seconds(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        if not self.enabled:
            return
        stats = self.stages.get(name)
        if stats is None:
            stats = self.stages[name] = StageStats()
        stats.add(seconds)

    def count(self, name: str, delta: int = 1) -> None:
        """Increment the named event counter."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + delta

    def best_s(self, name: str) -> float | None:
        """Fastest recorded call of a stage (``None`` when never run)."""
        stats = self.stages.get(name)
        return stats.best_s if stats is not None and stats.calls else None

    def to_dict(self) -> dict[str, Any]:
        """JSON-able dump of every stage and counter."""
        return {
            "stages": {name: stats.to_dict() for name, stats in sorted(self.stages.items())},
            "counters": dict(sorted(self.counters.items())),
        }

    def summary_lines(self) -> list[str]:
        """Human-readable one-line-per-stage summary (best/total/calls)."""
        lines = []
        for name, stats in sorted(self.stages.items()):
            lines.append(
                f"{name}: best={stats.best_s * 1e3:.2f}ms "
                f"total={stats.total_s * 1e3:.2f}ms calls={stats.calls}"
            )
        for name, value in sorted(self.counters.items()):
            lines.append(f"{name}: {value}")
        return lines
