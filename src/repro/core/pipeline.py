"""The TraceTracker pipeline: infer → emulate → post-process.

This is the paper's primary contribution assembled from the substrates:

1. **software evaluation** — infer the old system's latency model from
   the trace alone (or read it off measured stamps when available) and
   decompose every inter-arrival gap into device time and idle time
   (:mod:`repro.inference`);
2. **hardware evaluation** — replay the request pattern on the target
   device, sleeping the inferred idle between requests, collecting the
   new trace blktrace-style (:mod:`repro.replay`);
3. **post-processing** — restore asynchronous-submission timing where
   the old trace shows the submitter cannot have waited
   (:mod:`repro.replay.postprocess`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..inference.idle import IdleExtraction, extract_idle
from ..replay.batch import replay_with_idle_batch
from ..replay.postprocess import detect_async_indices, revive_async
from ..storage.device import StorageDevice
from ..trace.trace import BlockTrace
from .config import TraceTrackerConfig

__all__ = ["ReconstructionResult", "TraceTracker"]


@dataclass(frozen=True, slots=True)
class ReconstructionResult:
    """Everything a reconstruction run produced.

    Attributes
    ----------
    trace:
        The remastered block trace on the target device.
    extraction:
        The idle decomposition of the old trace (model, idle array,
        async mask) — Figure 16/17 style analyses read from here.
    async_indices:
        Old-trace gap indices treated as asynchronous submissions.
    method:
        Label (``"tracetracker"`` for the full pipeline).
    """

    trace: BlockTrace
    extraction: IdleExtraction
    async_indices: np.ndarray
    method: str

    @property
    def inferred_idle_us(self) -> np.ndarray:
        """Idle period the emulation slept after each request."""
        return self.extraction.tidle_us


class TraceTracker:
    """Hardware/software co-evaluation trace reconstructor.

    >>> from repro.storage import FlashArray
    >>> from repro.workloads import get_spec, generate_intents, collect_trace
    >>> from repro.storage import HDDModel
    >>> old = collect_trace(generate_intents(get_spec("MSNFS").scaled(500)), HDDModel())
    >>> result = TraceTracker().reconstruct(old, FlashArray())
    >>> len(result.trace) == len(old)
    True
    """

    method_name = "tracetracker"

    def __init__(self, config: TraceTrackerConfig | None = None) -> None:
        self.config = config or TraceTrackerConfig()

    def evaluate_software(self, old_trace: BlockTrace) -> IdleExtraction:
        """Run the software half only: infer the idle decomposition."""
        return extract_idle(
            old_trace,
            config=self.config.inference,
            prefer_measured=self.config.prefer_measured_tsdev,
        )

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> ReconstructionResult:
        """Remaster ``old_trace`` for the ``target`` storage system.

        Returns the reconstructed trace plus all intermediate artefacts.
        The old trace is not modified.
        """
        extraction = self.evaluate_software(old_trace)
        async_indices = detect_async_indices(extraction.tintt_us, extraction.tsdev_us)
        replay = replay_with_idle_batch(
            old_trace, target, idle_us=extraction.tidle_us, method=self.method_name
        )
        new_trace = replay.trace
        if self.config.postprocess:
            # An async submitter still pays the channel hand-off, so
            # each revived gap is floored at the request's measured
            # channel occupancy on the new device.
            channel_floor = np.maximum(
                replay.channel_delays()[:-1], self.config.min_async_gap_us
            )
            new_trace = revive_async(
                new_trace,
                async_indices,
                min_gap_us=channel_floor,
                old_gaps_us=extraction.tintt_us,
            )
        return ReconstructionResult(
            trace=new_trace,
            extraction=extraction,
            async_indices=async_indices,
            method=self.method_name,
        )
