"""The TraceTracker pipeline: infer → emulate → post-process.

This is the paper's primary contribution assembled from the substrates:

1. **software evaluation** — infer the old system's latency model from
   the trace alone (or read it off measured stamps when available) and
   decompose every inter-arrival gap into device time and idle time
   (:mod:`repro.inference`);
2. **hardware evaluation** — replay the request pattern on the target
   device, sleeping the inferred idle between requests, collecting the
   new trace blktrace-style (:mod:`repro.replay`);
3. **post-processing** — restore asynchronous-submission timing where
   the old trace shows the submitter cannot have waited
   (:mod:`repro.replay.postprocess`).

The stages themselves live in :mod:`repro.core.stages` as composable
objects; :class:`TraceTracker` wires them per its configuration and
offers both the classic whole-trace entry point and a streaming one
for chunked traces larger than memory.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from ..inference.idle import IdleExtraction
from ..storage.device import StorageDevice
from ..trace.trace import BlockTrace
from .config import TraceTrackerConfig
from .stages import (
    ReconstructionMetrics,
    StagedReconstructionPipeline,
    StreamedReconstruction,
    StreamingReconstructionSession,
)

__all__ = ["ReconstructionResult", "TraceTracker"]


@dataclass(frozen=True, slots=True)
class ReconstructionResult:
    """Everything a reconstruction run produced.

    Attributes
    ----------
    trace:
        The remastered block trace on the target device.
    extraction:
        The idle decomposition of the old trace (model, idle array,
        async mask) — Figure 16/17 style analyses read from here.
    async_indices:
        Old-trace gap indices treated as asynchronous submissions.
    method:
        Label (``"tracetracker"`` for the full pipeline).
    metrics:
        Aggregate numbers for the run (durations, idle slept, async
        revivals) from the metrics stage.
    """

    trace: BlockTrace
    extraction: IdleExtraction
    async_indices: np.ndarray
    method: str
    metrics: ReconstructionMetrics | None = field(default=None)

    @property
    def inferred_idle_us(self) -> np.ndarray:
        """Idle period the emulation slept after each request."""
        return self.extraction.tidle_us


class TraceTracker:
    """Hardware/software co-evaluation trace reconstructor.

    >>> from repro.storage import FlashArray
    >>> from repro.workloads import get_spec, generate_intents, collect_trace
    >>> from repro.storage import HDDModel
    >>> old = collect_trace(generate_intents(get_spec("MSNFS").scaled(500)), HDDModel())
    >>> result = TraceTracker().reconstruct(old, FlashArray())
    >>> len(result.trace) == len(old)
    True
    """

    method_name = "tracetracker"

    def __init__(self, config: TraceTrackerConfig | None = None) -> None:
        self.config = config or TraceTrackerConfig()
        self.pipeline = StagedReconstructionPipeline(self.config, method=self.method_name)

    def evaluate_software(self, old_trace: BlockTrace) -> IdleExtraction:
        """Run the software half only: infer the idle decomposition."""
        return self.pipeline.infer.run(old_trace)

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> ReconstructionResult:
        """Remaster ``old_trace`` for the ``target`` storage system.

        Returns the reconstructed trace plus all intermediate artefacts.
        The old trace is not modified.
        """
        new_trace, extraction, async_indices, metrics = self.pipeline.run(old_trace, target)
        return ReconstructionResult(
            trace=new_trace,
            extraction=extraction,
            async_indices=async_indices,
            method=self.method_name,
            metrics=metrics,
        )

    def reconstruct_stream(
        self, chunks: Iterable[BlockTrace], target: StorageDevice
    ) -> StreamedReconstruction:
        """Remaster a trace delivered as time-ordered chunks.

        ``chunks`` is any iterable of :class:`BlockTrace` segments —
        typically a :class:`~repro.trace.io.reader.TraceReader` over a
        file too large to materialise.  See
        :meth:`~repro.core.stages.StagedReconstructionPipeline.run_stream`
        for the carry-over semantics.
        """
        return self.pipeline.run_stream(chunks, target)

    def stream_session(self, target: StorageDevice) -> StreamingReconstructionSession:
        """A resumable chunk-at-a-time reconstruction session.

        The incremental form of :meth:`reconstruct_stream`: the
        streaming service (:mod:`repro.service`) feeds it chunks as
        they arrive and checkpoints its state between chunks, so a
        killed daemon resumes bit-identically.
        """
        return self.pipeline.stream_session(target)
