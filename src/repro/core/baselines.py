"""Baseline trace-reconstruction methods the paper compares against.

Five methods appear in the evaluation (Section V):

- ``Acceleration`` — divide all inter-arrival times by a constant
  factor (the paper borrows factor 100 from a flash-lifetime study);
- ``Revision`` — replay back-to-back on the target device;
- ``Fixed-th`` — replay, inferring idle with a single fixed
  threshold (the paper sweeps 10-100 ms on an HDD node and settles on
  10 ms);
- ``Dynamic`` — TraceTracker's inference-driven idle, but without the
  asynchronous post-processing;
- ``TraceTracker`` — the full pipeline
  (:class:`repro.core.pipeline.TraceTracker`).

All methods implement the same protocol — ``reconstruct(old_trace,
target) -> BlockTrace`` — so comparison harnesses treat them
uniformly.
"""

from __future__ import annotations

import abc

import numpy as np

from ..replay.batch import replay_back_to_back_batch, replay_with_idle_batch
from ..storage.device import StorageDevice
from ..trace.trace import BlockTrace
from .config import TraceTrackerConfig
from .pipeline import TraceTracker

__all__ = [
    "ReconstructionMethod",
    "Acceleration",
    "Revision",
    "FixedThreshold",
    "Dynamic",
    "TraceTrackerMethod",
    "standard_methods",
]


class ReconstructionMethod(abc.ABC):
    """Common protocol: old trace in, remastered trace out."""

    #: Display name used by benches and EXPERIMENTS.md tables.
    name: str = "method"

    @abc.abstractmethod
    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> BlockTrace:
        """Produce the remastered trace for the target device."""

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}(name={self.name!r})"


class Acceleration(ReconstructionMethod):
    """Static acceleration: every timestamp divided by a constant.

    No replay happens — the target device is ignored — which is
    precisely the method's weakness: :math:`T_{cdel}`, :math:`T_{sdev}`
    and :math:`T_{idle}` are all scaled indiscriminately.
    """

    def __init__(self, factor: float = 100.0) -> None:
        if factor <= 0:
            raise ValueError("acceleration factor must be positive")
        self.factor = factor
        self.name = f"acceleration-{factor:g}x"

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> BlockTrace:
        scaled = old_trace.rebased().timestamps / self.factor
        out = old_trace.with_timestamps(scaled)
        out.metadata["method"] = self.name
        return out


class Revision(ReconstructionMethod):
    """Back-to-back replay on the target device.

    Inter-arrival times become realistic for the new hardware, but all
    idleness and asynchronous overlap are dropped.
    """

    name = "revision"

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> BlockTrace:
        return replay_back_to_back_batch(old_trace, target, method=self.name).trace


class FixedThreshold(ReconstructionMethod):
    """Replay with threshold-inferred idle.

    Any old gap above the threshold is assumed to contain
    ``gap - threshold`` of idle; gaps below it are assumed to be pure
    service time.  The threshold stands in for the *worst-case* device
    latency of the old storage.
    """

    def __init__(self, threshold_us: float = 10_000.0) -> None:
        if threshold_us <= 0:
            raise ValueError("threshold must be positive")
        self.threshold_us = threshold_us
        self.name = f"fixed-th-{threshold_us / 1000:g}ms"

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> BlockTrace:
        gaps = old_trace.inter_arrival_times()
        idle = np.clip(gaps - self.threshold_us, 0.0, None)
        return replay_with_idle_batch(old_trace, target, idle_us=idle, method=self.name).trace


class Dynamic(ReconstructionMethod):
    """TraceTracker's inference-driven idle without post-processing."""

    name = "dynamic"

    def __init__(self, config: TraceTrackerConfig | None = None) -> None:
        base = config or TraceTrackerConfig()
        self._tracker = TraceTracker(
            TraceTrackerConfig(
                inference=base.inference,
                prefer_measured_tsdev=base.prefer_measured_tsdev,
                postprocess=False,
                min_async_gap_us=base.min_async_gap_us,
            )
        )

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> BlockTrace:
        trace = self._tracker.reconstruct(old_trace, target).trace
        trace.metadata["method"] = self.name
        return trace


class TraceTrackerMethod(ReconstructionMethod):
    """The full pipeline wrapped in the comparison protocol."""

    name = "tracetracker"

    def __init__(self, config: TraceTrackerConfig | None = None) -> None:
        self._tracker = TraceTracker(config)

    def reconstruct(self, old_trace: BlockTrace, target: StorageDevice) -> BlockTrace:
        return self._tracker.reconstruct(old_trace, target).trace


def standard_methods(
    acceleration_factor: float = 100.0,
    fixed_threshold_us: float = 10_000.0,
    config: TraceTrackerConfig | None = None,
) -> list[ReconstructionMethod]:
    """The paper's five methods with their published parameters."""
    return [
        Acceleration(acceleration_factor),
        Revision(),
        FixedThreshold(fixed_threshold_us),
        Dynamic(config),
        TraceTrackerMethod(config),
    ]
