"""The reconstruction pipeline as explicit, composable stages.

The monolithic ``TraceTracker.reconstruct`` decomposes into four stage
objects, each a small callable with one responsibility:

- :class:`InferStage` — software evaluation: decompose every old-trace
  gap into device time and idle time (measured or inferred model);
- :class:`EmulateStage` — hardware evaluation: replay the request
  pattern on the target device, sleeping the inferred idle;
- :class:`PostprocessStage` — restore asynchronous-submission timing
  where the old trace shows the submitter cannot have waited;
- :class:`MetricsStage` — summarise what the run did (durations, idle
  slept, async revivals) into :class:`ReconstructionMetrics`.

:class:`StagedReconstructionPipeline` composes them two ways:

- :meth:`~StagedReconstructionPipeline.reconstruct` runs a whole trace
  through all stages — exactly what :class:`~repro.core.pipeline.
  TraceTracker` has always done (the tracker now delegates here);
- :meth:`~StagedReconstructionPipeline.reconstruct_stream` consumes an
  iterator of :class:`~repro.trace.trace.BlockTrace` chunks (e.g. a
  :class:`~repro.trace.io.reader.TraceReader`), reconstructing each
  segment as it arrives with one request of carry-over so the
  chunk-boundary gaps are decomposed too.  Peak *working-set* memory
  (parse buffers, per-gap extraction arrays, replay state) is bounded
  by the chunk size; only the reconstructed output columns accumulate.

Streaming note: each chunk's replay starts from a cold target device,
so order-dependent simulator state (head position, write-buffer fill)
does not flow across chunk boundaries.  For gap-invariant devices the
chunked and whole-trace reconstructions agree to float rounding; for
gap-sensitive devices they differ exactly as two independent cold runs
would.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..inference.decompose import InferenceConfig
from ..inference.idle import IdleExtraction, extract_idle
from ..replay.batch import replay_with_idle_batch
from ..replay.postprocess import detect_async_indices, revive_async
from ..replay.replayer import ReplayResult
from ..storage.device import StorageDevice
from ..trace.trace import BlockTrace
from .config import TraceTrackerConfig

__all__ = [
    "InferStage",
    "EmulateStage",
    "PostprocessStage",
    "MetricsStage",
    "ReconstructionMetrics",
    "StagedReconstructionPipeline",
    "StreamedReconstruction",
]


@dataclass(frozen=True, slots=True)
class ReconstructionMetrics:
    """What one reconstruction run did, in numbers.

    Attributes
    ----------
    n_requests:
        Requests reconstructed.
    old_duration_us / new_duration_us:
        Trace spans before and after remastering.
    slept_idle_us:
        Total inferred idle the emulation preserved.
    n_async_gaps:
        Old-trace gaps classified as asynchronous submissions.
    used_measured_tsdev:
        ``True`` when the ":math:`T_{sdev}` known" fast path ran.
    n_chunks:
        Segments processed (1 for whole-trace runs).
    """

    n_requests: int
    old_duration_us: float
    new_duration_us: float
    slept_idle_us: float
    n_async_gaps: int
    used_measured_tsdev: bool
    n_chunks: int = 1

    @property
    def speedup(self) -> float:
        """Old span over new span (how much faster the new system is)."""
        if self.new_duration_us <= 0.0:
            return float("inf") if self.old_duration_us > 0 else 1.0
        return self.old_duration_us / self.new_duration_us


@dataclass(frozen=True, slots=True)
class InferStage:
    """Software evaluation: gap decomposition into T_sdev + T_idle."""

    config: InferenceConfig | None = None
    prefer_measured: bool = True

    def run(self, old_trace: BlockTrace) -> IdleExtraction:
        """Decompose every inter-arrival gap of ``old_trace``."""
        return extract_idle(
            old_trace, config=self.config, prefer_measured=self.prefer_measured
        )


@dataclass(frozen=True, slots=True)
class EmulateStage:
    """Hardware evaluation: replay the pattern with inferred idles."""

    method: str = "tracetracker"

    def run(
        self, old_trace: BlockTrace, target: StorageDevice, idle_us: np.ndarray
    ) -> ReplayResult:
        """Replay ``old_trace``'s pattern on ``target``, sleeping ``idle_us``."""
        return replay_with_idle_batch(old_trace, target, idle_us=idle_us, method=self.method)


@dataclass(frozen=True, slots=True)
class PostprocessStage:
    """Asynchronous-timing revival on the replayed trace."""

    min_async_gap_us: float = 1.0

    def run(
        self,
        replay: ReplayResult,
        extraction: IdleExtraction,
        async_indices: np.ndarray,
    ) -> BlockTrace:
        """Revive asynchronous submission gaps on the replayed trace."""
        # An async submitter still pays the channel hand-off, so each
        # revived gap is floored at the request's measured channel
        # occupancy on the new device.
        channel_floor = np.maximum(replay.channel_delays()[:-1], self.min_async_gap_us)
        return revive_async(
            replay.trace,
            async_indices,
            min_gap_us=channel_floor,
            old_gaps_us=extraction.tintt_us,
        )


@dataclass(frozen=True, slots=True)
class MetricsStage:
    """Summarise a reconstruction into :class:`ReconstructionMetrics`."""

    def run(
        self,
        old_trace: BlockTrace,
        new_trace: BlockTrace,
        extraction: IdleExtraction,
        async_indices: np.ndarray,
        n_chunks: int = 1,
    ) -> ReconstructionMetrics:
        """Fold the stage artefacts into one metrics record."""
        return ReconstructionMetrics(
            n_requests=len(new_trace),
            old_duration_us=old_trace.duration,
            new_duration_us=new_trace.duration,
            slept_idle_us=extraction.total_idle_us(),
            n_async_gaps=int(async_indices.size),
            used_measured_tsdev=extraction.used_measured_tsdev,
            n_chunks=n_chunks,
        )


@dataclass(frozen=True, slots=True)
class StreamedReconstruction:
    """Output of a chunked reconstruction run.

    The per-gap extraction arrays are not retained (that is the point
    of streaming); :attr:`metrics` carries the aggregate numbers.
    """

    trace: BlockTrace
    metrics: ReconstructionMetrics
    method: str


class StagedReconstructionPipeline:
    """Infer → emulate → post-process → metrics, whole or chunked.

    Built from a :class:`~repro.core.config.TraceTrackerConfig`; the
    whole-trace path performs the byte-identical sequence of operations
    the pre-stage ``TraceTracker.reconstruct`` performed.
    """

    def __init__(self, config: TraceTrackerConfig | None = None, method: str = "tracetracker") -> None:
        self.config = config or TraceTrackerConfig()
        self.method = method
        self.infer = InferStage(
            config=self.config.inference, prefer_measured=self.config.prefer_measured_tsdev
        )
        self.emulate = EmulateStage(method=method)
        self.postprocess = (
            PostprocessStage(min_async_gap_us=self.config.min_async_gap_us)
            if self.config.postprocess
            else None
        )
        self.metrics = MetricsStage()

    # -- whole-trace ---------------------------------------------------

    def run(
        self, old_trace: BlockTrace, target: StorageDevice
    ) -> tuple[BlockTrace, IdleExtraction, np.ndarray, ReconstructionMetrics]:
        """One pass over a whole trace; returns every stage artefact."""
        extraction = self.infer.run(old_trace)
        async_indices = detect_async_indices(extraction.tintt_us, extraction.tsdev_us)
        replay = self.emulate.run(old_trace, target, extraction.tidle_us)
        new_trace = replay.trace
        if self.postprocess is not None:
            new_trace = self.postprocess.run(replay, extraction, async_indices)
        metrics = self.metrics.run(old_trace, new_trace, extraction, async_indices)
        return new_trace, extraction, async_indices, metrics

    # -- chunked -------------------------------------------------------

    def run_stream(
        self, chunks: Iterable[BlockTrace], target: StorageDevice
    ) -> StreamedReconstruction:
        """Reconstruct a trace delivered as time-ordered segments.

        Each chunk is processed with the previous chunk's last request
        prepended (the *carry*), so the boundary gap gets the same
        idle decomposition an uncut trace would give it; the carry's
        replayed copy is then dropped and the segment is spliced onto
        the output timeline at the carry's already-emitted submit time.
        """
        pieces: list[BlockTrace] = []
        carry: BlockTrace | None = None
        pending: BlockTrace | None = None  # undersized head segments
        splice_at = 0.0
        old_duration = 0.0
        old_start: float | None = None
        slept = 0.0
        n_async = 0
        used_measured = True
        n_chunks = 0
        for chunk in chunks:
            if len(chunk) == 0:
                continue
            if old_start is None:
                old_start = float(chunk.timestamps[0])
            old_duration = float(chunk.timestamps[-1]) - old_start
            if pending is not None:
                chunk = pending.concat(chunk)
                pending = None
            work = chunk if carry is None else carry.concat(chunk)
            if len(work) < 2:
                # A 1-request stream head cannot be decomposed yet;
                # fold it into the next chunk (carry stays unset — the
                # request is still waiting to be reconstructed).
                pending = work
                continue
            n_chunks += 1
            extraction = self.infer.run(work)
            async_indices = detect_async_indices(extraction.tintt_us, extraction.tsdev_us)
            replay = self.emulate.run(work, target, extraction.tidle_us)
            new_work = replay.trace
            if self.postprocess is not None:
                new_work = self.postprocess.run(replay, extraction, async_indices)
            if carry is None:
                piece = new_work
            else:
                # Drop the carry's replayed copy; keep the boundary gap
                # by aligning the carry at its previously-emitted time.
                piece = new_work.select(slice(1, None)).shifted(
                    splice_at - float(new_work.timestamps[0])
                )
            # Each gap is decomposed exactly once: work_k's gaps are
            # chunk_k's internal gaps plus the one boundary gap its
            # carry introduces, and the carry advances every round.
            slept += float(extraction.tidle_us.sum())
            n_async += int(np.count_nonzero(extraction.async_mask))
            used_measured = used_measured and extraction.used_measured_tsdev
            pieces.append(piece)
            splice_at = float(piece.timestamps[-1])
            carry = chunk.select(slice(-1, None))
        if pending is not None:
            # The whole stream held a single request: replay it bare.
            replay = self.emulate.run(pending, target, np.zeros(len(pending)))
            pieces.append(replay.trace)
            n_chunks += 1
        if not pieces:
            raise ValueError("cannot reconstruct an empty stream")
        out = BlockTrace.concat_all(pieces)
        metrics = ReconstructionMetrics(
            n_requests=len(out),
            old_duration_us=old_duration,
            new_duration_us=out.duration,
            slept_idle_us=slept,
            n_async_gaps=n_async,
            used_measured_tsdev=used_measured,
            n_chunks=n_chunks,
        )
        return StreamedReconstruction(trace=out, metrics=metrics, method=self.method)
