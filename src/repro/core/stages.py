"""The reconstruction pipeline as explicit, composable stages.

The monolithic ``TraceTracker.reconstruct`` decomposes into four stage
objects, each a small callable with one responsibility:

- :class:`InferStage` — software evaluation: decompose every old-trace
  gap into device time and idle time (measured or inferred model);
- :class:`EmulateStage` — hardware evaluation: replay the request
  pattern on the target device, sleeping the inferred idle;
- :class:`PostprocessStage` — restore asynchronous-submission timing
  where the old trace shows the submitter cannot have waited;
- :class:`MetricsStage` — summarise what the run did (durations, idle
  slept, async revivals) into :class:`ReconstructionMetrics`.

:class:`StagedReconstructionPipeline` composes them two ways:

- :meth:`~StagedReconstructionPipeline.reconstruct` runs a whole trace
  through all stages — exactly what :class:`~repro.core.pipeline.
  TraceTracker` has always done (the tracker now delegates here);
- :meth:`~StagedReconstructionPipeline.reconstruct_stream` consumes an
  iterator of :class:`~repro.trace.trace.BlockTrace` chunks (e.g. a
  :class:`~repro.trace.io.reader.TraceReader`), reconstructing each
  segment as it arrives with one request of carry-over so the
  chunk-boundary gaps are decomposed too.  Peak *working-set* memory
  (parse buffers, per-gap extraction arrays, replay state) is bounded
  by the chunk size; only the reconstructed output columns accumulate.

Streaming note: each chunk's replay starts from a cold target device,
so order-dependent simulator state (head position, write-buffer fill)
does not flow across chunk boundaries.  For gap-invariant devices the
chunked and whole-trace reconstructions agree to float rounding; for
gap-sensitive devices they differ exactly as two independent cold runs
would.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..inference.decompose import InferenceConfig
from ..inference.idle import IdleExtraction, extract_idle
from ..replay.batch import replay_with_idle_batch
from ..replay.postprocess import detect_async_indices, revive_async
from ..replay.replayer import ReplayResult
from ..storage.device import StorageDevice
from ..trace.trace import BlockTrace
from .config import TraceTrackerConfig

__all__ = [
    "InferStage",
    "EmulateStage",
    "PostprocessStage",
    "MetricsStage",
    "ReconstructionMetrics",
    "StagedReconstructionPipeline",
    "StreamedReconstruction",
    "StreamingReconstructionSession",
]


@dataclass(frozen=True, slots=True)
class ReconstructionMetrics:
    """What one reconstruction run did, in numbers.

    Attributes
    ----------
    n_requests:
        Requests reconstructed.
    old_duration_us / new_duration_us:
        Trace spans before and after remastering.
    slept_idle_us:
        Total inferred idle the emulation preserved.
    n_async_gaps:
        Old-trace gaps classified as asynchronous submissions.
    used_measured_tsdev:
        ``True`` when the ":math:`T_{sdev}` known" fast path ran.
    n_chunks:
        Segments processed (1 for whole-trace runs).
    """

    n_requests: int
    old_duration_us: float
    new_duration_us: float
    slept_idle_us: float
    n_async_gaps: int
    used_measured_tsdev: bool
    n_chunks: int = 1

    @property
    def speedup(self) -> float:
        """Old span over new span (how much faster the new system is)."""
        if self.new_duration_us <= 0.0:
            return float("inf") if self.old_duration_us > 0 else 1.0
        return self.old_duration_us / self.new_duration_us


@dataclass(frozen=True, slots=True)
class InferStage:
    """Software evaluation: gap decomposition into T_sdev + T_idle."""

    config: InferenceConfig | None = None
    prefer_measured: bool = True

    def run(self, old_trace: BlockTrace) -> IdleExtraction:
        """Decompose every inter-arrival gap of ``old_trace``."""
        return extract_idle(
            old_trace, config=self.config, prefer_measured=self.prefer_measured
        )


@dataclass(frozen=True, slots=True)
class EmulateStage:
    """Hardware evaluation: replay the pattern with inferred idles."""

    method: str = "tracetracker"

    def run(
        self, old_trace: BlockTrace, target: StorageDevice, idle_us: np.ndarray
    ) -> ReplayResult:
        """Replay ``old_trace``'s pattern on ``target``, sleeping ``idle_us``."""
        return replay_with_idle_batch(old_trace, target, idle_us=idle_us, method=self.method)


@dataclass(frozen=True, slots=True)
class PostprocessStage:
    """Asynchronous-timing revival on the replayed trace."""

    min_async_gap_us: float = 1.0

    def run(
        self,
        replay: ReplayResult,
        extraction: IdleExtraction,
        async_indices: np.ndarray,
    ) -> BlockTrace:
        """Revive asynchronous submission gaps on the replayed trace."""
        # An async submitter still pays the channel hand-off, so each
        # revived gap is floored at the request's measured channel
        # occupancy on the new device.
        channel_floor = np.maximum(replay.channel_delays()[:-1], self.min_async_gap_us)
        return revive_async(
            replay.trace,
            async_indices,
            min_gap_us=channel_floor,
            old_gaps_us=extraction.tintt_us,
        )


@dataclass(frozen=True, slots=True)
class MetricsStage:
    """Summarise a reconstruction into :class:`ReconstructionMetrics`."""

    def run(
        self,
        old_trace: BlockTrace,
        new_trace: BlockTrace,
        extraction: IdleExtraction,
        async_indices: np.ndarray,
        n_chunks: int = 1,
    ) -> ReconstructionMetrics:
        """Fold the stage artefacts into one metrics record."""
        return ReconstructionMetrics(
            n_requests=len(new_trace),
            old_duration_us=old_trace.duration,
            new_duration_us=new_trace.duration,
            slept_idle_us=extraction.total_idle_us(),
            n_async_gaps=int(async_indices.size),
            used_measured_tsdev=extraction.used_measured_tsdev,
            n_chunks=n_chunks,
        )


@dataclass(frozen=True, slots=True)
class StreamedReconstruction:
    """Output of a chunked reconstruction run.

    The per-gap extraction arrays are not retained (that is the point
    of streaming); :attr:`metrics` carries the aggregate numbers.
    """

    trace: BlockTrace
    metrics: ReconstructionMetrics
    method: str


class StagedReconstructionPipeline:
    """Infer → emulate → post-process → metrics, whole or chunked.

    Built from a :class:`~repro.core.config.TraceTrackerConfig`; the
    whole-trace path performs the byte-identical sequence of operations
    the pre-stage ``TraceTracker.reconstruct`` performed.
    """

    def __init__(self, config: TraceTrackerConfig | None = None, method: str = "tracetracker") -> None:
        self.config = config or TraceTrackerConfig()
        self.method = method
        self.infer = InferStage(
            config=self.config.inference, prefer_measured=self.config.prefer_measured_tsdev
        )
        self.emulate = EmulateStage(method=method)
        self.postprocess = (
            PostprocessStage(min_async_gap_us=self.config.min_async_gap_us)
            if self.config.postprocess
            else None
        )
        self.metrics = MetricsStage()

    # -- whole-trace ---------------------------------------------------

    def run(
        self, old_trace: BlockTrace, target: StorageDevice
    ) -> tuple[BlockTrace, IdleExtraction, np.ndarray, ReconstructionMetrics]:
        """One pass over a whole trace; returns every stage artefact."""
        extraction = self.infer.run(old_trace)
        async_indices = detect_async_indices(extraction.tintt_us, extraction.tsdev_us)
        replay = self.emulate.run(old_trace, target, extraction.tidle_us)
        new_trace = replay.trace
        if self.postprocess is not None:
            new_trace = self.postprocess.run(replay, extraction, async_indices)
        metrics = self.metrics.run(old_trace, new_trace, extraction, async_indices)
        return new_trace, extraction, async_indices, metrics

    # -- chunked -------------------------------------------------------

    def stream_session(self, target: StorageDevice) -> "StreamingReconstructionSession":
        """A resumable chunk-at-a-time driver bound to ``target``.

        The session form of :meth:`run_stream`: feed it chunks one at a
        time, collect the emitted pieces as they appear, and checkpoint
        its :meth:`~StreamingReconstructionSession.state_dict` between
        chunks — the substrate of the always-on streaming service.
        """
        return StreamingReconstructionSession(self, target)

    def run_stream(
        self, chunks: Iterable[BlockTrace], target: StorageDevice
    ) -> StreamedReconstruction:
        """Reconstruct a trace delivered as time-ordered segments.

        Each chunk is processed with the previous chunk's last request
        prepended (the *carry*), so the boundary gap gets the same
        idle decomposition an uncut trace would give it; the carry's
        replayed copy is then dropped and the segment is spliced onto
        the output timeline at the carry's already-emitted submit time.
        """
        session = self.stream_session(target)
        pieces: list[BlockTrace] = []
        for chunk in chunks:
            piece = session.feed(chunk)
            if piece is not None:
                pieces.append(piece)
        tail = session.finish()
        if tail is not None:
            pieces.append(tail)
        if not pieces:
            raise ValueError("cannot reconstruct an empty stream")
        out = BlockTrace.concat_all(pieces)
        return StreamedReconstruction(
            trace=out, metrics=session.metrics(), method=self.method
        )


def _trace_to_state(trace: BlockTrace | None) -> dict | None:
    """JSON-able columns of a (tiny) carry/pending trace.

    Floats round-trip exactly: ``json`` serialises via ``repr``, which
    emits the shortest string that parses back to the same binary64 —
    so a restored session replays bit-identically.
    """
    if trace is None:
        return None
    return {
        "timestamps": trace.timestamps.tolist(),
        "lbas": trace.lbas.tolist(),
        "sizes": trace.sizes.tolist(),
        "ops": trace.ops.tolist(),
        "issues": None if trace.issues is None else trace.issues.tolist(),
        "completes": None if trace.completes is None else trace.completes.tolist(),
        "syncs": None if trace.syncs is None else trace.syncs.tolist(),
        "name": trace.name,
        "metadata": dict(trace.metadata),
    }


def _trace_from_state(state: dict | None) -> BlockTrace | None:
    """Rebuild a carry/pending trace from :func:`_trace_to_state`."""
    if state is None:
        return None
    return BlockTrace(
        timestamps=state["timestamps"],
        lbas=state["lbas"],
        sizes=state["sizes"],
        ops=state["ops"],
        issues=state["issues"],
        completes=state["completes"],
        syncs=state["syncs"],
        name=state["name"],
        metadata=state["metadata"],
    )


class StreamingReconstructionSession:
    """Chunk-at-a-time reconstruction with checkpointable state.

    Drives the same carry-one-request algorithm as
    :meth:`StagedReconstructionPipeline.run_stream`, but incrementally:
    :meth:`feed` consumes one chunk and returns the reconstructed
    piece already spliced onto the output timeline (or ``None`` while
    the stream is still too short to decompose), :meth:`finish` flushes
    a single-request stream, and :meth:`metrics` folds the running
    aggregates into the same :class:`ReconstructionMetrics` the batch
    path computes — bit-identical, because the operations are the same
    ones in the same order.

    The whole cross-chunk state is the carried request plus a handful
    of scalars; :meth:`state_dict` serialises it to a JSON-able dict
    and :meth:`load_state` restores it, so a process SIGKILLed between
    chunks resumes with output bit-identical to an uninterrupted run.
    State commits only after a chunk fully reconstructs — a chunk that
    raises mid-flight leaves the session unchanged and retryable.
    """

    #: Version stamp carried by :meth:`state_dict` documents.
    STATE_VERSION = 1

    def __init__(
        self, pipeline: StagedReconstructionPipeline, target: StorageDevice
    ) -> None:
        self.pipeline = pipeline
        self.target = target
        self._carry: BlockTrace | None = None
        self._pending: BlockTrace | None = None  # undersized head segments
        self._splice_at = 0.0
        self._old_duration = 0.0
        self._old_start: float | None = None
        self._slept = 0.0
        self._n_async = 0
        self._used_measured = True
        self._n_chunks = 0
        self._n_requests = 0
        self._out_start: float | None = None
        self._out_last: float | None = None

    # -- driving -------------------------------------------------------

    def feed(self, chunk: BlockTrace) -> BlockTrace | None:
        """Consume one time-ordered chunk; return the emitted piece.

        Returns ``None`` for empty chunks and while the stream head is
        still a single request (folded into the next chunk).  The
        returned piece is final — already shifted to its splice point —
        and is never revised by later chunks.
        """
        if len(chunk) == 0:
            return None
        old_start = (
            float(chunk.timestamps[0]) if self._old_start is None else self._old_start
        )
        old_duration = float(chunk.timestamps[-1]) - old_start
        if self._pending is not None:
            chunk = self._pending.concat(chunk)
        work = chunk if self._carry is None else self._carry.concat(chunk)
        if len(work) < 2:
            # A 1-request stream head cannot be decomposed yet; fold it
            # into the next chunk (carry stays unset — the request is
            # still waiting to be reconstructed).
            self._old_start = old_start
            self._old_duration = old_duration
            self._pending = work
            return None
        extraction = self.pipeline.infer.run(work)
        async_indices = detect_async_indices(extraction.tintt_us, extraction.tsdev_us)
        replay = self.pipeline.emulate.run(work, self.target, extraction.tidle_us)
        new_work = replay.trace
        if self.pipeline.postprocess is not None:
            new_work = self.pipeline.postprocess.run(replay, extraction, async_indices)
        if self._carry is None:
            piece = new_work
        else:
            # Drop the carry's replayed copy; keep the boundary gap by
            # aligning the carry at its previously-emitted time.
            piece = new_work.select(slice(1, None)).shifted(
                self._splice_at - float(new_work.timestamps[0])
            )
        # The chunk fully reconstructed — commit the session state.
        # Each gap is decomposed exactly once: work_k's gaps are
        # chunk_k's internal gaps plus the one boundary gap its carry
        # introduces, and the carry advances every round.
        self._old_start = old_start
        self._old_duration = old_duration
        self._pending = None
        self._n_chunks += 1
        self._slept += float(extraction.tidle_us.sum())
        self._n_async += int(np.count_nonzero(extraction.async_mask))
        self._used_measured = self._used_measured and extraction.used_measured_tsdev
        self._splice_at = float(piece.timestamps[-1])
        self._carry = chunk.select(slice(-1, None))
        self._record_piece(piece)
        return piece

    def finish(self) -> BlockTrace | None:
        """Flush a stream that ended while still a single request.

        Returns the bare replay of the held request, or ``None`` when
        there is nothing pending (the common case).  Idempotent.
        """
        if self._pending is None:
            return None
        # The whole stream held a single request: replay it bare.
        replay = self.pipeline.emulate.run(
            self._pending, self.target, np.zeros(len(self._pending))
        )
        piece = replay.trace
        self._pending = None
        self._n_chunks += 1
        self._record_piece(piece)
        return piece

    def _record_piece(self, piece: BlockTrace) -> None:
        """Track output extent/counters for incremental metrics."""
        self._n_requests += len(piece)
        if self._out_start is None:
            self._out_start = float(piece.timestamps[0])
        self._out_last = float(piece.timestamps[-1])

    # -- aggregates ----------------------------------------------------

    @property
    def n_chunks(self) -> int:
        """Segments reconstructed so far."""
        return self._n_chunks

    @property
    def n_requests(self) -> int:
        """Requests emitted so far."""
        return self._n_requests

    def metrics(self) -> ReconstructionMetrics:
        """The running aggregates as :class:`ReconstructionMetrics`.

        Matches what :meth:`StagedReconstructionPipeline.run_stream`
        computes over the concatenated output — the duration is the
        same two floats subtracted, the counters the same sums.
        """
        if self._n_requests == 0:
            raise ValueError("cannot reconstruct an empty stream")
        if self._n_requests < 2 or self._out_start is None or self._out_last is None:
            new_duration = 0.0
        else:
            new_duration = self._out_last - self._out_start
        return ReconstructionMetrics(
            n_requests=self._n_requests,
            old_duration_us=self._old_duration,
            new_duration_us=new_duration,
            slept_idle_us=self._slept,
            n_async_gaps=self._n_async,
            used_measured_tsdev=self._used_measured,
            n_chunks=self._n_chunks,
        )

    # -- checkpointing -------------------------------------------------

    def state_dict(self) -> dict:
        """The full cross-chunk state as a JSON-able dict."""
        return {
            "version": self.STATE_VERSION,
            "carry": _trace_to_state(self._carry),
            "pending": _trace_to_state(self._pending),
            "splice_at": self._splice_at,
            "old_duration": self._old_duration,
            "old_start": self._old_start,
            "slept": self._slept,
            "n_async": self._n_async,
            "used_measured": self._used_measured,
            "n_chunks": self._n_chunks,
            "n_requests": self._n_requests,
            "out_start": self._out_start,
            "out_last": self._out_last,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot onto this session."""
        if state.get("version") != self.STATE_VERSION:
            raise ValueError(
                f"unsupported stream-session state version {state.get('version')!r}"
            )
        self._carry = _trace_from_state(state["carry"])
        self._pending = _trace_from_state(state["pending"])
        self._splice_at = float(state["splice_at"])
        self._old_duration = float(state["old_duration"])
        self._old_start = None if state["old_start"] is None else float(state["old_start"])
        self._slept = float(state["slept"])
        self._n_async = int(state["n_async"])
        self._used_measured = bool(state["used_measured"])
        self._n_chunks = int(state["n_chunks"])
        self._n_requests = int(state["n_requests"])
        self._out_start = None if state["out_start"] is None else float(state["out_start"])
        self._out_last = None if state["out_last"] is None else float(state["out_last"])
