"""Configuration of the TraceTracker reconstruction pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..inference.decompose import InferenceConfig

__all__ = ["TraceTrackerConfig"]


@dataclass(frozen=True, slots=True)
class TraceTrackerConfig:
    """End-to-end pipeline options.

    Attributes
    ----------
    inference:
        Tunables of the software-evaluation (inference) stage.
    prefer_measured_tsdev:
        When the old trace carries issue/completion stamps (MSPS/MSRC
        style), use them directly and skip device-time inference — the
        paper's ":math:`T_{sdev}` known" fast path.
    postprocess:
        Run the asynchronous-mode revival after replay.  Disabling this
        yields the paper's ``Dynamic`` comparison method.
    min_async_gap_us:
        Floor for gaps tightened by post-processing (a submission still
        needs a sliver of host time).
    """

    inference: InferenceConfig = field(default_factory=InferenceConfig)
    prefer_measured_tsdev: bool = True
    postprocess: bool = True
    min_async_gap_us: float = 1.0

    def __post_init__(self) -> None:
        if self.min_async_gap_us < 0:
            raise ValueError("min_async_gap_us must be non-negative")
