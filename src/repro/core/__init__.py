"""TraceTracker core: pipeline, configuration, and baseline methods."""

from .baselines import (
    Acceleration,
    Dynamic,
    FixedThreshold,
    ReconstructionMethod,
    Revision,
    TraceTrackerMethod,
    standard_methods,
)
from .config import TraceTrackerConfig
from .pipeline import ReconstructionResult, TraceTracker
from .stages import (
    EmulateStage,
    InferStage,
    MetricsStage,
    PostprocessStage,
    ReconstructionMetrics,
    StagedReconstructionPipeline,
    StreamedReconstruction,
    StreamingReconstructionSession,
)

__all__ = [
    "Acceleration",
    "Dynamic",
    "FixedThreshold",
    "ReconstructionMethod",
    "Revision",
    "TraceTrackerMethod",
    "standard_methods",
    "TraceTrackerConfig",
    "ReconstructionResult",
    "TraceTracker",
    "InferStage",
    "EmulateStage",
    "PostprocessStage",
    "MetricsStage",
    "ReconstructionMetrics",
    "StagedReconstructionPipeline",
    "StreamedReconstruction",
    "StreamingReconstructionSession",
]
