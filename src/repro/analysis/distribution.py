"""Empirical distribution primitives: CDFs and the discrete "PDF" of Algorithm 1.

Two distinct notions of density appear in the paper:

- The **empirical CDF** of inter-arrival times, :math:`CDF(T_{intt})`,
  whose steepest rise locates the I/O subsystem latency.  Modelled by
  :class:`EmpiricalCDF`.
- The **discrete probability mass** used by Algorithm 1, where
  ``PDF(Ti) = num(Ti) / num(request)`` counts *exact* repetitions of an
  inter-arrival value.  Modelled by :class:`DiscretePMF`.  On quantised
  trace timestamps this mass function is meaningful: a storage system
  that services most 8-sector reads in, say, 210 µs produces a tall
  spike at 210 µs.

Both are cheap, immutable, NumPy-backed objects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EmpiricalCDF",
    "DiscretePMF",
    "quantize",
    "log_spaced_grid",
    "cdf_shape_class",
]


def quantize(values: np.ndarray, resolution: float) -> np.ndarray:
    """Round ``values`` to multiples of ``resolution``.

    Trace timestamps carry finite precision (blktrace records
    nanoseconds; the public traces microseconds or coarser).  Before
    building a :class:`DiscretePMF` the analysis quantises inter-arrival
    times so that near-identical latencies collapse onto one atom, just
    as they do in the published trace files.
    """
    if resolution <= 0:
        raise ValueError("resolution must be positive")
    return np.round(np.asarray(values, dtype=np.float64) / resolution) * resolution


def log_spaced_grid(lo: float, hi: float, points_per_decade: int = 64) -> np.ndarray:
    """Logarithmically spaced evaluation grid covering ``[lo, hi]``.

    Inter-arrival times span 8+ orders of magnitude (sub-µs channel
    delays to 100 s idles); every CDF plot in the paper uses a log
    x-axis, so analyses sample on a log grid.
    """
    if lo <= 0 or hi <= 0:
        raise ValueError("log grid bounds must be positive")
    if hi < lo:
        raise ValueError("upper bound below lower bound")
    if hi == lo:
        return np.array([lo])
    n = max(2, int(np.ceil(np.log10(hi / lo) * points_per_decade)))
    return np.logspace(np.log10(lo), np.log10(hi), n)


class EmpiricalCDF:
    """Right-continuous empirical CDF of a one-dimensional sample.

    Evaluation uses binary search, so querying a grid of ``m`` points on
    ``n`` samples costs ``O(m log n)``.
    """

    __slots__ = ("samples", "_n")

    def __init__(self, samples: np.ndarray) -> None:
        data = np.asarray(samples, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        if np.any(~np.isfinite(data)):
            raise ValueError("samples must be finite")
        self.samples = np.sort(data)
        self._n = data.size

    def __len__(self) -> int:
        return self._n

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate :math:`P(X \\le x)` at scalar or array ``x``."""
        result = np.searchsorted(self.samples, np.asarray(x, dtype=np.float64), side="right")
        out = result / self._n
        return float(out) if np.isscalar(x) or np.ndim(x) == 0 else out

    def quantile(self, q: np.ndarray | float) -> np.ndarray | float:
        """Inverse CDF (lower quantile) for ``q`` in [0, 1]."""
        q_arr = np.asarray(q, dtype=np.float64)
        if np.any((q_arr < 0) | (q_arr > 1)):
            raise ValueError("quantile levels must lie in [0, 1]")
        idx = np.clip(np.ceil(q_arr * self._n).astype(int) - 1, 0, self._n - 1)
        out = self.samples[idx]
        return float(out) if np.isscalar(q) or np.ndim(q) == 0 else out

    @property
    def min(self) -> float:
        """Smallest sample."""
        return float(self.samples[0])

    @property
    def max(self) -> float:
        """Largest sample."""
        return float(self.samples[-1])

    def support_grid(self, points_per_decade: int = 64) -> np.ndarray:
        """Log-spaced grid spanning the positive part of the support.

        Non-positive samples (possible for degenerate zero gaps) are
        clamped to the smallest positive sample, or 1e-3 µs when all
        samples are zero.
        """
        positive = self.samples[self.samples > 0]
        lo = float(positive[0]) if positive.size else 1e-3
        hi = max(float(self.samples[-1]), lo)
        return log_spaced_grid(lo, hi, points_per_decade)

    def evaluate_on(self, grid: np.ndarray) -> np.ndarray:
        """CDF values on an explicit grid (convenience for plotting)."""
        return np.asarray(self(grid), dtype=np.float64)

    def knots(self) -> tuple[np.ndarray, np.ndarray]:
        """Distinct sample values and CDF heights at them.

        These (x, y) pairs are the natural interpolation knots for the
        steepness analysis: strictly increasing x, non-decreasing y with
        ``y[-1] == 1``.
        """
        xs, counts = np.unique(self.samples, return_counts=True)
        ys = np.cumsum(counts) / self._n
        return xs, ys


@dataclass(frozen=True, slots=True)
class DiscretePMF:
    """Probability mass on distinct sample values.

    ``masses[i]`` is ``num(values[i]) / n`` exactly as Algorithm 1 line 2
    computes it.  ``values`` is strictly increasing.
    """

    values: np.ndarray
    masses: np.ndarray
    n: int

    @classmethod
    def from_samples(cls, samples: np.ndarray, resolution: float | None = None) -> "DiscretePMF":
        """Build the PMF, optionally quantising first.

        ``resolution=None`` keeps raw values (already-quantised traces);
        otherwise samples are rounded to multiples of ``resolution``.
        """
        data = np.asarray(samples, dtype=np.float64)
        if data.size == 0:
            raise ValueError("cannot build a PMF from an empty sample")
        if resolution is not None:
            data = quantize(data, resolution)
        values, counts = np.unique(data, return_counts=True)
        return cls(values=values, masses=counts / data.size, n=int(data.size))

    def __len__(self) -> int:
        return len(self.values)

    def mode(self) -> float:
        """Value with the largest mass (ties: smallest value)."""
        return float(self.values[int(np.argmax(self.masses))])

    def mass_at(self, value: float) -> float:
        """Mass at exactly ``value`` (0 when absent)."""
        idx = np.searchsorted(self.values, value)
        if idx < len(self.values) and self.values[idx] == value:
            return float(self.masses[idx])
        return 0.0

    def entropy(self) -> float:
        """Shannon entropy in nats; 0 for a single atom.

        Used by tests as a dispersion summary: unimodal service-time
        groups have low entropy, idle-dominated groups high entropy.
        """
        m = self.masses[self.masses > 0]
        return float(-(m * np.log(m)).sum())


def cdf_shape_class(
    cdf: EmpiricalCDF,
    points_per_decade: int = 48,
    window_decades: float = 0.5,
    global_rise: float = 0.5,
    mode_rise: float = 0.3,
) -> str:
    """Classify a CDF curve into the paper's Figure 5 shape classes.

    Returns one of:

    - ``"global-maxima"`` — a single dominant rise: at least
      ``global_rise`` of the probability mass accumulates within one
      ``±window_decades`` window (Figure 5a);
    - ``"multi-maxima"`` — two or more disjoint windows each capture at
      least ``mode_rise`` of the mass (Figure 5c);
    - ``"chunky-middle"`` — neither: the mass accumulates gradually
      with no concentrated mode (Figure 5b).

    The paper uses the classes as motivation rather than as an
    algorithm; this implementation makes them deterministic (windowed
    rise concentration in log-x space) so the Figure 5 bench and the
    unit tests can assert on them.
    """
    grid = cdf.support_grid(points_per_decade)
    if grid.size < 5:
        return "global-maxima"
    y = cdf.evaluate_on(grid)
    logx = np.log10(grid)
    # Rise captured by a window of ±window_decades centred at each point.
    left = np.searchsorted(logx, logx - window_decades, side="left")
    right = np.searchsorted(logx, logx + window_decades, side="right") - 1
    rises = y[right] - y[left]
    # Greedily pick disjoint windows by descending captured rise.
    order = np.argsort(-rises, kind="stable")
    picked: list[tuple[float, float]] = []  # (center_logx, rise)
    for i in order:
        center = logx[i]
        if rises[i] < mode_rise:
            break
        if all(abs(center - c) >= 2 * window_decades for c, _ in picked):
            picked.append((center, float(rises[i])))
        if len(picked) >= 3:
            break
    if picked and picked[0][1] >= global_rise and len(picked) == 1:
        return "global-maxima"
    if len(picked) >= 2:
        return "multi-maxima"
    if picked and picked[0][1] >= global_rise:
        return "global-maxima"
    return "chunky-middle"
