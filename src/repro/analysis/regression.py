"""Linear fits and outlier margins used by Algorithm 1.

Algorithm 1 of the paper fits a straight line through the points
``(T_i, PDF(T_i))`` and flags points far above the line as outliers.
The pseudocode computes the fit as::

    slope     = std(PDF(T)) / std(T)
    intercept = mean(PDF(T)) - slope * mean(T)

which is *not* ordinary least squares — it is the standard-deviation
line (OLS slope equals ``r * std(y)/std(x)``; the paper drops the
correlation factor ``r``).  We implement both:

- :func:`paper_line_fit` — the exact pseudocode, used by default so the
  reproduction matches the published algorithm, and
- :func:`least_squares_fit` — textbook OLS, offered for the ablation
  bench that quantifies how much the simplification matters.

Both return a :class:`LineFit` with slope/intercept and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LineFit", "paper_line_fit", "least_squares_fit", "outlier_margin", "find_outliers"]


@dataclass(frozen=True, slots=True)
class LineFit:
    """A fitted straight line ``f(x) = slope * x + intercept``."""

    slope: float
    intercept: float

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the line."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    def residuals(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Signed vertical distances ``y - f(x)``."""
        return np.asarray(y, dtype=np.float64) - self(np.asarray(x))


def paper_line_fit(x: np.ndarray, y: np.ndarray) -> LineFit:
    """The line fit exactly as Algorithm 1 lines 4-6 specify.

    ``slope = std(y)/std(x)`` (population std), ``intercept`` chosen so
    the line passes through the sample means.  Degenerate inputs
    (constant ``x``) produce a horizontal line through ``mean(y)``.
    """
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have equal length")
    if x_arr.size == 0:
        raise ValueError("cannot fit a line to an empty sample")
    sx = float(np.std(x_arr))
    sy = float(np.std(y_arr))
    slope = sy / sx if sx > 0 else 0.0
    intercept = float(np.mean(y_arr)) - slope * float(np.mean(x_arr))
    return LineFit(slope=slope, intercept=intercept)


def least_squares_fit(x: np.ndarray, y: np.ndarray) -> LineFit:
    """Ordinary least squares line fit (for the ablation comparison)."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have equal length")
    if x_arr.size == 0:
        raise ValueError("cannot fit a line to an empty sample")
    sx = float(np.std(x_arr))
    if sx == 0:
        return LineFit(slope=0.0, intercept=float(np.mean(y_arr)))
    cov = float(np.mean((x_arr - x_arr.mean()) * (y_arr - y_arr.mean())))
    slope = cov / (sx * sx)
    intercept = float(np.mean(y_arr)) - slope * float(np.mean(x_arr))
    return LineFit(slope=slope, intercept=intercept)


def outlier_margin(y: np.ndarray, factor: float = 0.5) -> float:
    """Algorithm 1 line 7: ``margin = var(PDF(T)) * factor``.

    The paper sets the margin to half the variance.  ``factor`` is
    exposed for the margin-sweep ablation bench.
    """
    if factor < 0:
        raise ValueError("margin factor must be non-negative")
    return float(np.var(np.asarray(y, dtype=np.float64))) * factor


def find_outliers(
    x: np.ndarray,
    y: np.ndarray,
    fit: LineFit,
    margin: float,
) -> np.ndarray:
    """Indices of points lying more than ``margin`` *above* the fit line.

    Algorithm 1 lines 8-13: a point is an outlier when
    ``PDF(T_i) - f(T_i) > margin``.  Only upward deviations count —
    latency modes create spikes above the trend, never below.
    """
    residuals = fit.residuals(np.asarray(x), np.asarray(y))
    return np.flatnonzero(residuals > margin)
