"""Algorithm 1: CDF steepness examination through PDF outliers.

The inference model must find, among many per-request-size CDFs of
:math:`T_{intt}`, the two whose rise is steepest.  Differentiating a
discrete CDF directly is ill-posed, so the paper scores steepness on the
probability *mass* function instead:

1. build ``PDF(T_i) = num(T_i) / num(requests)`` (line 1-3);
2. fit a straight line through ``(T_i, PDF(T_i))`` (lines 4-6, the
   std-ratio fit — see :mod:`repro.analysis.regression`);
3. points more than ``margin = var(PDF)/2`` above the line are outliers
   (lines 7-13);
4. the *utmost* outlier is the one with the largest mass; the steepness
   score is its vertical distance to the fit line (lines 14-15).

A tall, isolated latency spike therefore scores high; a flat idle-
dominated distribution scores near zero.  :func:`select_steepest`
ranks a collection of sample groups and returns the top-``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from .distribution import DiscretePMF
from .regression import LineFit, find_outliers, outlier_margin, paper_line_fit

__all__ = ["SteepnessResult", "adaptive_resolution", "steepness_score", "select_steepest"]

#: Minimum samples behind a PMF atom for it to compete as the utmost
#: outlier on inter-arrival value (see ``steepness_score``).
_MIN_OUTLIER_SAMPLES = 5


def adaptive_resolution(samples: np.ndarray) -> float:
    """Deterministic quantisation step for unquantised gap samples.

    Keyed to the 10th percentile, not the median: service-time modes
    live at the *fast* end of a group's distribution, while idle
    periods inflate the median by orders of magnitude.  A step of
    p10/20 resolves the service cluster into a handful of tall atoms
    without atomising it.

    Raw simulator (or high-resolution tracer) timestamps are
    effectively continuous — without quantisation every sample is its
    own atom of mass 1/n, the PMF is flat, and Algorithm 1 sees no
    outliers at all.  This is why ``steepness_score`` applies this step
    whenever no explicit resolution is given.
    """
    positive = np.asarray(samples, dtype=np.float64)
    positive = positive[positive > 0]
    if positive.size == 0:
        return 0.5
    return float(np.clip(np.percentile(positive, 10) / 20.0, 0.5, 1000.0))


@dataclass(frozen=True, slots=True)
class SteepnessResult:
    """Outcome of the Algorithm 1 examination of one sample group.

    Attributes
    ----------
    steepness:
        The score (vertical distance of the utmost outlier above the
        fit line); 0.0 when no outlier exists.
    utmost_value:
        The :math:`T_{intt}` value of the utmost outlier (NaN when no
        outlier exists).
    utmost_mass:
        The PDF mass at the utmost outlier (NaN when none exists).
    n_outliers:
        Number of points flagged as outliers.
    pmf:
        The discrete mass function examined.
    fit:
        The straight-line fit through the PDF points.
    margin:
        The outlier margin that was applied.
    """

    steepness: float
    utmost_value: float
    utmost_mass: float
    n_outliers: int
    pmf: DiscretePMF
    fit: LineFit
    margin: float

    @property
    def has_outlier(self) -> bool:
        """``True`` when at least one outlier was found."""
        return self.n_outliers > 0


def steepness_score(
    samples: np.ndarray,
    resolution: float | None = None,
    margin_factor: float = 0.5,
) -> SteepnessResult:
    """Run Algorithm 1 on one group of inter-arrival samples.

    Parameters
    ----------
    samples:
        Inter-arrival times (µs) of one (sequentiality, op, size) group.
    resolution:
        Quantisation step applied before counting masses; ``None``
        (default) picks :func:`adaptive_resolution` per group, which is
        required for continuous-valued samples (see its docstring).
    margin_factor:
        Multiplier of ``var(PDF)`` used as the outlier margin; the paper
        fixes it at 0.5 ("half the variance"), exposed for the ablation
        bench.

    Single-atom groups (all gaps identical) are maximally steep: their
    CDF is a step function.  They get ``steepness = mass = 1.0`` with
    the atom as utmost value.
    """
    if resolution is None:
        resolution = adaptive_resolution(np.asarray(samples, dtype=np.float64))
    pmf = DiscretePMF.from_samples(samples, resolution=resolution)
    return _score_pmf(pmf, margin_factor)


def _score_pmf(pmf: DiscretePMF, margin_factor: float) -> SteepnessResult:
    """Algorithm 1 lines 4-15 on an already-built mass function.

    Shared tail of the scalar :func:`steepness_score` and the fused
    :func:`select_steepest` kernel — both paths build the PMF their own
    way and score it here, so the examination logic exists once.
    """
    if len(pmf) == 1:
        fit = LineFit(slope=0.0, intercept=0.0)
        return SteepnessResult(
            steepness=1.0,
            utmost_value=float(pmf.values[0]),
            utmost_mass=1.0,
            n_outliers=1,
            pmf=pmf,
            fit=fit,
            margin=0.0,
        )
    fit = paper_line_fit(pmf.values, pmf.masses)
    margin = outlier_margin(pmf.masses, factor=margin_factor)
    outliers = find_outliers(pmf.values, pmf.masses, fit, margin)
    if outliers.size == 0:
        return SteepnessResult(
            steepness=0.0,
            utmost_value=float("nan"),
            utmost_mass=float("nan"),
            n_outliers=0,
            pmf=pmf,
            fit=fit,
            margin=margin,
        )
    # The utmost outlier is the one at the largest inter-arrival value
    # ("it first looks for the T_intt with the maximum value").  This
    # matters: a group polluted by asynchronous submissions has a tall
    # spike at the *low* end (channel delay + CPU burst); the service
    # mode sits above it, and picking the largest outlying T keeps the
    # analysis anchored on the device, not the submission overlap.
    #
    # Significance guard: an idle tail spread over thousands of atoms
    # occasionally repeats a quantised value two or three times, which
    # clears a tiny margin without being a mode.  Only outliers backed
    # by enough samples compete on T (a sliding bar: 10% of the group,
    # between 3 and ``_MIN_OUTLIER_SAMPLES``, so sparse groups can
    # still surface their service mode); if none qualifies, the
    # tallest-mass outlier is used instead.
    min_mass = min(_MIN_OUTLIER_SAMPLES, max(3, pmf.n // 10)) / pmf.n
    significant = outliers[pmf.masses[outliers] >= min_mass]
    if significant.size:
        utmost_idx = int(significant[-1])  # pmf.values is sorted ascending
    else:
        utmost_idx = int(outliers[int(np.argmax(pmf.masses[outliers]))])
    utmost_value = float(pmf.values[utmost_idx])
    utmost_mass = float(pmf.masses[utmost_idx])
    distance = utmost_mass - float(fit(utmost_value))
    return SteepnessResult(
        steepness=distance,
        utmost_value=utmost_value,
        utmost_mass=utmost_mass,
        n_outliers=int(outliers.size),
        pmf=pmf,
        fit=fit,
        margin=margin,
    )


def select_steepest(
    groups: dict[Hashable, np.ndarray],
    k: int = 2,
    resolution: float | None = None,
    margin_factor: float = 0.5,
    min_samples: int = 8,
) -> list[tuple[Hashable, SteepnessResult]]:
    """Rank sample groups by steepness and return the top ``k``.

    Groups with fewer than ``min_samples`` gaps are skipped: a CDF built
    from a handful of points has no meaningful steepest rise and would
    destabilise the coefficient estimation downstream.

    Returns ``[(key, result), ...]`` sorted by descending steepness.
    Ties break deterministically on the stringified key so repeated runs
    select identical groups.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    keys: list[Hashable] = []
    arrays: list[np.ndarray] = []
    for key, samples in groups.items():
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size < min_samples:
            continue
        keys.append(key)
        arrays.append(arr)
    if not keys:
        return []
    results = _score_groups(arrays, resolution, margin_factor)
    scored = list(zip(keys, results))
    scored.sort(key=lambda pair: (-pair[1].steepness, str(pair[0])))
    return scored[:k]


def _score_groups(
    arrays: list[np.ndarray],
    resolution: float | None,
    margin_factor: float,
) -> list[SteepnessResult]:
    """Score many groups through one fused pass over all their gaps.

    The scalar path re-sorts every group twice (the percentile
    partition inside :func:`adaptive_resolution` and the ``np.unique``
    inside ``DiscretePMF.from_samples``) and pays ~20 small NumPy
    dispatches per group.  Here all groups share a single lexsort of
    the concatenated gap arrays; adaptive resolutions, quantisation and
    atom counting are computed for every group at once from the sorted
    view; only the Algorithm 1 examination (:func:`_score_pmf`) runs
    per group, on the much smaller atom arrays.

    Bit-identity with the scalar path (the property suite asserts it):
    quantisation is monotone, so per-group sorted order survives it and
    the atoms/counts equal ``np.unique``'s; the adaptive resolution
    replicates NumPy's percentile lerp on the sorted positive slice;
    masses, fits and margins are computed on contiguous float64 slices
    with the exact operations the scalar path uses.
    """
    if any(arr.size == 0 for arr in arrays):
        # Preserve the scalar error contract for empty groups
        # (min_samples=0 lets them through).
        raise ValueError("cannot build a PMF from an empty sample")
    sizes = np.array([arr.size for arr in arrays], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(sizes)])
    svals = np.concatenate(arrays)
    group_ids = np.repeat(np.arange(len(arrays), dtype=np.int64), sizes)
    # Sort each group's slice of the concatenated buffer in place:
    # the concatenation is already grouped, so this is the one O(n log n)
    # step, and n in-place C sorts beat a two-key lexsort by ~30x.
    for g in range(len(arrays)):
        svals[starts[g] : starts[g + 1]].sort()
    if resolution is None:
        res = _adaptive_resolutions(svals, starts, sizes)
    else:
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        res = np.full(len(arrays), float(resolution))
    # Quantise every gap at once (same elementwise round/div/mul as
    # repro.analysis.distribution.quantize), then count atoms: a new
    # atom starts at every group boundary or value change.
    res_per_sample = np.repeat(res, sizes)
    quantized = np.round(svals / res_per_sample) * res_per_sample
    new_atom = np.empty(len(quantized), dtype=bool)
    new_atom[0] = True
    new_atom[1:] = (quantized[1:] != quantized[:-1]) | (group_ids[1:] != group_ids[:-1])
    atom_idx = np.flatnonzero(new_atom)
    atom_values = quantized[atom_idx]
    atom_counts = np.diff(np.append(atom_idx, len(quantized)))
    # First atom of each group within the atom arrays.
    group_atom_starts = np.searchsorted(atom_idx, starts)
    results: list[SteepnessResult] = []
    for g in range(len(arrays)):
        a0, a1 = group_atom_starts[g], group_atom_starts[g + 1]
        pmf = DiscretePMF(
            values=atom_values[a0:a1],
            masses=atom_counts[a0:a1] / int(sizes[g]),
            n=int(sizes[g]),
        )
        results.append(_score_pmf(pmf, margin_factor))
    return results


def _adaptive_resolutions(svals: np.ndarray, starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Per-group :func:`adaptive_resolution` from the sorted gap array.

    Each group's slice of ``svals`` is ascending, so its positive
    samples are a suffix and the 10th percentile is one lerp between
    two order statistics.  The lerp replicates NumPy's ``percentile``
    arithmetic (virtual index ``q * (n - 1)``, with the ``gamma >= 0.5``
    branch of its internal ``_lerp``) to stay bit-identical to the
    scalar call.
    """
    n_groups = len(sizes)
    n_nonpos = np.add.reduceat((svals <= 0).astype(np.int64), starts[:-1])
    n_pos = sizes - n_nonpos
    out = np.full(n_groups, 0.5, dtype=np.float64)
    has = n_pos > 0
    if not np.any(has):
        return out
    virtual = np.true_divide(10, 100) * (n_pos - 1)
    prev = np.floor(virtual)
    gamma = virtual - prev
    prev_i = np.where(has, prev.astype(np.int64), 0)
    next_i = np.where(has, np.minimum(prev_i + 1, n_pos - 1), 0)
    pos_start = starts[:-1] + n_nonpos
    base = np.where(has, pos_start, 0)
    lo = svals[base + prev_i]
    hi = svals[base + next_i]
    diff = hi - lo
    percentile = np.where(gamma >= 0.5, hi - diff * (1 - gamma), lo + diff * gamma)
    out[has] = np.clip(percentile / 20.0, 0.5, 1000.0)[has]
    return out
