"""Piecewise-cubic interpolation implemented from scratch.

Section IV of the paper converts the discrete :math:`CDF(T_{intt})`
into a differentiable curve before locating the maximum-gradient point.
Two interpolants are compared (their Figure 9):

- **spline** — the natural cubic spline, :math:`C^2` smooth but prone to
  oscillation and over/undershoot between CDF knots;
- **pchip** — the piecewise cubic Hermite interpolating polynomial with
  Fritsch–Carlson monotone slopes, :math:`C^1` smooth, shape-preserving,
  and therefore the paper's choice.

Both are implemented here without SciPy so the substrate is
self-contained; the test-suite cross-checks values against
``scipy.interpolate`` when it is available.

All interpolants evaluate the curve and its first derivative, and
:func:`argmax_derivative` locates the steepest point of an interpolated
CDF on a dense grid — the core primitive of the steepness analysis.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PchipInterpolator",
    "CubicSplineInterpolator",
    "argmax_derivative",
    "interpolate_cdf",
]


def _validate_knots(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce interpolation knots (strictly increasing x)."""
    x_arr = np.asarray(x, dtype=np.float64)
    y_arr = np.asarray(y, dtype=np.float64)
    if x_arr.ndim != 1 or y_arr.ndim != 1:
        raise ValueError("knots must be one-dimensional")
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have equal length")
    if x_arr.size < 2:
        raise ValueError("need at least two knots")
    if np.any(np.diff(x_arr) <= 0):
        raise ValueError("x knots must be strictly increasing")
    if np.any(~np.isfinite(x_arr)) or np.any(~np.isfinite(y_arr)):
        raise ValueError("knots must be finite")
    return x_arr, y_arr


class _PiecewiseCubic:
    """Shared evaluation machinery for Hermite-form piecewise cubics.

    Each interval ``[x_k, x_{k+1}]`` stores endpoint values and endpoint
    derivatives ``(y_k, y_{k+1}, d_k, d_{k+1})``; evaluation uses the
    cubic Hermite basis.  Subclasses differ only in how they choose the
    knot derivatives ``d``.
    """

    __slots__ = ("x", "y", "d")

    def __init__(self, x: np.ndarray, y: np.ndarray, d: np.ndarray) -> None:
        self.x = x
        self.y = y
        self.d = d

    def _locate(self, xs: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interval index, local offset, and interval width per query point.

        Queries outside the knot range are clamped to the end intervals
        (linear extension of the boundary cubic), which is the safe
        behaviour for CDF work where the curve is flat beyond the data.
        """
        idx = np.clip(np.searchsorted(self.x, xs, side="right") - 1, 0, len(self.x) - 2)
        h = self.x[idx + 1] - self.x[idx]
        t = (xs - self.x[idx]) / h
        return idx, t, h

    def __call__(self, xs: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the interpolant."""
        arr = np.asarray(xs, dtype=np.float64)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr)
        idx, t, h = self._locate(arr)
        y0, y1 = self.y[idx], self.y[idx + 1]
        d0, d1 = self.d[idx], self.d[idx + 1]
        t2 = t * t
        t3 = t2 * t
        h00 = 2 * t3 - 3 * t2 + 1
        h10 = t3 - 2 * t2 + t
        h01 = -2 * t3 + 3 * t2
        h11 = t3 - t2
        out = h00 * y0 + h10 * h * d0 + h01 * y1 + h11 * h * d1
        return float(out[0]) if scalar else out

    def derivative(self, xs: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the first derivative of the interpolant."""
        arr = np.asarray(xs, dtype=np.float64)
        scalar = arr.ndim == 0
        arr = np.atleast_1d(arr)
        idx, t, h = self._locate(arr)
        y0, y1 = self.y[idx], self.y[idx + 1]
        d0, d1 = self.d[idx], self.d[idx + 1]
        t2 = t * t
        dh00 = 6 * t2 - 6 * t
        dh10 = 3 * t2 - 4 * t + 1
        dh01 = -6 * t2 + 6 * t
        dh11 = 3 * t2 - 2 * t
        out = (dh00 * y0 + dh01 * y1) / h + dh10 * d0 + dh11 * d1
        return float(out[0]) if scalar else out


class PchipInterpolator(_PiecewiseCubic):
    """Monotone piecewise cubic Hermite interpolation (Fritsch–Carlson).

    Knot derivatives are the weighted harmonic means of adjacent secant
    slopes, zeroed at local extrema, which guarantees the interpolant is
    monotone wherever the data are — exactly the property a CDF needs
    (no overshoot above 1, no dips).
    """

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        x_arr, y_arr = _validate_knots(x, y)
        super().__init__(x_arr, y_arr, _pchip_slopes(x_arr, y_arr))


def _pchip_slopes(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Fritsch–Carlson knot derivatives, one vectorised pass.

    Elementwise the same IEEE-754 operations (and operand order) as
    :func:`_pchip_slopes_scalar`, so the result is bit-identical — the
    property suite asserts it.  Lanes masked to zero (flat or
    sign-changing secants) may divide by zero inside ``errstate``; the
    ``where`` discards them before they can propagate.
    """
    h = np.diff(x)
    delta = np.diff(y) / h
    n = len(x)
    d = np.zeros(n, dtype=np.float64)
    if n == 2:
        d[:] = delta[0]
        return d
    # Interior knots: weighted harmonic mean when secants share a sign.
    d_left, d_right = delta[:-1], delta[1:]  # delta[k-1], delta[k] at knot k
    h_left, h_right = h[:-1], h[1:]  # h[k-1], h[k] at knot k
    w1 = 2 * h_right + h_left
    w2 = h_right + 2 * h_left
    flat = (d_left == 0.0) | (d_right == 0.0) | (np.sign(d_left) != np.sign(d_right))
    with np.errstate(divide="ignore", invalid="ignore"):
        harmonic = (w1 + w2) / (w1 / d_left + w2 / d_right)
    d[1:-1] = np.where(flat, 0.0, harmonic)
    d[0] = _pchip_endpoint(h[0], h[1], delta[0], delta[1])
    d[-1] = _pchip_endpoint(h[-1], h[-2], delta[-1], delta[-2])
    return d


def _pchip_slopes_scalar(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Reference knot-at-a-time Fritsch–Carlson loop (bit-identity oracle)."""
    h = np.diff(x)
    delta = np.diff(y) / h
    n = len(x)
    d = np.zeros(n, dtype=np.float64)
    if n == 2:
        d[:] = delta[0]
        return d
    for k in range(1, n - 1):
        if delta[k - 1] == 0.0 or delta[k] == 0.0 or np.sign(delta[k - 1]) != np.sign(delta[k]):
            d[k] = 0.0
        else:
            w1 = 2 * h[k] + h[k - 1]
            w2 = h[k] + 2 * h[k - 1]
            d[k] = (w1 + w2) / (w1 / delta[k - 1] + w2 / delta[k])
    d[0] = _pchip_endpoint(h[0], h[1], delta[0], delta[1])
    d[-1] = _pchip_endpoint(h[-1], h[-2], delta[-1], delta[-2])
    return d


def _pchip_endpoint(h0: float, h1: float, d0: float, d1: float) -> float:
    """One-sided three-point derivative estimate with monotonicity limits."""
    d = ((2 * h0 + h1) * d0 - h0 * d1) / (h0 + h1)
    if np.sign(d) != np.sign(d0):
        return 0.0
    if np.sign(d0) != np.sign(d1) and abs(d) > 3 * abs(d0):
        return 3 * d0
    return float(d)


class CubicSplineInterpolator(_PiecewiseCubic):
    """Natural cubic spline (second derivative zero at the ends).

    :math:`C^2` smooth but *not* shape preserving: between knots of a
    steep CDF it overshoots and oscillates, which is why the paper
    rejects it in favour of pchip (their Figure 9).  Kept as the
    comparison point for that figure's bench.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        x_arr, y_arr = _validate_knots(x, y)
        super().__init__(x_arr, y_arr, _natural_spline_slopes(x_arr, y_arr))


def _natural_spline_slopes(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """First derivatives at the knots of the natural cubic spline.

    Solves the standard tridiagonal system for second derivatives
    ``m`` with natural boundary conditions (``m_0 = m_{n-1} = 0``) via
    the Thomas algorithm, then converts to first derivatives.

    The two Thomas sweeps are inherently sequential recurrences, so
    "vectorising" them means removing the per-element NumPy scalar
    indexing: the band arrays are built vectorised, converted to plain
    Python floats once, and the sweeps run over lists.  The operation
    sequence is unchanged (Python floats and NumPy scalars are the
    same IEEE-754 doubles), so the result is bit-identical to
    :func:`_natural_spline_slopes_scalar` — asserted by the property
    suite.
    """
    n = len(x)
    h = np.diff(x)
    if n == 2:
        slope = (y[1] - y[0]) / h[0]
        return np.array([slope, slope])
    # Tridiagonal system A m = rhs for interior second derivatives.
    sub = h[:-1].tolist()  # below diagonal
    diag = (2 * (h[:-1] + h[1:])).tolist()
    sup = h[1:].tolist()  # above diagonal
    rhs = (6 * (np.diff(y[1:]) / h[1:] - np.diff(y[:-1]) / h[:-1])).tolist()
    # Thomas forward sweep (list-based; ~10x less indexing overhead
    # than NumPy scalar reads at these sizes).
    k = n - 2
    c_prime = [0.0] * k
    d_prime = [0.0] * k
    c_prime[0] = sup[0] / diag[0]
    d_prime[0] = rhs[0] / diag[0]
    for i in range(1, k):
        denom = diag[i] - sub[i] * c_prime[i - 1]
        c_prime[i] = sup[i] / denom if i < k - 1 else 0.0
        d_prime[i] = (rhs[i] - sub[i] * d_prime[i - 1]) / denom
    m_interior = [0.0] * k
    m_interior[k - 1] = d_prime[k - 1]
    for i in range(k - 2, -1, -1):
        m_interior[i] = d_prime[i] - c_prime[i] * m_interior[i + 1]
    m = np.empty(n, dtype=np.float64)
    m[0] = 0.0
    m[1:-1] = m_interior
    m[-1] = 0.0
    # First derivative at left end of each interval, then the last knot.
    d = np.empty(n, dtype=np.float64)
    d[:-1] = (np.diff(y) / h) - h * (2 * m[:-1] + m[1:]) / 6
    d[-1] = (y[-1] - y[-2]) / h[-1] + h[-1] * (2 * m[-1] + m[-2]) / 6
    return d


def _natural_spline_slopes_scalar(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Reference NumPy-indexed Thomas solve (bit-identity oracle)."""
    n = len(x)
    h = np.diff(x)
    if n == 2:
        slope = (y[1] - y[0]) / h[0]
        return np.array([slope, slope])
    sub = h[:-1].copy()  # below diagonal
    diag = 2 * (h[:-1] + h[1:])
    sup = h[1:].copy()  # above diagonal
    rhs = 6 * (np.diff(y[1:]) / h[1:] - np.diff(y[:-1]) / h[:-1])
    m_interior = np.zeros(n - 2, dtype=np.float64)
    c_prime = np.zeros(n - 2, dtype=np.float64)
    d_prime = np.zeros(n - 2, dtype=np.float64)
    c_prime[0] = sup[0] / diag[0]
    d_prime[0] = rhs[0] / diag[0]
    for i in range(1, n - 2):
        denom = diag[i] - sub[i] * c_prime[i - 1]
        c_prime[i] = sup[i] / denom if i < n - 3 else 0.0
        d_prime[i] = (rhs[i] - sub[i] * d_prime[i - 1]) / denom
    for i in range(n - 3, -1, -1):
        m_interior[i] = d_prime[i] - (c_prime[i] * m_interior[i + 1] if i < n - 3 else 0.0)
    m = np.concatenate([[0.0], m_interior, [0.0]])
    d = np.empty(n, dtype=np.float64)
    d[:-1] = (np.diff(y) / h) - h * (2 * m[:-1] + m[1:]) / 6
    d[-1] = (y[-1] - y[-2]) / h[-1] + h[-1] * (2 * m[-1] + m[-2]) / 6
    return d


def interpolate_cdf(
    x: np.ndarray,
    y: np.ndarray,
    method: str = "pchip",
) -> _PiecewiseCubic:
    """Interpolate CDF knots with the chosen method.

    ``method`` is ``"pchip"`` (default, the paper's choice) or
    ``"spline"``.
    """
    if method == "pchip":
        return PchipInterpolator(x, y)
    if method == "spline":
        return CubicSplineInterpolator(x, y)
    raise ValueError(f"unknown interpolation method {method!r}; use 'pchip' or 'spline'")


def argmax_derivative(
    interpolant: _PiecewiseCubic,
    samples_per_interval: int = 16,
    log_x: bool = True,
) -> tuple[float, float]:
    """Locate the maximum of the interpolant's derivative.

    Returns ``(x_at_max, derivative_value)``.  The search grid places
    ``samples_per_interval`` points inside every knot interval (spaced
    logarithmically when ``log_x`` and the interval is positive), plus
    the knots themselves, so narrow steep intervals are never skipped.

    This is "the maximum of the differential ... the highest magnitude
    of gradient change with a transition of :math:`T_{intt}`" from
    Section IV of the paper.
    """
    if samples_per_interval < 1:
        raise ValueError("samples_per_interval must be >= 1")
    grid = _derivative_grid(interpolant.x, samples_per_interval, log_x)
    derivs = np.asarray(interpolant.derivative(grid))
    best = int(np.argmax(derivs))
    return float(grid[best]), float(derivs[best])


def _derivative_grid(x: np.ndarray, samples_per_interval: int, log_x: bool) -> np.ndarray:
    """The search grid of :func:`argmax_derivative`, built in one shot.

    Replicates NumPy's own ``linspace``/``logspace`` arithmetic lane by
    lane — ``step = (b - a) / div`` then ``arange * step + a`` (with the
    degenerate ``step == 0`` rescue NumPy applies), and ``10**grid`` for
    log intervals — so the points are bit-identical to the per-interval
    :func:`_derivative_grid_scalar` loop while touching every interval
    with a handful of array operations instead of two NumPy calls each.
    """
    a, b = x[:-1], x[1:]
    num = samples_per_interval + 1
    n_intervals = len(a)
    use_log = (a > 0) & (b > 0) if log_x else np.zeros(n_intervals, dtype=bool)
    # Endpoints in "construction space": log10 for log intervals (the
    # masked `where` keeps log10 off non-positive lanes).
    lo = np.where(use_log, np.log10(np.where(use_log, a, 1.0)), a)
    hi = np.where(use_log, np.log10(np.where(use_log, b, 1.0)), b)
    div = num - 1
    delta = hi - lo
    step = delta / div
    base = np.arange(0, num, dtype=np.float64)[None, :]
    # np.linspace computes `arange * step + start`, except when the step
    # underflows to zero, where it falls back to `arange / div * delta`.
    rows = np.where(
        (step != 0.0)[:, None],
        base * step[:, None],
        base / div * delta[:, None],
    )
    rows += lo[:, None]
    np.power(10.0, rows, out=rows, where=use_log[:, None])
    grid = np.empty(n_intervals * samples_per_interval + 1, dtype=np.float64)
    grid[:-1] = rows[:, :-1].reshape(-1)
    grid[-1] = x[-1]
    return grid


def _derivative_grid_scalar(x: np.ndarray, samples_per_interval: int, log_x: bool) -> np.ndarray:
    """Reference interval-at-a-time grid construction (bit-identity oracle)."""
    pieces = []
    for k in range(len(x) - 1):
        a, b = x[k], x[k + 1]
        if log_x and a > 0 and b > 0:
            pieces.append(np.logspace(np.log10(a), np.log10(b), samples_per_interval + 1)[:-1])
        else:
            pieces.append(np.linspace(a, b, samples_per_interval + 1)[:-1])
    return np.concatenate(pieces + [x[-1:]])
