"""Statistical analysis substrate: distributions, fits, interpolation, steepness.

Everything the software half of TraceTracker needs to turn raw
inter-arrival samples into the latency decomposition of Section III.
"""

from .distribution import (
    DiscretePMF,
    EmpiricalCDF,
    cdf_shape_class,
    log_spaced_grid,
    quantize,
)
from .interpolation import (
    CubicSplineInterpolator,
    PchipInterpolator,
    argmax_derivative,
    interpolate_cdf,
)
from .regression import (
    LineFit,
    find_outliers,
    least_squares_fit,
    outlier_margin,
    paper_line_fit,
)
from .steepness import SteepnessResult, select_steepest, steepness_score

__all__ = [
    "DiscretePMF",
    "EmpiricalCDF",
    "cdf_shape_class",
    "log_spaced_grid",
    "quantize",
    "CubicSplineInterpolator",
    "PchipInterpolator",
    "argmax_derivative",
    "interpolate_cdf",
    "LineFit",
    "find_outliers",
    "least_squares_fit",
    "outlier_margin",
    "paper_line_fit",
    "SteepnessResult",
    "select_steepest",
    "steepness_score",
]
