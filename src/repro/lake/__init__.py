"""Content-addressed result lake: catalog, features, similarity, CLI.

The lake turns the repository's flat per-directory artifacts — binary
trace-store entries, campaign checkpoint directories, results tables —
into one queryable, deduplicated system:

- :mod:`~repro.lake.catalog` — the SQLite (WAL-mode) metadata catalog:
  content fingerprints → artifacts, plus every completed campaign grid
  point.  The catalog is a *rebuildable index*; the flat files remain
  the source of truth.
- :mod:`~repro.lake.features` — deterministic per-trace workload
  feature vectors.
- :mod:`~repro.lake.similarity` — exact, deterministic nearest-
  neighbour search over the cataloged vectors.
- :mod:`~repro.lake.ingest` — directory-tree ingestion, including the
  full ``--rescan`` rebuild.
- :mod:`~repro.lake.cli` — the ``repro-lake`` command.

Producers integrate at two points: :class:`~repro.trace.io.cache.
TraceStore` registers entries it materialises, and
:class:`~repro.campaign.engine.CampaignEngine` records each completed
point — which is what lets a *new* campaign skip any point a prior
campaign already computed (incremental across runs, not just resumable
within one directory).
"""

from .catalog import SCHEMA_VERSION, LakeCatalog, LakeError, default_lake_path, spec_fingerprint
from .features import FEATURES_VERSION, feature_dict, feature_names, trace_feature_vector
from .ingest import IngestReport, ingest_campaign_dir, ingest_tree, record_campaign_point
from .similarity import Neighbor, nearest_neighbors, similar_traces

__all__ = [
    "SCHEMA_VERSION",
    "FEATURES_VERSION",
    "LakeCatalog",
    "LakeError",
    "default_lake_path",
    "spec_fingerprint",
    "feature_names",
    "feature_dict",
    "trace_feature_vector",
    "IngestReport",
    "ingest_tree",
    "ingest_campaign_dir",
    "record_campaign_point",
    "Neighbor",
    "nearest_neighbors",
    "similar_traces",
]
