"""Deterministic workload-feature vectors for trace similarity.

:func:`trace_feature_vector` maps a :class:`~repro.trace.trace.
BlockTrace` to a fixed-length float64 vector of summary statistics —
request-size distribution, inter-arrival distribution, operation mix,
address locality, and (when the trace carries device stamps) a
queue-depth profile.  The guarantees the lake's property tests pin:

- **pure function of the columns** — two traces with equal column
  arrays produce bit-equal vectors, regardless of how the columns were
  produced (whole-file parse, chunked streaming, store round-trip) or
  in which process;
- **no randomness, no wall clock** — every statistic is a NumPy
  reduction with a fixed definition, so vectors written into the
  catalog by one machine reproduce on another.

Heavy-tailed quantities (sizes, gaps, address jumps) enter as
``log1p`` so one huge outlier cannot dominate a distance;
:mod:`repro.lake.similarity` additionally standardises each dimension
across the catalog before measuring distances.
"""

from __future__ import annotations

import numpy as np

from ..trace.record import OpType
from ..trace.trace import BlockTrace

__all__ = ["FEATURES_VERSION", "feature_names", "trace_feature_vector", "feature_dict"]

#: Bump on any change to the vector's length, order, or definitions.
#: Stored with every catalog row; similarity silently skips rows whose
#: version differs (they re-enter on the next ingest).
FEATURES_VERSION = 1

_NAMES = (
    "log10_n_requests",
    "read_fraction",
    "size_mean_log",
    "size_std_log",
    "size_p50_log",
    "size_p90_log",
    "size_max_log",
    "intt_mean_log",
    "intt_std_log",
    "intt_p50_log",
    "intt_p90_log",
    "intt_cv",
    "seq_fraction",
    "lba_jump_log_mean",
    "qdepth_mean",
    "qdepth_max",
)


def feature_names() -> tuple[str, ...]:
    """The vector's dimension names, in storage order."""
    return _NAMES


def _log1p_stats(values: np.ndarray) -> tuple[float, float, float, float]:
    """(mean, std, p50, p90) of ``log1p(values)`` — zeros when empty."""
    if len(values) == 0:
        return 0.0, 0.0, 0.0, 0.0
    logged = np.log1p(values.astype(np.float64))
    return (
        float(logged.mean()),
        float(logged.std()),
        float(np.percentile(logged, 50)),
        float(np.percentile(logged, 90)),
    )


def _qdepth_profile(trace: BlockTrace) -> tuple[float, float]:
    """(time-weighted mean, max) outstanding requests.

    Computed from the issue/completion stamps when the trace carries
    them (":math:`T_{sdev}` known" traces); traces without device times
    report ``(0, 0)`` — a defined, version-stable value rather than a
    guess, so the similarity space never mixes measured and imagined
    concurrency.
    """
    if not trace.has_device_times or len(trace) == 0:
        return 0.0, 0.0
    assert trace.issues is not None and trace.completes is not None
    times = np.concatenate([trace.issues, trace.completes])
    deltas = np.concatenate(
        [np.ones(len(trace), dtype=np.int64), -np.ones(len(trace), dtype=np.int64)]
    )
    # Completions sort before issues at equal stamps (lexsort's primary
    # key is the last array), so an instantaneous request contributes
    # zero depth rather than one.
    order = np.lexsort((deltas, times))
    sorted_times = times[order]
    running = np.cumsum(deltas[order])
    span = float(sorted_times[-1] - sorted_times[0])
    if span <= 0.0:
        return 0.0, float(running.max(initial=0))
    widths = np.diff(sorted_times)
    mean = float(np.dot(running[:-1].astype(np.float64), widths) / span)
    return mean, float(running.max(initial=0))


def trace_feature_vector(trace: BlockTrace) -> np.ndarray:
    """The trace's feature vector (float64, :func:`feature_names` order).

    Deterministic in the trace's columns alone — see the module
    docstring for the exact guarantees.
    """
    n = len(trace)
    sizes = trace.sizes.astype(np.float64)
    gaps = np.diff(trace.timestamps) if n > 1 else np.empty(0, dtype=np.float64)
    gaps = np.maximum(gaps, 0.0)
    size_mean, size_std, size_p50, size_p90 = _log1p_stats(sizes)
    intt_mean, intt_std, intt_p50, intt_p90 = _log1p_stats(gaps)
    if len(gaps) and gaps.mean() > 0.0:
        intt_cv = float(gaps.std() / gaps.mean())
    else:
        intt_cv = 0.0
    if n > 1:
        jumps = np.abs(np.diff(trace.lbas).astype(np.float64))
        next_lba = trace.lbas[:-1] + trace.sizes[:-1]
        seq_fraction = float(np.mean(trace.lbas[1:] == next_lba))
        lba_jump = float(np.log1p(jumps).mean())
    else:
        seq_fraction = 0.0
        lba_jump = 0.0
    qd_mean, qd_max = _qdepth_profile(trace)
    vector = np.array(
        [
            float(np.log10(n)) if n else 0.0,
            float(np.mean(trace.ops == int(OpType.READ))) if n else 0.0,
            size_mean,
            size_std,
            size_p50,
            size_p90,
            float(np.log1p(sizes.max(initial=0.0))),
            intt_mean,
            intt_std,
            intt_p50,
            intt_p90,
            intt_cv,
            seq_fraction,
            lba_jump,
            qd_mean,
            qd_max,
        ],
        dtype=np.float64,
    )
    assert vector.shape == (len(_NAMES),)
    return vector


def feature_dict(trace: BlockTrace) -> dict[str, float]:
    """The feature vector keyed by dimension name (reports, debugging)."""
    return dict(zip(_NAMES, trace_feature_vector(trace).tolist()))
