"""Directory-tree ingestion: build (or rebuild) the catalog from disk.

The lake's core invariant is that the catalog is a **rebuildable
index**: every row is derivable from the flat files, so
:func:`ingest_tree` over a directory tree reconstructs exactly what
live producers recorded — the crash-consistency suite asserts the two
byte-equivalent via :meth:`~repro.lake.catalog.LakeCatalog.dump_rows`.

Two artifact shapes are recognised:

- **campaign output directories** — anything holding a ``spec.json``.
  The spec is expanded, the ``runs/`` checkpoints are scanned with the
  engine's own resume scanner (segments and per-point JSON alike,
  torn lines skipped), and every completed point is upserted through
  the same :func:`record_campaign_point` the engine's workers call
  live.  ``results.npz``/``results.csv`` aggregates become ``results``
  artifacts.
- **binary trace-store entries** — any ``.npz`` that loads as a trace
  store file.  Entries named by the store's content-key pattern also
  get a ``store:<key>`` reference edge.

Everything is walked in sorted path order and recorded through
idempotent upserts, so re-ingesting (after a crash, or over a half-
ingested tree) converges instead of duplicating.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from ..campaign.plan import expand
from ..campaign.spec import CampaignSpec
from ..trace.io.store import TraceStoreError, load_trace_npz
from .catalog import LakeCatalog, spec_fingerprint

__all__ = ["IngestReport", "ingest_tree", "ingest_campaign_dir", "record_campaign_point"]

#: Filename shape of a binary trace-store entry (``v1-<sha1>.npz``).
_STORE_ENTRY = re.compile(r"^v(\d+)-([0-9a-f]{40})\.npz$")


class IngestReport(dict):
    """Ingestion counters (a plain dict with a stable line renderer)."""

    def lines(self) -> list[str]:
        """One ``name: count`` line per counter, name-sorted."""
        return [f"{name}: {self[name]}" for name in sorted(self)]


def _queue_depth_of(spec: CampaignSpec, device_name: str) -> float | None:
    """The queue depth a grid point ran at, if the spec pins one.

    Checked in the device's parameters first (a per-device override),
    then the campaign's shared options.  ``None`` when neither names
    one — the catalog column stays NULL and depth filters skip the row.
    """
    for device in spec.devices:
        if device.name == device_name and "queue_depth" in device.params:
            return float(device.params["queue_depth"])
    value = spec.options.get("queue_depth")
    return float(value) if value is not None else None


def record_campaign_point(
    catalog: LakeCatalog,
    spec: CampaignSpec,
    run_key: str,
    row: dict[str, Any],
    wall_s: float | None = None,
    source_dir: str | Path | None = None,
    checkpoint_file: str | None = None,
) -> None:
    """Upsert one completed grid point, engine-side and rescan-side.

    This is the single write path for ``campaign_points`` rows: the
    engine's workers call it the moment a point checkpoints, and
    :func:`ingest_campaign_dir` calls it for every checkpoint it finds
    on disk — both deriving every column the same way, which is what
    makes a rescan byte-equivalent to the live recording.
    """
    device_name = str(row.get("device", ""))
    kinds = {d.name: d.kind for d in spec.devices}
    catalog.record_point(
        run_key=run_key,
        spec_fp=spec_fingerprint(spec.to_dict()),
        campaign=spec.name,
        action=spec.action,
        row=row,
        device_kind=kinds.get(device_name, ""),
        queue_depth=_queue_depth_of(spec, device_name),
        source_dir=str(Path(source_dir).resolve()) if source_dir is not None else None,
        checkpoint_file=checkpoint_file,
        wall_s=wall_s,
    )


def ingest_campaign_dir(catalog: LakeCatalog, out_dir: str | Path) -> IngestReport:
    """Catalog one campaign output directory (``spec.json`` + ``runs/``)."""
    from ..campaign.engine import _scan_checkpoints_meta

    out_dir = Path(out_dir)
    spec = CampaignSpec.from_dict(
        json.loads((out_dir / "spec.json").read_text(encoding="utf-8"))
    )
    plan = expand(spec)
    meta = _scan_checkpoints_meta(out_dir, plan.keys())
    for run_key in sorted(meta):
        row, wall_s, checkpoint_file = meta[run_key]
        record_campaign_point(
            catalog,
            spec,
            run_key,
            row,
            wall_s=wall_s,
            source_dir=out_dir,
            checkpoint_file=checkpoint_file,
        )
    report = IngestReport(points=len(meta), results=0)
    for name in ("results.npz", "results.csv"):
        path = out_dir / name
        if path.exists():
            catalog.record_artifact(
                "results", path, ref=f"campaign:{spec.name}", meta={"campaign": spec.name}
            )
            report["results"] += 1
    return report


def ingest_tree(catalog: LakeCatalog, root: str | Path) -> IngestReport:
    """Walk ``root`` and catalog everything recognisable under it.

    Directories holding a ``spec.json`` ingest as campaigns; every
    other ``.npz`` that loads as a trace-store file ingests as a trace
    artifact (with its feature vector).  Unreadable or foreign files
    are counted as ``skipped``, never fatal — a lake directory tree
    routinely holds reports, logs, and half-written temp files.
    """
    root = Path(root)
    report = IngestReport(campaigns=0, points=0, results=0, traces=0, skipped=0)
    if root.is_file():
        _ingest_trace_file(catalog, root, report)
        return report
    campaign_dirs = sorted(p.parent for p in root.rglob("spec.json"))
    for out_dir in campaign_dirs:
        try:
            sub = ingest_campaign_dir(catalog, out_dir)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            report["skipped"] += 1
            continue
        report["campaigns"] += 1
        report["points"] += sub["points"]
        report["results"] += sub["results"]
    for path in sorted(root.rglob("*.npz")):
        if path.name == "results.npz" and (path.parent / "spec.json").exists():
            continue  # already cataloged as a results artifact
        _ingest_trace_file(catalog, path, report)
    return report


def _ingest_trace_file(catalog: LakeCatalog, path: Path, report: IngestReport) -> None:
    """Catalog one candidate trace file into ``report`` (never raises)."""
    try:
        trace = load_trace_npz(path)
    except (TraceStoreError, OSError):
        report["skipped"] = report.get("skipped", 0) + 1
        return
    match = _STORE_ENTRY.match(path.name)
    ref = f"store:{match.group(2)}" if match else None
    catalog.record_trace(path, trace, ref=ref)
    report["traces"] = report.get("traces", 0) + 1
