"""The ``repro-lake`` command line interface.

Five subcommands over one catalog database (``--db``, defaulting to
``$REPRO_LAKE_DB`` or ``~/.cache/repro-tracetracker/lake.sqlite``):

``repro-lake ingest <path>... [--rescan]``
    Walk directory trees (or single ``.npz`` files) and catalog every
    campaign directory and trace-store entry found.  ``--rescan``
    clears the catalog first — the full rebuild that recovers a
    deleted/corrupt catalog from the flat files, and the migration
    path for pre-lake directories.

``repro-lake query [--workload W] [--device-kind K] [--min-qd N] ...``
    Cross-campaign point queries ("all flash_array runs at qd≥8
    touching workload X"), rendered as markdown or CSV through the
    campaign results table.

``repro-lake similar (--fingerprint F | --trace PATH) [-k N]``
    Exact nearest-neighbour workload matching: the named trace's
    closest already-characterised workloads, before any replay runs.

``repro-lake gc``
    Drop rows whose backing files no longer exist.

``repro-lake stats``
    Row counts per table.

Exit status is non-zero on unknown paths, bad databases, or an empty
``similar`` query.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..campaign.results import ResultsTable
from ..trace.io.store import TraceStoreError, load_trace_npz
from .catalog import LakeCatalog, LakeError, default_lake_path
from .features import trace_feature_vector
from .ingest import ingest_tree
from .similarity import similar_traces

__all__ = ["main"]


def _open(args: argparse.Namespace) -> LakeCatalog:
    return LakeCatalog(args.db)


def _cmd_ingest(args: argparse.Namespace) -> int:
    with _open(args) as catalog:
        if args.rescan:
            catalog.clear()
        totals: dict[str, int] = {}
        for path in args.paths:
            p = Path(path)
            if not p.exists():
                print(f"error: no such path {p}", file=sys.stderr)
                return 2
            report = ingest_tree(catalog, p)
            for name, count in report.items():
                totals[name] = totals.get(name, 0) + count
        for name in sorted(totals):
            print(f"{name}: {totals[name]}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with _open(args) as catalog:
        rows = catalog.query_points(
            workload=args.workload,
            device_kind=args.device_kind,
            device_name=args.device,
            method=args.method,
            action=args.action,
            campaign=args.campaign,
            min_queue_depth=args.min_qd,
            min_n_requests=args.min_requests,
        )
    if not rows:
        print("no matching campaign points", file=sys.stderr)
        return 1
    table = ResultsTable.from_rows(rows)
    if args.format == "csv":
        print(table.to_csv(), end="")
    else:
        print(table.to_markdown())
    return 0


def _cmd_similar(args: argparse.Namespace) -> int:
    with _open(args) as catalog:
        if args.trace is not None:
            try:
                trace = load_trace_npz(args.trace)
            except TraceStoreError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            query: object = trace_feature_vector(trace)
        else:
            query = args.fingerprint
        try:
            neighbors = similar_traces(catalog, query, k=args.k)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        if not neighbors:
            print("catalog holds no trace feature vectors", file=sys.stderr)
            return 1
        for n in neighbors:
            artifact = catalog.artifact(n.fingerprint)
            name = artifact["meta"].get("name", "") if artifact else ""
            path = artifact["path"] if artifact else ""
            print(f"{n.distance:10.4f}  {n.fingerprint[:16]}  {name:<12}  {path}")
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    with _open(args) as catalog:
        removed = catalog.gc()
    for name in sorted(removed):
        print(f"removed {name}: {removed[name]}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    with _open(args) as catalog:
        counts = catalog.counts()
    for name in sorted(counts):
        print(f"{name}: {counts[name]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-lake`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-lake",
        description="Content-addressed result lake: catalog, query, similarity search.",
    )
    parser.add_argument(
        "--db",
        default=str(default_lake_path()),
        help="catalog database (default: $REPRO_LAKE_DB or ~/.cache)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ingest = sub.add_parser("ingest", help="catalog directory trees / trace files")
    ingest.add_argument("paths", nargs="+", help="directories or .npz files to ingest")
    ingest.add_argument(
        "--rescan",
        action="store_true",
        help="clear the catalog first and rebuild it from the tree",
    )
    ingest.set_defaults(func=_cmd_ingest)

    query = sub.add_parser("query", help="cross-campaign grid-point queries")
    query.add_argument("--workload", default=None, help="exact workload name")
    query.add_argument("--device-kind", default=None, help="device registry kind")
    query.add_argument("--device", default=None, help="device display name")
    query.add_argument("--method", default=None, help="reconstruction method string")
    query.add_argument("--action", default=None, help="campaign action")
    query.add_argument("--campaign", default=None, help="campaign name")
    query.add_argument("--min-qd", type=float, default=None, help="minimum queue depth")
    query.add_argument(
        "--min-requests", type=int, default=None, help="minimum trace size"
    )
    query.add_argument("--format", choices=("md", "csv"), default="md")
    query.set_defaults(func=_cmd_query)

    similar = sub.add_parser("similar", help="nearest already-characterised workloads")
    source = similar.add_mutually_exclusive_group(required=True)
    source.add_argument("--fingerprint", default=None, help="cataloged trace fingerprint")
    source.add_argument("--trace", default=None, help="a trace-store .npz to match")
    similar.add_argument("-k", type=int, default=5, help="neighbours to return")
    similar.set_defaults(func=_cmd_similar)

    gc = sub.add_parser("gc", help="drop rows whose backing files are gone")
    gc.set_defaults(func=_cmd_gc)

    stats = sub.add_parser("stats", help="row counts per catalog table")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the ``repro-lake`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (LakeError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
