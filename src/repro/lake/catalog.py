"""SQLite-backed metadata catalog of the content-addressed result lake.

:class:`LakeCatalog` is a **rebuildable index** over flat on-disk
artifacts — trace-store ``.npz`` entries, campaign checkpoint
directories, results tables.  The flat files stay the source of truth;
every row the catalog holds is derivable from them, which is what makes
``repro-lake ingest --rescan`` a full recovery path (and the migration
path for pre-lake directories).

Schema v1, four tables:

- ``artifacts`` — one row per distinct *content* (``fingerprint`` =
  file SHA-256), holding kind, canonical path, and size.  Ingesting the
  same bytes from two paths dedups to one row.
- ``artifact_refs`` — the references pointing at a content row (store
  keys, campaign labels, extra paths); dedup means one artifact row
  with many refs.
- ``trace_features`` — the deterministic workload-feature vector of
  every cataloged trace (:mod:`repro.lake.features`), stored as raw
  float64 bytes plus the feature-schema version, the input to
  :mod:`repro.lake.similarity`.
- ``campaign_points`` — one row per completed campaign grid point,
  keyed by the engine's run key, carrying the spec fingerprint, axis
  values, the result row as canonical JSON, the checkpoint file that
  holds it, and the measured wall time.  This table is what makes
  campaigns incremental *across* runs: a new campaign skips any run
  key some prior campaign already computed, wherever it ran.

Durability: connections run in WAL mode with a busy timeout, every
mutation is one transaction retried a bounded number of times on lock
contention (exponential backoff), and all writes are idempotent upserts
— a process killed mid-ingest leaves only committed rows, and
re-running the ingest (or a full ``--rescan``) converges to the same
row set.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Any, Callable, TypeVar

import numpy as np

from ..campaign.results import canonical_row_json
from ..trace.io.fingerprint import file_sha256
from ..trace.trace import BlockTrace
from .features import FEATURES_VERSION, feature_names, trace_feature_vector

__all__ = [
    "SCHEMA_VERSION",
    "LakeCatalog",
    "LakeError",
    "default_lake_path",
    "spec_fingerprint",
]

#: Environment override for the default catalog location.
_ENV_DB = "REPRO_LAKE_DB"


def default_lake_path() -> Path:
    """``$REPRO_LAKE_DB`` or ``~/.cache/repro-tracetracker/lake.sqlite``."""
    env = os.environ.get(_ENV_DB)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tracetracker" / "lake.sqlite"

#: Bump on any incompatible change to the table layout.  Stored in the
#: ``lake_meta`` table; opening a catalog with a different stamp raises
#: (rebuild with ``repro-lake ingest --rescan``).
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS lake_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS artifacts (
    fingerprint TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    path        TEXT NOT NULL,
    size_bytes  INTEGER NOT NULL,
    meta_json   TEXT NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_artifacts_kind ON artifacts (kind);
CREATE TABLE IF NOT EXISTS artifact_refs (
    fingerprint TEXT NOT NULL,
    ref         TEXT NOT NULL,
    PRIMARY KEY (fingerprint, ref)
);
CREATE TABLE IF NOT EXISTS trace_features (
    fingerprint      TEXT PRIMARY KEY,
    features_version INTEGER NOT NULL,
    names_json       TEXT NOT NULL,
    vector           BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_points (
    run_key          TEXT PRIMARY KEY,
    spec_fingerprint TEXT NOT NULL,
    campaign         TEXT NOT NULL,
    action           TEXT NOT NULL,
    workload         TEXT NOT NULL,
    device_name      TEXT NOT NULL,
    device_kind      TEXT NOT NULL,
    method           TEXT NOT NULL,
    n_requests       INTEGER NOT NULL,
    queue_depth      REAL,
    row_json         TEXT NOT NULL,
    source_dir       TEXT,
    checkpoint_file  TEXT,
    wall_s           REAL
);
CREATE INDEX IF NOT EXISTS idx_points_workload ON campaign_points (workload);
CREATE INDEX IF NOT EXISTS idx_points_device_kind ON campaign_points (device_kind);
CREATE INDEX IF NOT EXISTS idx_points_spec ON campaign_points (spec_fingerprint);
"""


class LakeError(RuntimeError):
    """The catalog cannot be used (wrong schema version, bad database)."""


_T = TypeVar("_T")

#: Bounded retry for write transactions that lose the lock race even
#: after SQLite's own busy timeout (WAL still serialises writers; under
#: heavy multi-process recording the timeout can expire spuriously).
_LOCKED_ATTEMPTS = 5
_LOCKED_BASE_DELAY_S = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    """Whether an OperationalError is the transient lock/busy kind."""
    message = str(exc).lower()
    return "locked" in message or "busy" in message


def _write_with_retry(write: Callable[[], _T]) -> _T:
    """Run one write transaction, retrying lock contention with backoff.

    Only ``database is locked``/``busy`` errors retry — they are
    contention, and the colliding transaction will commit and release.
    Every other ``OperationalError`` (malformed database, read-only
    file, out of disk) raises immediately: retrying cannot fix it.
    """
    for attempt in range(_LOCKED_ATTEMPTS):
        try:
            return write()
        except sqlite3.OperationalError as exc:
            if not _is_locked(exc) or attempt == _LOCKED_ATTEMPTS - 1:
                raise
            time.sleep(_LOCKED_BASE_DELAY_S * 2**attempt)
    raise AssertionError("unreachable")


def spec_fingerprint(spec_dict: dict[str, Any]) -> str:
    """Stable SHA-1 fingerprint of a campaign spec's canonical dict.

    Name and description are part of the dict on purpose here — the
    fingerprint identifies *which spec* recorded a point (provenance),
    while cross-campaign dedup keys on the run key, which excludes
    them (:func:`repro.campaign.plan.run_key`).
    """
    canonical = json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:20]


def _canonical_json(value: Any) -> str:
    """Sorted-key, separator-free JSON — one byte form per value.

    Rows persisted to ``campaign_points`` share their byte form with
    :func:`repro.campaign.results.canonical_row_json`; this helper
    extends the same encoding to non-mapping values (lists, dumps).
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class LakeCatalog:
    """A WAL-mode SQLite catalog over one result lake.

    Parameters
    ----------
    path:
        Database file (created with the v1 schema when missing).
    timeout_s:
        SQLite busy timeout — concurrent writers (parallel campaign
        workers recording points) wait this long for the lock instead
        of failing with ``database is locked``.
    """

    def __init__(self, path: str | Path, timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout_s)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout_s * 1000)}")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM lake_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO lake_meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise LakeError(
                    f"{self.path} has lake schema version {row[0]}; this build "
                    f"reads version {SCHEMA_VERSION} — rebuild with "
                    f"'repro-lake ingest --rescan'"
                )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "LakeCatalog":
        """Context-manager entry: the open catalog itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def __repr__(self) -> str:
        return f"LakeCatalog({self.path})"

    # -- artifacts -----------------------------------------------------

    def record_artifact(
        self,
        kind: str,
        path: str | Path,
        ref: str | None = None,
        fingerprint: str | None = None,
        meta: dict[str, Any] | None = None,
    ) -> str:
        """Upsert one on-disk artifact; returns its content fingerprint.

        The fingerprint defaults to the file's SHA-256, so re-ingesting
        identical bytes — same file, a copy, a bit-identical regenerate
        — lands on the existing row (the canonical ``path`` is the
        lexicographically smallest seen, which keeps rescans of one
        tree byte-deterministic).  ``ref`` adds a reference edge.
        Paths are stored resolved, so cataloging the same file through
        a relative path (e.g. ``repro-lake ingest ./runs``) lands on
        the same row the live producers wrote.

        Rows whose canonical path equals this one but whose content
        differs are **superseded** (dropped with their refs and feature
        vectors): the file was rewritten, the old bytes are gone, and
        keeping the stale row would make a live-recorded catalog
        diverge from a rescan of the same tree.
        """
        p = Path(path).resolve()
        if fingerprint is None:
            fingerprint = file_sha256(p)
        size = p.stat().st_size
        text = str(p)

        def _write() -> None:
            with self._conn:
                stale = [
                    r[0]
                    for r in self._conn.execute(
                        "SELECT fingerprint FROM artifacts WHERE path = ? AND fingerprint != ?",
                        (text, fingerprint),
                    )
                ]
                for old in stale:
                    self._conn.execute("DELETE FROM artifacts WHERE fingerprint = ?", (old,))
                    self._conn.execute(
                        "DELETE FROM artifact_refs WHERE fingerprint = ?", (old,)
                    )
                    self._conn.execute(
                        "DELETE FROM trace_features WHERE fingerprint = ?", (old,)
                    )
                self._conn.execute(
                    """
                    INSERT INTO artifacts (fingerprint, kind, path, size_bytes, meta_json)
                    VALUES (?, ?, ?, ?, ?)
                    ON CONFLICT(fingerprint) DO UPDATE SET
                        kind = excluded.kind,
                        path = MIN(artifacts.path, excluded.path),
                        size_bytes = excluded.size_bytes,
                        meta_json = excluded.meta_json
                    """,
                    (fingerprint, kind, text, size, _canonical_json(meta or {})),
                )
                if ref is not None:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO artifact_refs (fingerprint, ref) VALUES (?, ?)",
                        (fingerprint, ref),
                    )

        _write_with_retry(_write)
        return fingerprint

    def artifact(self, fingerprint: str) -> dict[str, Any] | None:
        """One artifact row as a dict, or ``None``."""
        row = self._conn.execute(
            "SELECT fingerprint, kind, path, size_bytes, meta_json "
            "FROM artifacts WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        return {
            "fingerprint": row[0],
            "kind": row[1],
            "path": row[2],
            "size_bytes": row[3],
            "meta": json.loads(row[4]),
        }

    def artifacts(self, kind: str | None = None) -> list[dict[str, Any]]:
        """All artifact rows (optionally one kind), fingerprint order."""
        sql = "SELECT fingerprint FROM artifacts"
        args: tuple[Any, ...] = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            args = (kind,)
        fingerprints = [r[0] for r in self._conn.execute(sql + " ORDER BY fingerprint", args)]
        return [self.artifact(f) for f in fingerprints]  # type: ignore[misc]

    def refs(self, fingerprint: str) -> list[str]:
        """Every reference recorded against one content fingerprint."""
        return [
            r[0]
            for r in self._conn.execute(
                "SELECT ref FROM artifact_refs WHERE fingerprint = ? ORDER BY ref",
                (fingerprint,),
            )
        ]

    # -- traces --------------------------------------------------------

    def record_trace(
        self, path: str | Path, trace: BlockTrace, ref: str | None = None
    ) -> str:
        """Catalog one stored trace: artifact row + feature vector.

        ``trace`` must be the decoded contents of ``path`` (the
        producers hold it in hand; the rescan path loads it).  Returns
        the content fingerprint.
        """
        vector = trace_feature_vector(trace)
        meta = {"name": trace.name, "n_requests": int(len(trace))}
        fingerprint = self.record_artifact("trace", path, ref=ref, meta=meta)

        def _write() -> None:
            with self._conn:
                self._conn.execute(
                    """
                    INSERT INTO trace_features (fingerprint, features_version, names_json, vector)
                    VALUES (?, ?, ?, ?)
                    ON CONFLICT(fingerprint) DO UPDATE SET
                        features_version = excluded.features_version,
                        names_json = excluded.names_json,
                        vector = excluded.vector
                    """,
                    (
                        fingerprint,
                        FEATURES_VERSION,
                        _canonical_json(list(feature_names())),
                        vector.astype(np.float64).tobytes(),
                    ),
                )

        _write_with_retry(_write)
        return fingerprint

    def feature_matrix(self) -> tuple[list[str], np.ndarray]:
        """Every trace's feature vector, fingerprint-sorted.

        Returns ``(fingerprints, matrix)`` with one row per trace; the
        deterministic row order is what keeps similarity results stable
        across processes and rescans.  Rows written under a different
        :data:`~repro.lake.features.FEATURES_VERSION` are skipped.
        """
        rows = self._conn.execute(
            "SELECT fingerprint, vector FROM trace_features "
            "WHERE features_version = ? ORDER BY fingerprint",
            (FEATURES_VERSION,),
        ).fetchall()
        if not rows:
            return [], np.empty((0, len(feature_names())), dtype=np.float64)
        fingerprints = [r[0] for r in rows]
        matrix = np.vstack([np.frombuffer(r[1], dtype=np.float64) for r in rows])
        return fingerprints, matrix

    # -- campaign points -----------------------------------------------

    def record_point(
        self,
        run_key: str,
        spec_fp: str,
        campaign: str,
        action: str,
        row: dict[str, Any],
        device_kind: str,
        queue_depth: float | None = None,
        source_dir: str | None = None,
        checkpoint_file: str | None = None,
        wall_s: float | None = None,
    ) -> None:
        """Upsert one completed campaign grid point.

        The axis values (workload/device/method/n_requests) are read
        from ``row`` — every engine checkpoint row carries them.  The
        upsert is atomic and last-writer-wins, matching the engine's
        checkpoint overwrite semantics.
        """
        def _write() -> None:
            with self._conn:
                self._conn.execute(
                    """
                    INSERT INTO campaign_points (
                        run_key, spec_fingerprint, campaign, action, workload,
                        device_name, device_kind, method, n_requests, queue_depth,
                        row_json, source_dir, checkpoint_file, wall_s
                    ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                    ON CONFLICT(run_key) DO UPDATE SET
                        spec_fingerprint = excluded.spec_fingerprint,
                        campaign = excluded.campaign,
                        action = excluded.action,
                        workload = excluded.workload,
                        device_name = excluded.device_name,
                        device_kind = excluded.device_kind,
                        method = excluded.method,
                        n_requests = excluded.n_requests,
                        queue_depth = excluded.queue_depth,
                        row_json = excluded.row_json,
                        source_dir = excluded.source_dir,
                        checkpoint_file = excluded.checkpoint_file,
                        wall_s = excluded.wall_s
                    """,
                    (
                        run_key,
                        spec_fp,
                        campaign,
                        action,
                        str(row.get("workload", "")),
                        str(row.get("device", "")),
                        device_kind,
                        str(row.get("method", "")),
                        int(row.get("n_requests", 0)),
                        queue_depth,
                        canonical_row_json(row),
                        source_dir,
                        checkpoint_file,
                        wall_s,
                    ),
                )

        _write_with_retry(_write)

    def completed_rows(self, run_keys: list[str]) -> dict[str, dict[str, Any]]:
        """The recorded result rows for the given run keys.

        The engine's cross-campaign resume query: whatever subset of
        ``run_keys`` any prior campaign recorded comes back as
        ``{run_key: row}``, decoded from the canonical JSON.
        """
        out: dict[str, dict[str, Any]] = {}
        chunk = 500  # stay clear of SQLite's bound-parameter limit
        for start in range(0, len(run_keys), chunk):
            wanted = run_keys[start : start + chunk]
            marks = ",".join("?" for _ in wanted)
            for key, text in self._conn.execute(
                f"SELECT run_key, row_json FROM campaign_points WHERE run_key IN ({marks})",
                wanted,
            ):
                out[key] = json.loads(text)
        return out

    def query_points(
        self,
        workload: str | None = None,
        device_kind: str | None = None,
        device_name: str | None = None,
        method: str | None = None,
        action: str | None = None,
        campaign: str | None = None,
        min_queue_depth: float | None = None,
        min_n_requests: int | None = None,
    ) -> list[dict[str, Any]]:
        """Cross-campaign point query (AND of the given filters).

        The ROADMAP's motivating example — "all flash_array runs at
        qd≥8 touching workload X" — is
        ``query_points(device_kind="flash_array", min_queue_depth=8,
        workload="X")``.  Rows come back run-key-sorted, each the full
        decoded result row plus the catalog's provenance columns.
        """
        clauses: list[str] = []
        args: list[Any] = []
        for column, value in (
            ("workload", workload),
            ("device_kind", device_kind),
            ("device_name", device_name),
            ("method", method),
            ("action", action),
            ("campaign", campaign),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                args.append(value)
        if min_queue_depth is not None:
            clauses.append("queue_depth >= ?")
            args.append(min_queue_depth)
        if min_n_requests is not None:
            clauses.append("n_requests >= ?")
            args.append(min_n_requests)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        out = []
        for record in self._conn.execute(
            "SELECT run_key, spec_fingerprint, campaign, action, device_kind, "
            f"queue_depth, row_json, source_dir, checkpoint_file, wall_s "
            f"FROM campaign_points {where} ORDER BY run_key",
            args,
        ):
            row = json.loads(record[6])
            row.update(
                {
                    "run_key": record[0],
                    "spec_fingerprint": record[1],
                    "campaign": record[2],
                    "action": record[3],
                    "device_kind": record[4],
                    "queue_depth": record[5],
                    "source_dir": record[7],
                    "checkpoint_file": record[8],
                    "wall_s": record[9],
                }
            )
            out.append(row)
        return out

    # -- maintenance ---------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Row counts per table (the ``repro-lake stats`` payload)."""
        out = {}
        for table in ("artifacts", "artifact_refs", "trace_features", "campaign_points"):
            out[table] = int(
                self._conn.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0]
            )
        return out

    def clear(self) -> None:
        """Drop every row (``ingest --rescan`` rebuilds from the tree)."""
        with self._conn:
            for table in ("artifacts", "artifact_refs", "trace_features", "campaign_points"):
                self._conn.execute(f"DELETE FROM {table}")

    def gc(self) -> dict[str, int]:
        """Drop rows whose backing files no longer exist.

        Artifacts (with their refs and feature vectors) whose ``path``
        is gone, and campaign points whose checkpoint file under
        ``source_dir`` is gone, are removed in one transaction.
        Returns ``{"artifacts": n, "campaign_points": m}``.
        """
        dead_artifacts = [
            fp
            for fp, path in self._conn.execute("SELECT fingerprint, path FROM artifacts")
            if not Path(path).exists()
        ]
        dead_points = []
        for key, source, name in self._conn.execute(
            "SELECT run_key, source_dir, checkpoint_file FROM campaign_points"
        ):
            if source is None or name is None:
                continue
            if not (Path(source) / "runs" / name).exists():
                dead_points.append(key)
        with self._conn:
            for fp in dead_artifacts:
                self._conn.execute("DELETE FROM artifacts WHERE fingerprint = ?", (fp,))
                self._conn.execute("DELETE FROM artifact_refs WHERE fingerprint = ?", (fp,))
                self._conn.execute("DELETE FROM trace_features WHERE fingerprint = ?", (fp,))
            for key in dead_points:
                self._conn.execute("DELETE FROM campaign_points WHERE run_key = ?", (key,))
        return {"artifacts": len(dead_artifacts), "campaign_points": len(dead_points)}

    def dump_rows(self) -> str:
        """Canonical JSON dump of every table, deterministically ordered.

        The byte-equivalence oracle of the crash/rescan tests: two
        catalogs hold the same logical content iff their dumps match
        byte for byte (connection state, WAL frames, vacuum history,
        and row insertion order never show through).
        """
        doc: dict[str, Any] = {"schema_version": SCHEMA_VERSION}
        doc["artifacts"] = [
            list(r)
            for r in self._conn.execute(
                "SELECT fingerprint, kind, path, size_bytes, meta_json "
                "FROM artifacts ORDER BY fingerprint"
            )
        ]
        doc["artifact_refs"] = [
            list(r)
            for r in self._conn.execute(
                "SELECT fingerprint, ref FROM artifact_refs ORDER BY fingerprint, ref"
            )
        ]
        doc["trace_features"] = [
            [r[0], r[1], r[2], r[3].hex()]
            for r in self._conn.execute(
                "SELECT fingerprint, features_version, names_json, vector "
                "FROM trace_features ORDER BY fingerprint"
            )
        ]
        doc["campaign_points"] = [
            list(r)
            for r in self._conn.execute(
                "SELECT run_key, spec_fingerprint, campaign, action, workload, "
                "device_name, device_kind, method, n_requests, queue_depth, "
                "row_json, source_dir, checkpoint_file, wall_s "
                "FROM campaign_points ORDER BY run_key"
            )
        ]
        return _canonical_json(doc)
