"""Exact nearest-neighbour search over the lake's feature matrix.

Brute-force and deterministic by design: the catalog holds thousands of
traces, not billions, so an exact standardised-Euclidean scan (a few
vectorised NumPy operations) beats an approximate index that would add
a dependency and non-determinism.  The contract the property tests pin:

- a cataloged trace is always its own nearest neighbour (distance 0);
- results are a pure function of the feature matrix — same catalog,
  same query, same ranking, in any process;
- ties break by fingerprint, ascending, so rankings are total.

Feature dimensions are standardised (z-scored) across the matrix
before distances are measured, so a dimension with large natural
magnitude (log trace length) cannot drown one with small magnitude
(read fraction).  Constant dimensions are left untouched — they
contribute zero to every distance either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Neighbor", "nearest_neighbors", "similar_traces"]


@dataclass(frozen=True)
class Neighbor:
    """One similarity hit: a cataloged trace and its distance."""

    fingerprint: str
    distance: float


def _standardize(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Z-score each column; returns (standardised, mean, scale).

    Columns with zero spread keep scale 1 so they map to a constant —
    equal in every row, hence distance-neutral.
    """
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    scale = np.where(std > 0.0, std, 1.0)
    return (matrix - mean) / scale, mean, scale


def nearest_neighbors(
    fingerprints: list[str],
    matrix: np.ndarray,
    query: np.ndarray,
    k: int = 5,
    exclude: str | None = None,
) -> list[Neighbor]:
    """The ``k`` cataloged vectors closest to ``query``.

    ``matrix`` rows correspond to ``fingerprints``
    (:meth:`~repro.lake.catalog.LakeCatalog.feature_matrix` order);
    ``query`` is a raw (unstandardised) feature vector.  ``exclude``
    drops one fingerprint from the result — the idiom for "neighbours
    of a trace already in the catalog, other than itself".  Distances
    are standardised-Euclidean; ties order by fingerprint.
    """
    if len(fingerprints) != len(matrix):
        raise ValueError(
            f"{len(fingerprints)} fingerprints for {len(matrix)} matrix rows"
        )
    if len(matrix) == 0:
        return []
    query = np.asarray(query, dtype=np.float64)
    if query.shape != (matrix.shape[1],):
        raise ValueError(
            f"query has shape {query.shape}; expected ({matrix.shape[1]},)"
        )
    standardized, mean, scale = _standardize(matrix)
    q = (query - mean) / scale
    distances = np.sqrt(((standardized - q) ** 2).sum(axis=1))
    order = sorted(range(len(fingerprints)), key=lambda i: (distances[i], fingerprints[i]))
    out: list[Neighbor] = []
    for i in order:
        if exclude is not None and fingerprints[i] == exclude:
            continue
        out.append(Neighbor(fingerprint=fingerprints[i], distance=float(distances[i])))
        if len(out) == k:
            break
    return out


def similar_traces(catalog, query: np.ndarray | str, k: int = 5) -> list[Neighbor]:
    """Nearest cataloged traces to a query vector or fingerprint.

    With a fingerprint, the stored vector is the query and the trace
    itself is excluded from its own result list.  ``catalog`` is a
    :class:`~repro.lake.catalog.LakeCatalog` (typed loosely to keep
    this module import-light).
    """
    fingerprints, matrix = catalog.feature_matrix()
    exclude = None
    if isinstance(query, str):
        if query not in fingerprints:
            raise KeyError(f"no feature vector cataloged for {query!r}")
        exclude = query
        query = matrix[fingerprints.index(query)]
    return nearest_neighbors(fingerprints, matrix, query, k=k, exclude=exclude)
