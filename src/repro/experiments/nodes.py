"""Evaluation-node factories: the paper's OLD and NEW systems.

Section V's testbed is reproduced as two simulator configurations:

- the **OLD node** — the decade-old HDD server the public traces were
  collected on (7200 rpm disk behind SATA II);
- the **NEW node** — the all-flash array target ("four NVM Express
  SSDs ... 18 channels, 36 dies, and 72 planes" each, behind PCIe 3.0).

Every experiment builds devices through these factories so the whole
evaluation shares one hardware definition.
"""

from __future__ import annotations

from ..storage import FlashArray, FlashGeometry, HDDGeometry, HDDModel

__all__ = ["old_node", "new_node", "calibration_disk"]


def old_node(seed: int = 42) -> HDDModel:
    """The HDD-based collection node (OLD).

    ``seed`` controls the rotational-phase RNG; experiments that build
    several OLD traces use distinct seeds for independence.
    """
    return HDDModel(geometry=HDDGeometry(), seed=seed)


def new_node() -> FlashArray:
    """The all-flash target node (NEW): 4 SSDs, paper geometry."""
    return FlashArray(n_ssds=4, stripe_kb=128, geometry=FlashGeometry())


def calibration_disk(seed: int = 7) -> HDDModel:
    """The enterprise disk used for the T_movd calibration (Figure 7).

    The paper replays FIU workloads on a WD Blue class drive; a
    slightly newer geometry (faster media rate) than the OLD node.
    """
    geometry = HDDGeometry(
        rpm=7200.0,
        avg_seek_ms=8.9,
        track_to_track_ms=2.0,
        sectors_per_track=2000,
        heads=4,
    )
    return HDDModel(geometry=geometry, seed=seed)
