"""OLD/NEW trace-pair construction (the paper's verification method).

"The same patterns are collected from both OLD and NEW for a fair
comparison" — one intent stream, two devices.  The OLD trace is what a
reconstruction method receives; the NEW trace is the ground truth it is
scored against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.device import StorageDevice
from ..trace.trace import BlockTrace
from ..workloads.catalog import get_spec
from ..workloads.generator import IntentStream, WorkloadSpec, collect_trace, generate_intents
from ..workloads.materialize import collect_trace_cached
from .nodes import new_node, old_node

__all__ = ["TracePair", "build_pair", "build_pair_for"]


@dataclass(frozen=True, slots=True)
class TracePair:
    """An OLD/NEW trace pair sharing one intent stream.

    Attributes
    ----------
    old:
        The trace collected on the OLD (HDD) node — reconstruction input.
    new:
        The trace collected on the NEW (flash) node — ground truth.
    intents:
        The shared intent stream (carries true idles and sync flags).
        ``None`` when both traces came out of the binary trace store
        without regenerating the stream; :meth:`regenerate_intents`
        rebuilds it on demand (generation is deterministic in the
        spec).
    """

    old: BlockTrace
    new: BlockTrace
    intents: IntentStream | None
    spec: WorkloadSpec | None = None

    @property
    def name(self) -> str:
        """Workload name of the pair."""
        return self.old.name

    def regenerate_intents(self) -> IntentStream:
        """The shared intent stream, regenerating it if it was skipped."""
        if self.intents is not None:
            return self.intents
        if self.spec is None:
            raise ValueError("pair carries neither intents nor a spec")
        return generate_intents(self.spec)


def build_pair(
    intents: IntentStream,
    old_device: StorageDevice | None = None,
    new_device: StorageDevice | None = None,
    old_has_device_times: bool = True,
) -> TracePair:
    """Collect one intent stream on both nodes.

    ``old_has_device_times`` selects the trace family style: ``True``
    produces an MSPS/MSRC-style OLD trace (issue/completion stamps,
    ":math:`T_{sdev}` known"); ``False`` an FIU-style one.  The NEW
    trace always keeps device times — it is measurement ground truth,
    not reconstruction input.
    """
    old_dev = old_device if old_device is not None else old_node()
    new_dev = new_device if new_device is not None else new_node()
    old = collect_trace(intents, old_dev, record_device_times=old_has_device_times)
    new = collect_trace(intents, new_dev, record_device_times=True)
    return TracePair(old=old, new=new, intents=intents)


def build_pair_for(
    workload: str,
    n_requests: int | None = None,
    old_has_device_times: bool | None = None,
    old_device: StorageDevice | None = None,
    new_device: StorageDevice | None = None,
) -> TracePair:
    """OLD/NEW pair for a named catalog workload.

    ``old_has_device_times`` defaults to the workload family's actual
    collection style: MSPS and MSRC traces carry device stamps, FIU
    traces do not (Section V's "T_sdev known / unknown" split).

    ``old_device``/``new_device`` default to the paper's evaluation
    nodes; the campaign engine passes grid devices here so any
    (source, target) hardware combination shares this one pair-building
    code path (and its trace-store keys).
    """
    spec = get_spec(workload)
    if n_requests is not None:
        spec = spec.scaled(n_requests)
    if old_has_device_times is None:
        old_has_device_times = spec.category in ("MSPS", "MSRC")
    # Through the trace store: with both collections cached, the intent
    # stream is never generated; on a miss it is generated once and
    # shared by both devices (the paper's one-stream-two-nodes method).
    generated: list[IntentStream] = []

    def shared_intents() -> IntentStream:
        if not generated:
            generated.append(generate_intents(spec))
        return generated[0]

    old = collect_trace_cached(
        spec,
        old_device if old_device is not None else old_node(),
        record_device_times=old_has_device_times,
        intents_factory=shared_intents,
    )
    new = collect_trace_cached(
        spec,
        new_device if new_device is not None else new_node(),
        record_device_times=True,
        intents_factory=shared_intents,
    )
    return TracePair(
        old=old, new=new, intents=generated[0] if generated else None, spec=spec
    )
