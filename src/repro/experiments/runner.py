"""Run the complete evaluation and render one text report.

``python -m repro.experiments.runner [--fast] [--jobs N] [--out report.txt]``
regenerates every table and figure and writes the combined report — the
whole of Section V in one command.  The benchmark harness does the same
per-artefact with timing and shape assertions; this runner exists for
humans who want the full picture at once.

The heavy lifting is done by :class:`ParallelRunner`:

- **independent experiments** — each figure/table is a pure function of
  its parameters, so they execute across a
  :class:`concurrent.futures.ProcessPoolExecutor` (``--jobs N``; the
  default of 1 keeps single-core boxes fork-free);
- **result cache** — every experiment is deterministic in
  ``(experiment id, n_requests, source code)`` (all seeds are fixed
  constants of the catalog), so results are pickled under a key that
  includes a content hash of the ``repro`` package and reused by later
  runs of the same code; disable with ``--no-cache`` or point the
  location elsewhere with ``--cache-dir`` / ``$REPRO_CACHE_DIR``;
- **binary trace store** — the catalog traces the experiments consume
  are materialised once into the content-keyed ``.npz`` store
  (:class:`repro.trace.io.cache.TraceStore`) and memory-mapped back by
  every later run and every worker process, instead of re-generating
  them per worker; disable with ``--no-trace-store`` or relocate with
  ``--trace-store-dir`` / ``$REPRO_TRACE_STORE_DIR``.  Unlike the
  result cache, store entries are keyed by the *content* that defines
  a trace — spec parameters, device fingerprint, and a hash of the
  generator/storage-model sources — so they survive edits to every
  other layer (figures, analysis, metrics) but invalidate the moment
  trace-producing code changes;
- **deterministic report** — the report text contains no wall-clock
  timings, so sequential, parallel, cached and uncached runs emit
  byte-identical reports (timings go to stderr).
"""

from __future__ import annotations

import argparse
import functools
import hashlib
import os
import pickle
import sys
import time
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import TextIO

from ..trace.io.cache import TraceStore, default_trace_store_dir, get_default_store, set_default_store
from . import figures
from .reporting import format_cdf_series, format_table

__all__ = ["ParallelRunner", "run_all", "main"]

#: Bump when the cache layout itself changes.
_CACHE_SCHEMA = 1


@functools.cache
def _code_fingerprint() -> str:
    """Content hash of the ``repro`` package source.

    Folded into every cache key so results cached against one version
    of the models/figures are never served after the code changes —
    for a reproduction, a silently stale report is worse than a slow
    one.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha1()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:12]

#: (experiment id, title, callable returning a result with .rows()).
_EXPERIMENTS: tuple[tuple[str, str, Callable[[int], object]], ...] = (
    ("table1", "Table I: workload characteristics",
     lambda n: figures.table1_characteristics(traces_per_workload=2, n_requests=max(n // 2, 500))),
    ("fig1", "Figure 1: inter-arrival CDFs (OLD/NEW/Revision/Acceleration)",
     lambda n: figures.fig1_intt_cdf(n_requests=n)),
    ("fig3", "Figure 3: longer/equal/shorter breakdown",
     lambda n: figures.fig3_breakdown(n_requests=n)),
    ("fig5", "Figure 5: CDF shape classes",
     lambda n: figures.fig5_cdf_types(n_requests=n)),
    ("fig7", "Figure 7: T_movd calibration and T_cdel profile",
     lambda n: figures.fig7_tmovd_tcdel(n_requests=max(n // 2, 500))),
    ("fig9", "Figure 9: pchip vs spline interpolation",
     lambda n: figures.fig9_interpolation()),
    ("fig10", "Figure 10: Len(TP) / Detection vs injected idle",
     lambda n: figures.fig10_len_tp(n_requests=n)),
    ("fig11", "Figure 11: Len(FP) distributions",
     lambda n: figures.fig11_len_fp(n_requests=n)),
    ("fig12", "Figure 12: method CDFs on MSNFS",
     lambda n: figures.fig12_method_cdfs(n_requests=n)),
    ("fig13", "Figure 13: T_intt gap to TraceTracker",
     lambda n: figures.fig13_intt_gap(n_requests=max(n // 2, 500))),
    ("fig14", "Figure 14: target vs TraceTracker differences",
     lambda n: figures.fig14_target_diff(n_requests=max(n // 2, 500))),
    ("fig15", "Figure 15: CFS / ikki distribution detail",
     lambda n: figures.fig15_distribution(n_requests=n)),
    ("fig16", "Figure 16: average idle per workload",
     lambda n: figures.fig16_avg_idle(n_requests=max(n // 2, 500))),
    ("fig17", "Figure 17: idle breakdown",
     lambda n: figures.fig17_idle_breakdown(n_requests=max(n // 2, 500))),
)

_BY_ID = {exp_id: (title, run) for exp_id, title, run in _EXPERIMENTS}


def _compute_experiment(exp_id: str, n_requests: int) -> object:
    """Run one experiment (module-level so worker processes can pickle it)."""
    __, run = _BY_ID[exp_id]
    return run(n_requests)


def _worker_init_trace_store(root: str) -> None:
    """Point a worker process at the shared binary trace store."""
    set_default_store(TraceStore(root=root, enabled=True))


#: Shared per-worker context installed by :func:`_worker_init_map`.
#: Shipped once per worker process (via the pool initializer) instead
#: of once per task, which is what spares the campaign engine from
#: re-pickling its full spec dict for every shard.
_MAP_CONTEXT: object = None


def _worker_init_map(store_root: str | None, context: object) -> None:
    """Initializer for :meth:`ParallelRunner.map` workers.

    Installs the shared trace store (when enabled) and the caller's
    context object exactly once per worker process.
    """
    global _MAP_CONTEXT
    if store_root is not None:
        _worker_init_trace_store(store_root)
    _MAP_CONTEXT = context


def _map_call(fn: Callable[[object, object], object], task: object) -> object:
    """Worker-side trampoline: apply ``fn`` to (installed context, task)."""
    return fn(_MAP_CONTEXT, task)


def _compute_with_store_stats(exp_id: str, n_requests: int) -> tuple[object, int, int]:
    """Worker wrapper: result plus this call's store hit/miss deltas.

    Workers are reused across experiments, so per-call deltas (not the
    cumulative counters) are what the parent can safely sum.
    """
    store = get_default_store()
    hits, misses = store.hits, store.misses
    result = _compute_experiment(exp_id, n_requests)
    return result, store.hits - hits, store.misses - misses


def default_cache_dir() -> Path:
    """Cache location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-tracetracker``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tracetracker"


class ParallelRunner:
    """Executes the figure/table experiments, optionally in parallel.

    Parameters
    ----------
    n_requests:
        Requests per generated trace (experiments derive their own
        scale knobs from it).
    jobs:
        Worker processes.  1 (default) runs inline in this process;
        higher values fan experiments out over a process pool.
    use_cache:
        Reuse pickled results keyed by ``(schema, code fingerprint,
        experiment id, n_requests)``.  Experiments are deterministic in
        those parameters, so a hit reproduces the run exactly; editing
        any source under ``repro`` invalidates every entry.
    cache_dir:
        Cache location; defaults to :func:`default_cache_dir`.
    only:
        Restrict to a subset of experiment ids.
    use_trace_store:
        Materialise the catalog traces experiments consume into the
        binary trace store and load them from there (in this process
        and every worker).  Content-keyed, so safe across code edits.
    trace_store_dir:
        Store location; defaults to
        :func:`repro.trace.io.cache.default_trace_store_dir`.
    """

    def __init__(
        self,
        n_requests: int = 4_000,
        jobs: int = 1,
        use_cache: bool = False,
        cache_dir: Path | str | None = None,
        only: set[str] | None = None,
        use_trace_store: bool = False,
        trace_store_dir: Path | str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if only is not None:
            unknown = only - set(_BY_ID)
            if unknown:
                raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
        self.n_requests = n_requests
        self.jobs = jobs
        self.use_cache = use_cache
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.only = only
        self.use_trace_store = use_trace_store
        self.trace_store_dir = (
            Path(trace_store_dir) if trace_store_dir is not None else default_trace_store_dir()
        )

    # -- cache ---------------------------------------------------------

    def _cache_path(self, exp_id: str) -> Path:
        return self.cache_dir / (
            f"v{_CACHE_SCHEMA}-{_code_fingerprint()}-{exp_id}-n{self.n_requests}.pkl"
        )

    def _cache_load(self, exp_id: str) -> object | None:
        if not self.use_cache:
            return None
        path = self._cache_path(exp_id)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # A missing, truncated, corrupted, or schema-incompatible
            # entry is never fatal — recompute and overwrite it.
            return None

    def _cache_store(self, exp_id: str, result: object) -> None:
        if not self.use_cache:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._cache_path(exp_id)
            tmp = path.with_suffix(".tmp")
            with open(tmp, "wb") as handle:
                pickle.dump(result, handle)
            os.replace(tmp, path)
        except (OSError, pickle.PickleError):
            pass  # caching is best-effort; the result is still returned

    # -- execution -----------------------------------------------------

    def map(
        self,
        fn: Callable[..., object],
        tasks: list[object],
        context: object | None = None,
    ) -> list[object]:
        """Generic fan-out of picklable tasks over the runner's pool.

        ``fn`` runs once per task — inline for ``jobs=1`` (or a single
        task), across a :class:`~concurrent.futures.
        ProcessPoolExecutor` otherwise — and results come back in task
        order.  When the trace store is enabled, the parent and every
        worker process share it exactly as :meth:`results` arranges,
        so callers (the campaign engine shards through here) inherit
        the materialise-once/mmap-everywhere behaviour.

        ``context`` (when not ``None``) is a picklable object shipped
        to each worker process exactly once, through the pool
        initializer, and handed to ``fn`` as its first argument:
        ``fn(context, task)``.  Use it for per-run state every task
        needs (the campaign engine passes its expanded spec dict), so
        large shared payloads are not re-pickled per task.
        """
        tasks = list(tasks)
        previous_store = get_default_store()
        if self.use_trace_store:
            set_default_store(TraceStore(root=self.trace_store_dir, enabled=True))
        try:
            if self.jobs > 1 and len(tasks) > 1:
                store_root = str(self.trace_store_dir) if self.use_trace_store else None
                if context is not None:
                    initializer: Callable[..., None] | None = _worker_init_map
                    initargs: tuple = (store_root, context)
                    call: Callable[[object], object] = functools.partial(_map_call, fn)
                elif store_root is not None:
                    initializer, initargs = _worker_init_trace_store, (store_root,)
                    call = fn
                else:
                    initializer, initargs = None, ()
                    call = fn
                from concurrent.futures.process import BrokenProcessPool

                try:
                    with ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(tasks)),
                        initializer=initializer,
                        initargs=initargs,
                    ) as pool:
                        return list(pool.map(call, tasks))
                except BrokenProcessPool as exc:
                    # A SIGKILLed/OOM-killed worker takes the whole pool
                    # down; the pool cannot say which task died, so all
                    # this layer can add is the recovery pointer.
                    raise BrokenProcessPool(
                        f"{exc} — a worker process died abruptly (OOM killer?); "
                        f"completed work is already checkpointed by the caller; "
                        f"campaign runs can use scheduler='supervised' to "
                        f"reclaim leases and respawn workers instead of failing"
                    ) from exc
            if context is not None:
                return [fn(context, task) for task in tasks]
            return [fn(task) for task in tasks]
        finally:
            if self.use_trace_store:
                set_default_store(previous_store)

    def _selected(self) -> list[tuple[str, str]]:
        return [
            (exp_id, title)
            for exp_id, title, __ in _EXPERIMENTS
            if self.only is None or exp_id in self.only
        ]

    def results(self, log: TextIO | None = None) -> dict[str, object]:
        """Compute (or load) every selected experiment's result object.

        Returns results keyed by experiment id, in canonical order
        regardless of worker completion order.
        """
        log = log if log is not None else sys.stderr
        selected = self._selected()
        results: dict[str, object] = {}
        missing: list[str] = []
        for exp_id, __ in selected:
            cached = self._cache_load(exp_id)
            if cached is not None:
                results[exp_id] = cached
                log.write(f"[runner] {exp_id}: cache hit\n")
            else:
                missing.append(exp_id)
        if missing:
            start = time.perf_counter()
            previous_store = get_default_store()
            if self.use_trace_store:
                set_default_store(TraceStore(root=self.trace_store_dir, enabled=True))
            try:
                if self.jobs > 1 and len(missing) > 1:
                    if self.use_trace_store:
                        initializer, initargs = (
                            _worker_init_trace_store, (str(self.trace_store_dir),)
                        )
                        compute = _compute_with_store_stats
                    else:
                        initializer, initargs = None, ()
                        compute = None
                    with ProcessPoolExecutor(
                        max_workers=self.jobs, initializer=initializer, initargs=initargs
                    ) as pool:
                        futures = {
                            exp_id: pool.submit(
                                compute or _compute_experiment, exp_id, self.n_requests
                            )
                            for exp_id in missing
                        }
                        for exp_id, future in futures.items():
                            if compute is not None:
                                # Fold the workers' store traffic into the
                                # parent's counters so the stats line below
                                # reflects what actually happened.
                                result, hits, misses = future.result()
                                parent_store = get_default_store()
                                parent_store.hits += hits
                                parent_store.misses += misses
                                results[exp_id] = result
                            else:
                                results[exp_id] = future.result()
                else:
                    for exp_id in missing:
                        results[exp_id] = _compute_experiment(exp_id, self.n_requests)
            finally:
                if self.use_trace_store:
                    store = get_default_store()
                    log.write(
                        f"[trace-store] hits={store.hits} misses={store.misses} "
                        f"dir={store.root}\n"
                    )
                    set_default_store(previous_store)
            log.write(
                f"[runner] computed {len(missing)} experiment(s) in "
                f"{time.perf_counter() - start:.1f}s (jobs={self.jobs})\n"
            )
            for exp_id in missing:
                self._cache_store(exp_id, results[exp_id])
        return {exp_id: results[exp_id] for exp_id, __ in selected}

    def run(self, out: TextIO = sys.stdout, log: TextIO | None = None) -> None:
        """Compute everything and stream the combined report to ``out``.

        The report text is timing-free and therefore identical across
        sequential/parallel/cached runs with equal parameters.
        """
        results = self.results(log=log)
        for exp_id, title in self._selected():
            result = results[exp_id]
            out.write("\n" + "=" * 72 + "\n")
            out.write(f"{title}   [{exp_id}]\n")
            out.write("=" * 72 + "\n")
            rows = result.rows()  # type: ignore[attr-defined]
            out.write(format_table(rows) + "\n")
            series = getattr(result, "series", None)
            if isinstance(series, dict) and series and isinstance(next(iter(series.values())), list):
                out.write("\nCDF positions:\n")
                out.write(format_cdf_series(series) + "\n")


def run_all(n_requests: int = 4_000, out: TextIO = sys.stdout, only: set[str] | None = None) -> None:
    """Backwards-compatible sequential, cache-free entry point."""
    ParallelRunner(n_requests=n_requests, jobs=1, use_cache=False, only=only).run(out=out)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=4_000, help="requests per generated trace (default 4000)"
    )
    parser.add_argument("--fast", action="store_true", help="quarter-size quick pass")
    parser.add_argument("--out", type=str, default=None, help="write the report to a file")
    parser.add_argument(
        "--only", type=str, default=None,
        help="comma-separated experiment ids (e.g. fig12,table1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent experiments (default 1: inline)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute everything; do not read or write the result cache",
    )
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-tracetracker)",
    )
    parser.add_argument(
        "--no-trace-store", action="store_true",
        help="regenerate catalog traces in memory; do not read or write the binary trace store",
    )
    parser.add_argument(
        "--trace-store-dir", type=str, default=None,
        help=(
            "binary trace-store directory (default: $REPRO_TRACE_STORE_DIR or "
            "~/.cache/repro-tracetracker/traces)"
        ),
    )
    args = parser.parse_args(argv)
    n = max(500, args.requests // 4) if args.fast else args.requests
    only = set(args.only.split(",")) if args.only else None
    try:
        runner = ParallelRunner(
            n_requests=n,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir,
            only=only,
            use_trace_store=not args.no_trace_store,
            trace_store_dir=args.trace_store_dir,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            runner.run(out=handle)
        print(f"report written to {args.out}")
    else:
        runner.run()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
