"""Run the complete evaluation and render one text report.

``python -m repro.experiments.runner [--fast] [--out report.txt]``
regenerates every table and figure in sequence and writes the combined
report — the whole of Section V in one command.  The benchmark harness
does the same per-artefact with timing and shape assertions; this
runner exists for humans who want the full picture at once.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable
from typing import TextIO

from . import figures
from .reporting import format_cdf_series, format_table

__all__ = ["run_all", "main"]

#: (experiment id, title, callable returning a result with .rows()).
_EXPERIMENTS: tuple[tuple[str, str, Callable[[int], object]], ...] = (
    ("table1", "Table I: workload characteristics",
     lambda n: figures.table1_characteristics(traces_per_workload=2, n_requests=max(n // 2, 500))),
    ("fig1", "Figure 1: inter-arrival CDFs (OLD/NEW/Revision/Acceleration)",
     lambda n: figures.fig1_intt_cdf(n_requests=n)),
    ("fig3", "Figure 3: longer/equal/shorter breakdown",
     lambda n: figures.fig3_breakdown(n_requests=n)),
    ("fig5", "Figure 5: CDF shape classes",
     lambda n: figures.fig5_cdf_types(n_requests=n)),
    ("fig7", "Figure 7: T_movd calibration and T_cdel profile",
     lambda n: figures.fig7_tmovd_tcdel(n_requests=max(n // 2, 500))),
    ("fig9", "Figure 9: pchip vs spline interpolation",
     lambda n: figures.fig9_interpolation()),
    ("fig10", "Figure 10: Len(TP) / Detection vs injected idle",
     lambda n: figures.fig10_len_tp(n_requests=n)),
    ("fig11", "Figure 11: Len(FP) distributions",
     lambda n: figures.fig11_len_fp(n_requests=n)),
    ("fig12", "Figure 12: method CDFs on MSNFS",
     lambda n: figures.fig12_method_cdfs(n_requests=n)),
    ("fig13", "Figure 13: T_intt gap to TraceTracker",
     lambda n: figures.fig13_intt_gap(n_requests=max(n // 2, 500))),
    ("fig14", "Figure 14: target vs TraceTracker differences",
     lambda n: figures.fig14_target_diff(n_requests=max(n // 2, 500))),
    ("fig15", "Figure 15: CFS / ikki distribution detail",
     lambda n: figures.fig15_distribution(n_requests=n)),
    ("fig16", "Figure 16: average idle per workload",
     lambda n: figures.fig16_avg_idle(n_requests=max(n // 2, 500))),
    ("fig17", "Figure 17: idle breakdown",
     lambda n: figures.fig17_idle_breakdown(n_requests=max(n // 2, 500))),
)


def run_all(n_requests: int = 4_000, out: TextIO = sys.stdout, only: set[str] | None = None) -> None:
    """Run every experiment and stream the report to ``out``.

    ``only`` restricts the run to a subset of experiment ids
    (``{"fig12", "table1"}``...).
    """
    total_start = time.perf_counter()
    for exp_id, title, run in _EXPERIMENTS:
        if only is not None and exp_id not in only:
            continue
        start = time.perf_counter()
        result = run(n_requests)
        elapsed = time.perf_counter() - start
        out.write("\n" + "=" * 72 + "\n")
        out.write(f"{title}   [{exp_id}, {elapsed:.1f}s]\n")
        out.write("=" * 72 + "\n")
        rows = result.rows()  # type: ignore[attr-defined]
        out.write(format_table(rows) + "\n")
        series = getattr(result, "series", None)
        if isinstance(series, dict) and series and isinstance(next(iter(series.values())), list):
            out.write("\nCDF positions:\n")
            out.write(format_cdf_series(series) + "\n")
    out.write(f"\ntotal: {time.perf_counter() - total_start:.1f}s\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=4_000, help="requests per generated trace (default 4000)"
    )
    parser.add_argument("--fast", action="store_true", help="quarter-size quick pass")
    parser.add_argument("--out", type=str, default=None, help="write the report to a file")
    parser.add_argument(
        "--only", type=str, default=None,
        help="comma-separated experiment ids (e.g. fig12,table1)",
    )
    args = parser.parse_args(argv)
    n = max(500, args.requests // 4) if args.fast else args.requests
    only = set(args.only.split(",")) if args.only else None
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            run_all(n_requests=n, out=handle, only=only)
        print(f"report written to {args.out}")
    else:
        run_all(n_requests=n, only=only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
