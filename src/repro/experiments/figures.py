"""One experiment function per table and figure of the paper.

Each function regenerates the data behind one evaluation artefact and
returns structured results (dataclasses with printable rows).  The
benchmark harness (``benchmarks/``) times and prints them; the examples
call a few of them directly.

Scale note: request counts default to a laptop-friendly size.  Shapes
(who wins, by what factor, where crossovers fall) are stable from a few
thousand requests; the paper's absolute numbers came from multi-GB
traces on physical hardware and are *not* expected to match.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.distribution import EmpiricalCDF, cdf_shape_class
from ..analysis.interpolation import argmax_derivative, interpolate_cdf
from ..campaign.engine import run_campaign
from ..campaign.spec import CampaignSpec, DeviceSpec
from ..core.baselines import (
    Acceleration,
    Dynamic,
    FixedThreshold,
    ReconstructionMethod,
    Revision,
    TraceTrackerMethod,
)
from ..core.pipeline import TraceTracker
from ..inference.idle import extract_idle
from ..inference.movd import calibrate_tmovd, tcdel_profile
from ..metrics.breakdown import IdleBreakdown
from ..metrics.comparison import InttBreakdown, intt_breakdown, intt_gap_stats
from ..metrics.verification import VerificationScore, score_inference
from ..trace.stats import WorkloadRow, workload_table
from ..trace.trace import BlockTrace
from ..workloads.catalog import (
    ALL_WORKLOADS,
    FIU_WORKLOADS,
    TABLE1_N_TRACES,
    get_spec,
    spec_variants,
)
from ..workloads.idle_injection import inject_idles
from ..workloads.materialize import collect_trace_cached
from .nodes import calibration_disk, new_node, old_node
from .pairs import build_pair_for
from .reporting import cdf_series

__all__ = [
    "fig13_campaign_spec",
    "fig14_campaign_spec",
    "fig16_campaign_spec",
    "fig17_campaign_spec",
    "fig1_intt_cdf",
    "fig3_breakdown",
    "fig5_cdf_types",
    "fig7_tmovd_tcdel",
    "fig9_interpolation",
    "fig10_len_tp",
    "fig11_len_fp",
    "fig12_method_cdfs",
    "fig13_intt_gap",
    "fig14_target_diff",
    "fig15_distribution",
    "fig16_avg_idle",
    "fig17_idle_breakdown",
    "table1_characteristics",
]

#: Default per-trace request count for experiment runs.
DEFAULT_N = 6_000

#: Idle shorter than this is treated as CPU-burst residue, not user
#: idleness, in the Figure 16/17 analyses.
USER_IDLE_THRESHOLD_US = 100.0


def _methods() -> list[ReconstructionMethod]:
    """The paper's five methods with published parameters."""
    return [
        Acceleration(100.0),
        Revision(),
        FixedThreshold(10_000.0),
        Dynamic(),
        TraceTrackerMethod(),
    ]


# ----------------------------------------------------------------------
# Figure 1 — motivation: CDF of T_intt under OLD/NEW/methods
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig1Result:
    """CDF series per curve plus the summary the intro quotes."""

    series: dict[str, list[tuple[float, float]]]
    median_us: dict[str, float]
    idle_loss_vs_new: dict[str, float]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "curve": label,
                "median_intt_us": self.median_us[label],
                "idle_loss_vs_new": round(self.idle_loss_vs_new.get(label, 0.0), 3),
            }
            for label in self.series
        ]


def fig1_intt_cdf(n_requests: int = DEFAULT_N) -> Fig1Result:
    """Figure 1: inter-arrival CDFs of OLD, NEW, Revision, Acceleration.

    MSNFS-pattern workload with ~20% injected user idles, issued to both
    nodes; Acceleration and Revision reconstruct the OLD trace.
    """
    pair = build_pair_for("MSNFS", n_requests=n_requests)
    target = new_node()
    curves: dict[str, BlockTrace] = {
        "OLD": pair.old,
        "NEW": pair.new,
        "Revision": Revision().reconstruct(pair.old, target),
        "Acceleration": Acceleration(100.0).reconstruct(pair.old, new_node()),
    }
    series = {k: cdf_series(v.inter_arrival_times()) for k, v in curves.items()}
    medians = {
        k: float(np.median(v.inter_arrival_times())) for k, v in curves.items()
    }
    # Idle time captured by each curve relative to NEW's total idle.
    def total_idle(trace: BlockTrace) -> float:
        ex = extract_idle(trace, prefer_measured=trace.has_device_times)
        return ex.total_idle_us()

    new_idle = max(total_idle(pair.new), 1.0)
    losses = {
        k: max(0.0, 1.0 - total_idle(v) / new_idle) for k, v in curves.items() if k != "NEW"
    }
    return Fig1Result(series=series, median_us=medians, idle_loss_vs_new=losses)


# ----------------------------------------------------------------------
# Figure 3 — longer/equal/shorter breakdown per workload
# ----------------------------------------------------------------------

FIG3_WORKLOADS: tuple[str, ...] = ("MSNFS", "webusers", "Exchange", "homes", "wdev")


@dataclass(frozen=True, slots=True)
class Fig3Result:
    """Per-workload breakdowns for both reconstruction families."""

    acceleration: dict[str, InttBreakdown]
    revision: dict[str, InttBreakdown]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        out = []
        for name in self.acceleration:
            a = self.acceleration[name].as_percentages()
            r = self.revision[name].as_percentages()
            out.append(
                {
                    "workload": name,
                    "accel_shorter%": a["shorter"],
                    "accel_longer%": a["longer"],
                    "rev_shorter%": r["shorter"],
                    "rev_equal%": r["equal"],
                    "rev_longer%": r["longer"],
                }
            )
        return out


def fig3_breakdown(
    workloads: tuple[str, ...] = FIG3_WORKLOADS, n_requests: int = 4_000
) -> Fig3Result:
    """Figure 3: reconstructed vs real T_intt, longer/equal/shorter split."""
    acceleration: dict[str, InttBreakdown] = {}
    revision: dict[str, InttBreakdown] = {}
    for name in workloads:
        pair = build_pair_for(name, n_requests=n_requests)
        acc = Acceleration(100.0).reconstruct(pair.old, new_node())
        rev = Revision().reconstruct(pair.old, new_node())
        acceleration[name] = intt_breakdown(acc, pair.new)
        revision[name] = intt_breakdown(rev, pair.new)
    return Fig3Result(acceleration=acceleration, revision=revision)


# ----------------------------------------------------------------------
# Figure 5 — CDF shape classes
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig5Result:
    """Shape class per synthetic distribution and per real workload."""

    synthetic: dict[str, str]
    workloads: dict[str, str]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {"distribution": k, "shape_class": v}
            for k, v in {**self.synthetic, **self.workloads}.items()
        ]


def fig5_cdf_types(n_requests: int = 4_000) -> Fig5Result:
    """Figure 5: global-maxima / chunky-middle / multi-maxima CDF shapes.

    Three constructed gap distributions demonstrate the taxonomy; a few
    catalog workloads show which class real traces fall into.
    """
    rng = np.random.default_rng(5)
    synthetic = {
        "unimodal": rng.lognormal(np.log(300.0), 0.12, 5000),
        "diffuse": np.exp(rng.uniform(np.log(10.0), np.log(1e6), 5000)),
        "bimodal": np.concatenate(
            [
                rng.lognormal(np.log(120.0), 0.15, 2500),
                rng.lognormal(np.log(80_000.0), 0.15, 2500),
            ]
        ),
    }
    synthetic_classes = {
        name: cdf_shape_class(EmpiricalCDF(samples)) for name, samples in synthetic.items()
    }
    workload_classes = {}
    for name in ("MSNFS", "ikki", "proj"):
        old = collect_trace_cached(get_spec(name).scaled(n_requests), old_node())
        workload_classes[name] = cdf_shape_class(EmpiricalCDF(old.inter_arrival_times()))
    return Fig5Result(synthetic=synthetic_classes, workloads=workload_classes)


# ----------------------------------------------------------------------
# Figure 7 — T_movd calibration and T_cdel profile (FIU on a disk)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig7Result:
    """Per-workload moving-delay representatives and channel profiles."""

    tmovd_rep_us: dict[str, float]
    tmovd_overall_us: float
    tmovd_spread: float
    tcdel: dict[str, dict[str, float]]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        out = []
        for name, rep in self.tmovd_rep_us.items():
            row: dict[str, object] = {"workload": name, "tmovd_rep_us": round(rep, 1)}
            row.update({k: round(v, 2) for k, v in self.tcdel.get(name, {}).items()})
            out.append(row)
        return out


def fig7_tmovd_tcdel(
    workloads: tuple[str, ...] = FIU_WORKLOADS, n_requests: int = 2_500
) -> Fig7Result:
    """Figure 7: T_movd CDFs (7a) and average T_cdel per class (7b)."""
    disk = calibration_disk()
    traces = []
    tcdel: dict[str, dict[str, float]] = {}
    for name in workloads:
        trace = collect_trace_cached(get_spec(name).scaled(n_requests), disk)
        traces.append(trace)
        tcdel[name] = tcdel_profile(trace, disk)
    calibration = calibrate_tmovd(traces)
    return Fig7Result(
        tmovd_rep_us=calibration.per_workload_rep_us,
        tmovd_overall_us=calibration.representative_us,
        tmovd_spread=calibration.spread(),
        tcdel=tcdel,
    )


# ----------------------------------------------------------------------
# Figure 9 — pchip vs spline interpolation behaviour
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig9Result:
    """Interpolation quality metrics for both methods."""

    overshoot: dict[str, float]
    undershoot: dict[str, float]
    argmax_location_us: dict[str, float]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "method": m,
                "overshoot": round(self.overshoot[m], 5),
                "undershoot": round(self.undershoot[m], 5),
                "argmax_us": round(self.argmax_location_us[m], 2),
            }
            for m in self.overshoot
        ]


def fig9_interpolation(n_samples: int = 3_000) -> Fig9Result:
    """Figure 9: spline oscillates/overshoots on steep CDFs, pchip does not."""
    rng = np.random.default_rng(9)
    # A steppy latency distribution: one sharp mode plus a sparse tail.
    samples = np.concatenate(
        [
            rng.normal(200.0, 2.0, int(n_samples * 0.8)),
            np.exp(rng.uniform(np.log(1e3), np.log(1e6), int(n_samples * 0.2))),
        ]
    )
    xs, ys = EmpiricalCDF(samples).knots()
    idx = np.unique(np.linspace(0, len(xs) - 1, 200).astype(int))
    xs, ys = xs[idx], ys[idx]
    grid = np.linspace(xs[0], xs[-1], 20_000)
    overshoot, undershoot, location = {}, {}, {}
    for method in ("pchip", "spline"):
        interp = interpolate_cdf(xs, ys, method=method)
        values = np.asarray(interp(grid))
        overshoot[method] = float(max(0.0, values.max() - 1.0))
        undershoot[method] = float(max(0.0, ys.min() - values.min()))
        location[method], __ = argmax_derivative(interp)
    return Fig9Result(
        overshoot=overshoot, undershoot=undershoot, argmax_location_us=location
    )


# ----------------------------------------------------------------------
# Figures 10 & 11 — verification: Len(TP), Detection, Len(FP)
# ----------------------------------------------------------------------

#: The injected idle periods the paper sweeps.
INJECTION_PERIODS_US: tuple[float, ...] = (100.0, 1_000.0, 10_000.0, 100_000.0)


@dataclass(frozen=True, slots=True)
class VerificationSweep:
    """Scores per injected period for one trace group."""

    group: str
    scores: dict[float, VerificationScore]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "group": self.group,
                "injected": f"{period / 1000:g} ms" if period >= 1000 else f"{period:g} us",
                "len_tp%": round(score.len_tp * 100, 1),
                "detection_tp%": round(score.detection_tp * 100, 1),
                "detection_fp%": round(score.detection_fp * 100, 1),
                "len_fp": round(score.len_fp_us, 1),
            }
            for period, score in self.scores.items()
        ]


@dataclass(frozen=True, slots=True)
class Fig10Result:
    """Verification sweeps for T_sdev-known and unknown trace groups."""

    known: VerificationSweep
    unknown: VerificationSweep

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return self.known.rows() + self.unknown.rows()


#: Idle estimates at or below this are "no idle predicted" when scoring.
VERIFICATION_MIN_IDLE_US = 10.0


def _verification_spec(name: str, n_requests: int):
    """Verification variant of a catalog workload: no *natural* user idles.

    The paper injects known idles into traces whose own idleness it
    cannot know.  Our synthetic traces' natural idles *are* known, but
    counting them as false positives would be wrong and counting them
    as truths would change the metric — so verification traces carry
    only CPU bursts (system delays), making the injected idles the sole
    idle ground truth.  Documented in DESIGN.md/EXPERIMENTS.md.
    """
    from dataclasses import replace

    from ..workloads.generator import IdleProcess

    spec = get_spec(name).scaled(n_requests)
    quiet = IdleProcess(
        idle_fraction=0.0,
        idle_median_us=spec.idle.idle_median_us,
        idle_sigma=spec.idle.idle_sigma,
        cpu_burst_mean_us=3.0,
        cpu_burst_sigma=0.4,
    )
    return replace(spec, idle=quiet)


def _verification_sweep(
    group: str,
    workload_names_: tuple[str, ...],
    known_tsdev: bool,
    periods: tuple[float, ...],
    n_requests: int,
) -> VerificationSweep:
    """The paper's full verification loop for one trace group.

    For each period: inject idles into the OLD trace, reconstruct with
    TraceTracker on the flash node, then recover idle estimates *from
    the reconstructed trace* (new gap minus new measured device time)
    and score them against the injection record.

    The OLD traces are deterministic in (workload, seed) and shared by
    every injection period, so they are collected once up front rather
    than once per period.
    """
    tracker = TraceTracker()
    old_traces = [
        collect_trace_cached(
            _verification_spec(name, n_requests),
            old_node(seed=100 + i),
            record_device_times=known_tsdev,
        )
        for i, name in enumerate(workload_names_)
    ]
    scores: dict[float, VerificationScore] = {}
    for period in periods:
        tp = fp = fn = tn = 0
        len_tp_parts: list[float] = []
        fp_samples: list[np.ndarray] = []
        injected_count = 0
        for i, old in enumerate(old_traces):
            injected, record = inject_idles(old, period_us=period, fraction=0.1, seed=17 + i)
            new = tracker.reconstruct(injected, new_node()).trace
            est_idle = np.clip(
                new.inter_arrival_times() - new.device_times()[:-1], 0.0, None
            )
            score = score_inference(record, est_idle, min_idle_us=VERIFICATION_MIN_IDLE_US)
            tp += score.tp
            fp += score.fp
            fn += score.fn
            tn += score.tn
            injected_count += len(record)
            if score.tp:
                len_tp_parts.append(score.len_tp * score.tp)
            fp_samples.append(score.len_fp_samples)
        all_fp = np.concatenate(fp_samples) if fp_samples else np.empty(0)
        scores[period] = VerificationScore(
            tp=tp,
            fp=fp,
            fn=fn,
            tn=tn,
            detection_tp=tp / injected_count if injected_count else 0.0,
            detection_fp=fp / (tp + fp + fn + tn) if (tp + fp + fn + tn) else 0.0,
            len_tp=sum(len_tp_parts) / tp if tp else 0.0,
            len_fp_us=float(all_fp.mean()) if all_fp.size else 0.0,
            len_fp_samples=all_fp,
        )
    return VerificationSweep(group=group, scores=scores)


def fig10_len_tp(
    periods: tuple[float, ...] = INJECTION_PERIODS_US,
    n_requests: int = 4_000,
    known_workloads: tuple[str, ...] = ("CFS", "MSNFS", "24HR"),
    unknown_workloads: tuple[str, ...] = ("ikki", "casa", "webusers"),
) -> Fig10Result:
    """Figures 10a/10b: Len(TP) vs injected idle period.

    ``known`` group: MSPS-style traces with device stamps (inference
    skipped); ``unknown``: FIU-style traces requiring full inference.
    """
    return Fig10Result(
        known=_verification_sweep("tsdev-known", known_workloads, True, periods, n_requests),
        unknown=_verification_sweep(
            "tsdev-unknown", unknown_workloads, False, periods, n_requests
        ),
    )


@dataclass(frozen=True, slots=True)
class Fig11Result:
    """Len(FP) distributions for both groups."""

    known_fp_us: np.ndarray
    unknown_fp_us: np.ndarray

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        out = []
        for label, samples in (
            ("tsdev-known", self.known_fp_us),
            ("tsdev-unknown", self.unknown_fp_us),
        ):
            if samples.size:
                out.append(
                    {
                        "group": label,
                        "n_fp": int(samples.size),
                        "mean_us": round(float(samples.mean()), 1),
                        "p50_us": round(float(np.median(samples)), 1),
                        "p98_us": round(float(np.percentile(samples, 98)), 1),
                    }
                )
            else:
                out.append({"group": label, "n_fp": 0})
        return out


def fig11_len_fp(n_requests: int = 4_000) -> Fig11Result:
    """Figure 11: the length of falsely-predicted idle periods.

    Uses the 1 ms injection point (the paper's CDFs aggregate the same
    sweep); what matters is the *scale* of FP damage per group.
    """
    result = fig10_len_tp(periods=(1_000.0,), n_requests=n_requests)
    return Fig11Result(
        known_fp_us=result.known.scores[1_000.0].len_fp_samples,
        unknown_fp_us=result.unknown.scores[1_000.0].len_fp_samples,
    )


# ----------------------------------------------------------------------
# Figure 12 — CDFs of T_intt per method (MSNFS)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig12Result:
    """CDF series, KS distances, and per-gap errors vs the target."""

    series: dict[str, list[tuple[float, float]]]
    ks_to_target: dict[str, float]
    mean_gap_error_us: dict[str, float]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "curve": k,
                "ks_to_target": round(v, 4),
                "mean_gap_error_us": round(self.mean_gap_error_us[k], 1),
            }
            for k, v in self.ks_to_target.items()
        ]


def fig12_method_cdfs(workload: str = "MSNFS", n_requests: int = DEFAULT_N) -> Fig12Result:
    """Figures 12a/12b: T_intt CDFs of all five methods vs the target."""
    from ..metrics.comparison import ks_distance

    pair = build_pair_for(workload, n_requests=n_requests)
    curves: dict[str, BlockTrace] = {"Target": pair.new}
    for method in _methods():
        curves[method.name] = method.reconstruct(pair.old, new_node())
    series = {k: cdf_series(v.inter_arrival_times()) for k, v in curves.items()}
    ks = {k: ks_distance(v, pair.new) for k, v in curves.items() if k != "Target"}
    errors = {
        k: intt_gap_stats(v, pair.new)["mean_us"]
        for k, v in curves.items()
        if k != "Target"
    }
    return Fig12Result(series=series, ks_to_target=ks, mean_gap_error_us=errors)


# ----------------------------------------------------------------------
# Figures 13/14 — per-workload T_intt gaps across the catalog
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig13Result:
    """Mean |T_intt gap| between TraceTracker and each other method."""

    gaps_us: dict[str, dict[str, float]]  # workload -> method -> gap

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {"workload": w, **{m: round(g, 1) for m, g in per.items()}}
            for w, per in self.gaps_us.items()
        ]

    def method_means(self) -> dict[str, float]:
        """Catalog-wide mean gap per method (the figure's ranking)."""
        methods = next(iter(self.gaps_us.values())).keys()
        return {
            m: float(np.mean([per[m] for per in self.gaps_us.values()])) for m in methods
        }


def fig13_campaign_spec(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> CampaignSpec:
    """Figure 13 as a campaign: catalog x baseline-method grid,
    ``method_gap`` action against the TraceTracker reference."""
    return CampaignSpec(
        name="fig13-intt-gap",
        description="Figure 13: T_intt difference of each method from TraceTracker.",
        action="method_gap",
        workloads=tuple(workloads),
        devices=(DeviceSpec(name="new-node", kind="new-node"),),
        methods=("acceleration:100", "revision", "fixed-th:10000", "dynamic"),
        n_requests=(n_requests,),
        options={"reference": "tracetracker"},
    )


def fig13_intt_gap(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> Fig13Result:
    """Figure 13: T_intt difference of each method from TraceTracker.

    One instance of the campaign engine (see :func:`fig13_campaign_spec`);
    the grid rows fold back into the per-workload method dictionaries.
    """
    table = run_campaign(fig13_campaign_spec(workloads, n_requests))
    gaps: dict[str, dict[str, float]] = {}
    for row in table.rows():
        gaps.setdefault(row["workload"], {})[row["method_name"]] = row["gap_mean_us"]
    return Fig13Result(gaps_us=gaps)


@dataclass(frozen=True, slots=True)
class Fig14Result:
    """Average / max T_intt difference, target (OLD) vs TraceTracker."""

    avg_us: dict[str, float]
    max_us: dict[str, float]
    signed_avg_us: dict[str, float]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "workload": w,
                "avg_diff_us": round(self.avg_us[w], 1),
                "max_diff_us": round(self.max_us[w], 1),
                "signed_avg_us": round(self.signed_avg_us[w], 1),
            }
            for w in self.avg_us
        ]

    def overall_mean_shortening_us(self) -> float:
        """How much shorter TraceTracker gaps are on average (paper: 0.677 ms)."""
        return float(np.mean(list(self.signed_avg_us.values())))


def fig14_campaign_spec(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> CampaignSpec:
    """Figure 14 as a campaign: full catalog, ``target_diff`` action."""
    return CampaignSpec(
        name="fig14-target-diff",
        description="Figure 14: per-workload gap between old traces and reconstructions.",
        action="target_diff",
        workloads=tuple(workloads),
        devices=(DeviceSpec(name="new-node", kind="new-node"),),
        methods=("tracetracker",),
        n_requests=(n_requests,),
    )


def fig14_target_diff(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> Fig14Result:
    """Figure 14: per-workload gap between old traces and reconstructions.

    One instance of the campaign engine (see :func:`fig14_campaign_spec`).
    """
    table = run_campaign(fig14_campaign_spec(workloads, n_requests))
    avg: dict[str, float] = {}
    mx: dict[str, float] = {}
    signed: dict[str, float] = {}
    for row in table.rows():
        avg[row["workload"]] = row["avg_diff_us"]
        mx[row["workload"]] = row["max_diff_us"]
        signed[row["workload"]] = row["signed_avg_us"]
    return Fig14Result(avg_us=avg, max_us=mx, signed_avg_us=signed)


# ----------------------------------------------------------------------
# Figure 15 — distribution detail for CFS and ikki
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig15Result:
    """Old-vs-reconstructed CDF summaries for the two detail workloads."""

    series: dict[str, dict[str, list[tuple[float, float]]]]
    median_us: dict[str, dict[str, float]]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "workload": w,
                "target_median_us": round(m["Target"], 1),
                "tracetracker_median_us": round(m["TraceTracker"], 1),
            }
            for w, m in self.median_us.items()
        ]


def fig15_distribution(
    workloads: tuple[str, ...] = ("CFS", "ikki"), n_requests: int = DEFAULT_N
) -> Fig15Result:
    """Figure 15: T_intt CDFs, target block trace vs TraceTracker trace."""
    series: dict[str, dict[str, list[tuple[float, float]]]] = {}
    medians: dict[str, dict[str, float]] = {}
    for name in workloads:
        pair = build_pair_for(name, n_requests=n_requests)
        tt = TraceTrackerMethod().reconstruct(pair.old, new_node())
        series[name] = {
            "Target": cdf_series(pair.old.inter_arrival_times()),
            "TraceTracker": cdf_series(tt.inter_arrival_times()),
        }
        medians[name] = {
            "Target": float(np.median(pair.old.inter_arrival_times())),
            "TraceTracker": float(np.median(tt.inter_arrival_times())),
        }
    return Fig15Result(series=series, median_us=medians)


# ----------------------------------------------------------------------
# Figures 16/17 — idle periods across the catalog
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Fig16Result:
    """Average idle period per workload plus per-category means."""

    avg_idle_us: dict[str, float]
    category_of: dict[str, str]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        return [
            {
                "workload": w,
                "category": self.category_of[w],
                "avg_idle_ms": round(v / 1000.0, 2),
            }
            for w, v in self.avg_idle_us.items()
        ]

    def category_means_us(self) -> dict[str, float]:
        """Mean average-idle per trace family (the figure's grouping)."""
        cats: dict[str, list[float]] = {}
        for w, v in self.avg_idle_us.items():
            cats.setdefault(self.category_of[w], []).append(v)
        return {c: float(np.mean(vs)) for c, vs in cats.items()}


def fig16_campaign_spec(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> CampaignSpec:
    """Figures 16/17 as a campaign: the ``idle`` action across the
    catalog, collected on the OLD node, with the user-idle threshold."""
    return CampaignSpec(
        name="fig16-avg-idle",
        description="Figure 16: average T_idle estimated by TraceTracker per workload.",
        action="idle",
        workloads=tuple(workloads),
        devices=(DeviceSpec(name="old-node", kind="old-node"),),
        methods=("tracetracker",),
        n_requests=(n_requests,),
        options={"min_idle_us": USER_IDLE_THRESHOLD_US},
    )


def fig16_avg_idle(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> Fig16Result:
    """Figure 16: average T_idle estimated by TraceTracker per workload.

    One instance of the campaign engine (see :func:`fig16_campaign_spec`).
    """
    table = run_campaign(fig16_campaign_spec(workloads, n_requests))
    avg = {row["workload"]: row["avg_idle_us"] for row in table.rows()}
    cats = {row["workload"]: row["category"] for row in table.rows()}
    return Fig16Result(avg_idle_us=avg, category_of=cats)


@dataclass(frozen=True, slots=True)
class Fig17Result:
    """Frequency and period breakdowns per workload."""

    breakdowns: dict[str, IdleBreakdown]
    category_of: dict[str, str]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        out = []
        for w, b in self.breakdowns.items():
            out.append(
                {
                    "workload": w,
                    "category": self.category_of[w],
                    "freq_Tslat%": round(b.frequency["Tslat"] * 100, 1),
                    "freq_0-10ms%": round(b.frequency["0-10ms"] * 100, 1),
                    "freq_10-100ms%": round(b.frequency["10-100ms"] * 100, 1),
                    "freq_>100ms%": round(b.frequency[">100ms"] * 100, 1),
                    "period_idle%": round(b.idle_period() * 100, 1),
                }
            )
        return out

    def category_idle_frequency(self) -> dict[str, float]:
        """Mean idle-gap frequency per trace family."""
        cats: dict[str, list[float]] = {}
        for w, b in self.breakdowns.items():
            cats.setdefault(self.category_of[w], []).append(b.idle_frequency())
        return {c: float(np.mean(vs)) for c, vs in cats.items()}

    def category_idle_period(self) -> dict[str, float]:
        """Mean idle-time share per trace family."""
        cats: dict[str, list[float]] = {}
        for w, b in self.breakdowns.items():
            cats.setdefault(self.category_of[w], []).append(b.idle_period())
        return {c: float(np.mean(vs)) for c, vs in cats.items()}


def fig17_campaign_spec(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> CampaignSpec:
    """Figure 17 shares Figure 16's campaign (same ``idle`` rows)."""
    from dataclasses import replace

    return replace(
        fig16_campaign_spec(workloads, n_requests),
        name="fig17-idle-breakdown",
        description="Figure 17: T_idle breakdown by bucket, frequency and period.",
    )


def fig17_idle_breakdown(
    workloads: tuple[str, ...] = ALL_WORKLOADS, n_requests: int = 3_000
) -> Fig17Result:
    """Figure 17: T_idle breakdown by bucket, frequency and period.

    One instance of the campaign engine — the same ``idle`` grid as
    Figure 16, read back as per-bucket breakdowns.
    """
    from ..metrics.breakdown import IDLE_BUCKETS

    buckets = ["Tslat"] + [label for label, *_ in IDLE_BUCKETS]
    table = run_campaign(fig17_campaign_spec(workloads, n_requests))
    breakdowns: dict[str, IdleBreakdown] = {}
    cats: dict[str, str] = {}
    for row in table.rows():
        breakdowns[row["workload"]] = IdleBreakdown(
            frequency={b: row[f"freq_{b}"] for b in buckets},
            period={b: row[f"period_{b}"] for b in buckets},
        )
        cats[row["workload"]] = row["category"]
    return Fig17Result(breakdowns=breakdowns, category_of=cats)


# ----------------------------------------------------------------------
# Table I — workload characteristics
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table1Result:
    """Regenerated Table I rows (scaled trace counts)."""

    rows_by_workload: dict[str, WorkloadRow]
    paper_n_traces: dict[str, int]

    def rows(self) -> list[dict[str, object]]:
        """Printable dict-rows for the report tables."""
        out = []
        for name, row in self.rows_by_workload.items():
            d = row.as_dict()
            d["paper_n_traces"] = self.paper_n_traces.get(name, 0)
            out.append(d)
        return out

    def total_traces(self) -> int:
        """Table I's block-trace inventory total (577 in the paper)."""
        return sum(self.paper_n_traces.values())


def table1_characteristics(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    traces_per_workload: int = 2,
    n_requests: int = 2_000,
) -> Table1Result:
    """Table I: per-workload trace counts, average sizes, totals.

    Generates ``traces_per_workload`` trace variants per workload (the
    full 577 is a scale knob, not a different code path) and aggregates
    them; the paper's per-workload trace counts are carried alongside.
    """
    rows: dict[str, WorkloadRow] = {}
    for name in workloads:
        spec = get_spec(name)
        variants = spec_variants(name, count=traces_per_workload)
        traces = [
            collect_trace_cached(v.scaled(n_requests), old_node(seed=1000 + k))
            for k, v in enumerate(variants)
        ]
        rows[name] = workload_table(traces, workload=name, category=spec.category)
    return Table1Result(rows_by_workload=rows, paper_n_traces=dict(TABLE1_N_TRACES))
