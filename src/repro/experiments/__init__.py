"""Experiment harness: evaluation nodes, OLD/NEW pairs, per-figure runs."""

from .figures import (
    fig1_intt_cdf,
    fig3_breakdown,
    fig5_cdf_types,
    fig7_tmovd_tcdel,
    fig9_interpolation,
    fig10_len_tp,
    fig11_len_fp,
    fig12_method_cdfs,
    fig13_intt_gap,
    fig14_target_diff,
    fig15_distribution,
    fig16_avg_idle,
    fig17_idle_breakdown,
    table1_characteristics,
)
from .nodes import calibration_disk, new_node, old_node
from .pairs import TracePair, build_pair, build_pair_for
from .reporting import cdf_series, format_cdf_series, format_table, format_us

__all__ = [
    "fig1_intt_cdf",
    "fig3_breakdown",
    "fig5_cdf_types",
    "fig7_tmovd_tcdel",
    "fig9_interpolation",
    "fig10_len_tp",
    "fig11_len_fp",
    "fig12_method_cdfs",
    "fig13_intt_gap",
    "fig14_target_diff",
    "fig15_distribution",
    "fig16_avg_idle",
    "fig17_idle_breakdown",
    "table1_characteristics",
    "calibration_disk",
    "new_node",
    "old_node",
    "TracePair",
    "build_pair",
    "build_pair_for",
    "cdf_series",
    "format_cdf_series",
    "format_table",
    "format_us",
]
