"""Plain-text reporting helpers shared by benches and examples.

Every experiment returns structured rows; these helpers render them as
aligned text tables (the closest a terminal gets to the paper's plots)
and as CDF series sampled on log grids.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..analysis.distribution import EmpiricalCDF, log_spaced_grid
from ..campaign.results import ResultsTable

__all__ = [
    "format_table",
    "format_cdf_series",
    "cdf_series",
    "format_us",
    "campaign_report",
]


def format_us(value_us: float) -> str:
    """Human-readable rendering of a microsecond quantity."""
    if value_us != value_us:  # NaN
        return "n/a"
    if abs(value_us) >= 1e6:
        return f"{value_us / 1e6:.3g} s"
    if abs(value_us) >= 1e3:
        return f"{value_us / 1e3:.3g} ms"
    return f"{value_us:.3g} us"


def format_table(rows: Iterable[Mapping[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned text table.

    Column order follows the first row's key order; missing cells
    render empty.  Numbers are shown with sensible precision.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in table)) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def cdf_series(
    samples: np.ndarray, points_per_decade: int = 8
) -> list[tuple[float, float]]:
    """Sample an empirical CDF on a log grid → ``[(x_us, p), ...]``.

    The compact series is what benches print so the paper's log-axis
    CDF figures can be eyeballed (and regression-tested) as text.
    """
    positive = np.asarray(samples, dtype=np.float64)
    positive = positive[positive > 0]
    if positive.size == 0:
        return []
    cdf = EmpiricalCDF(positive)
    grid = log_spaced_grid(cdf.min, cdf.max, points_per_decade)
    # np.logspace rounds the endpoint down by an ulp or two; pin it so
    # the series always closes at probability 1.
    grid[-1] = cdf.max
    return [(float(x), float(cdf(x))) for x in grid]


def format_cdf_series(
    series_by_label: Mapping[str, list[tuple[float, float]]],
    quantiles: tuple[float, ...] = (0.1, 0.5, 0.9),
) -> str:
    """Summarise several CDF series as a quantile table.

    Full series are unwieldy in text; the decile summary captures the
    curve positions the paper's figures compare visually.
    """
    rows = []
    for label, series in series_by_label.items():
        if not series:
            rows.append({"curve": label})
            continue
        xs = np.array([x for x, _ in series])
        ps = np.array([p for _, p in series])
        row: dict[str, object] = {"curve": label}
        for q in quantiles:
            idx = int(np.searchsorted(ps, q))
            idx = min(idx, len(xs) - 1)
            row[f"p{int(q * 100)}"] = format_us(float(xs[idx]))
        rows.append(row)
    return format_table(rows)


def campaign_report(
    spec,
    table: ResultsTable,
    n_resumed: int = 0,
    n_computed: int | None = None,
) -> str:
    """Consolidated markdown report for one campaign run.

    Header (what ran, how much was resumed), the full results table,
    and — when the grid spans several devices or methods — compact
    per-axis mean summaries of the numeric columns, which is usually
    the comparison a sweep was run to make.
    """
    lines = [f"# Campaign report: {spec.name}", ""]
    if spec.description:
        lines += [spec.description.strip(), ""]
    total = len(table)
    computed = n_computed if n_computed is not None else total - n_resumed
    lines += [
        f"- action: `{spec.action}`",
        f"- grid points: {total} ({n_resumed} resumed from checkpoint, {computed} computed)",
        f"- axes: {len(spec.workloads)} workload selector(s) x {len(spec.devices)} device(s)"
        f" x {len(spec.methods)} method(s) x {len(spec.n_requests)} size(s)",
        "",
        "## Results",
        "",
        table.to_markdown(),
        "",
    ]
    numeric = [
        name
        for name, values in table.columns.items()
        if values and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values)
        and name != "n_requests"
    ]
    for axis in ("device", "method"):
        if axis not in table.columns or not numeric:
            continue
        levels = list(dict.fromkeys(table.column(axis)))
        if len(levels) < 2:
            continue
        rows = []
        for level in levels:
            subset = table.select(**{axis: level})
            rows.append(
                {
                    axis: level,
                    **{
                        name: float(np.mean(subset.column(name)))
                        for name in numeric
                    },
                }
            )
        lines += [f"## Mean by {axis}", "", ResultsTable.from_rows(rows).to_markdown(), ""]
    return "\n".join(lines)
