"""Plain-text reporting helpers shared by benches and examples.

Every experiment returns structured rows; these helpers render them as
aligned text tables (the closest a terminal gets to the paper's plots)
and as CDF series sampled on log grids.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..analysis.distribution import EmpiricalCDF, log_spaced_grid
from ..campaign.results import ResultsTable

__all__ = [
    "format_table",
    "format_cdf_series",
    "cdf_series",
    "format_us",
    "campaign_report",
    "t_critical_95",
    "seed_summary",
    "ab_verdict",
    "ab_campaign_report",
]


def format_us(value_us: float) -> str:
    """Human-readable rendering of a microsecond quantity."""
    if value_us != value_us:  # NaN
        return "n/a"
    if abs(value_us) >= 1e6:
        return f"{value_us / 1e6:.3g} s"
    if abs(value_us) >= 1e3:
        return f"{value_us / 1e3:.3g} ms"
    return f"{value_us:.3g} us"


def format_table(rows: Iterable[Mapping[str, object]], title: str = "") -> str:
    """Render dict-rows as an aligned text table.

    Column order follows the first row's key order; missing cells
    render empty.  Numbers are shown with sensible precision.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in table)) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def cdf_series(
    samples: np.ndarray, points_per_decade: int = 8
) -> list[tuple[float, float]]:
    """Sample an empirical CDF on a log grid → ``[(x_us, p), ...]``.

    The compact series is what benches print so the paper's log-axis
    CDF figures can be eyeballed (and regression-tested) as text.
    """
    positive = np.asarray(samples, dtype=np.float64)
    positive = positive[positive > 0]
    if positive.size == 0:
        return []
    cdf = EmpiricalCDF(positive)
    grid = log_spaced_grid(cdf.min, cdf.max, points_per_decade)
    # np.logspace rounds the endpoint down by an ulp or two; pin it so
    # the series always closes at probability 1.
    grid[-1] = cdf.max
    return [(float(x), float(cdf(x))) for x in grid]


def format_cdf_series(
    series_by_label: Mapping[str, list[tuple[float, float]]],
    quantiles: tuple[float, ...] = (0.1, 0.5, 0.9),
) -> str:
    """Summarise several CDF series as a quantile table.

    Full series are unwieldy in text; the decile summary captures the
    curve positions the paper's figures compare visually.
    """
    rows = []
    for label, series in series_by_label.items():
        if not series:
            rows.append({"curve": label})
            continue
        xs = np.array([x for x, _ in series])
        ps = np.array([p for _, p in series])
        row: dict[str, object] = {"curve": label}
        for q in quantiles:
            idx = int(np.searchsorted(ps, q))
            idx = min(idx, len(xs) - 1)
            row[f"p{int(q * 100)}"] = format_us(float(xs[idx]))
        rows.append(row)
    return format_table(rows)


def campaign_report(
    spec,
    table: ResultsTable,
    n_resumed: int = 0,
    n_computed: int | None = None,
) -> str:
    """Consolidated markdown report for one campaign run.

    Header (what ran, how much was resumed), the full results table,
    and — when the grid spans several devices or methods — compact
    per-axis mean summaries of the numeric columns, which is usually
    the comparison a sweep was run to make.
    """
    lines = [f"# Campaign report: {spec.name}", ""]
    if spec.description:
        lines += [spec.description.strip(), ""]
    total = len(table)
    computed = n_computed if n_computed is not None else total - n_resumed
    lines += [
        f"- action: `{spec.action}`",
        f"- grid points: {total} ({n_resumed} resumed from checkpoint, {computed} computed)",
        f"- axes: {len(spec.workloads)} workload selector(s) x {len(spec.devices)} device(s)"
        f" x {len(spec.methods)} method(s) x {len(spec.n_requests)} size(s)",
        "",
        "## Results",
        "",
        table.to_markdown(),
        "",
    ]
    numeric = [
        name
        for name, values in table.columns.items()
        if values and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values)
        and name != "n_requests"
    ]
    for axis in ("device", "method"):
        if axis not in table.columns or not numeric:
            continue
        levels = list(dict.fromkeys(table.column(axis)))
        if len(levels) < 2:
            continue
        rows = []
        for level in levels:
            subset = table.select(**{axis: level})
            rows.append(
                {
                    axis: level,
                    **{
                        name: float(np.mean(subset.column(name)))
                        for name in numeric
                    },
                }
            )
        lines += [f"## Mean by {axis}", "", ResultsTable.from_rows(rows).to_markdown(), ""]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# multi-seed A/B statistics (degraded-vs-healthy campaign verdicts)
# ----------------------------------------------------------------------

#: Two-sided 95% critical values of Student's t (df 1..30; the normal
#: 1.96 beyond).  Hardcoded so the significance verdicts need no scipy.
_T_CRIT_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: float) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom.

    Fractional ``df`` (Welch–Satterthwaite) is floored, which rounds
    the critical value *up* — the conservative direction for a
    significance call.
    """
    if df < 1.0:
        return float("inf")
    index = int(df)  # floor for positive df
    if index > len(_T_CRIT_95):
        return 1.960
    return _T_CRIT_95[index - 1]


def seed_summary(values: Iterable[float]) -> dict[str, float]:
    """Replicate summary: ``n``, ``mean``, sample ``std``, 95% CI half-width.

    With fewer than two replicates the spread is undefined; ``std`` and
    ``ci95`` come back NaN so callers can render "n/a" rather than a
    fake zero-width interval.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    n = int(arr.size)
    mean = float(arr.mean()) if n else float("nan")
    if n < 2:
        return {"n": n, "mean": mean, "std": float("nan"), "ci95": float("nan")}
    std = float(arr.std(ddof=1))
    return {"n": n, "mean": mean, "std": std, "ci95": t_critical_95(n - 1) * std / np.sqrt(n)}


def ab_verdict(baseline: Iterable[float], treatment: Iterable[float]) -> dict[str, object]:
    """Welch's t-test of ``treatment - baseline`` at 95% confidence.

    Returns the delta, its confidence interval half-width, the t
    statistic with Welch–Satterthwaite degrees of freedom, and a
    human-readable ``verdict``: ``"significant"`` / ``"not
    significant"``, or ``"insufficient replicates (need >= 2 per
    arm)"`` when either arm has fewer than two values.
    """
    a = np.asarray(list(baseline), dtype=np.float64)
    b = np.asarray(list(treatment), dtype=np.float64)
    delta = float(b.mean() - a.mean()) if a.size and b.size else float("nan")
    out: dict[str, object] = {
        "delta": delta,
        "delta_ci95": float("nan"),
        "t": float("nan"),
        "df": float("nan"),
        "significant": False,
    }
    if a.size < 2 or b.size < 2:
        out["verdict"] = "insufficient replicates (need >= 2 per arm)"
        return out
    var_a = float(a.var(ddof=1))
    var_b = float(b.var(ddof=1))
    se_sq = var_a / a.size + var_b / b.size
    if se_sq == 0.0:
        # Zero spread in both arms: any nonzero delta is exact.
        out["t"] = float("inf") if delta else 0.0
        out["df"] = float(a.size + b.size - 2)
        out["delta_ci95"] = 0.0
        out["significant"] = delta != 0.0
        out["verdict"] = "significant" if delta else "not significant"
        return out
    t_stat = delta / float(np.sqrt(se_sq))
    df = se_sq**2 / (
        (var_a / a.size) ** 2 / (a.size - 1) + (var_b / b.size) ** 2 / (b.size - 1)
    )
    critical = t_critical_95(df)
    out["t"] = float(t_stat)
    out["df"] = float(df)
    out["delta_ci95"] = critical * float(np.sqrt(se_sq))
    out["significant"] = abs(t_stat) > critical
    out["verdict"] = "significant" if out["significant"] else "not significant"
    return out


def _numeric_columns(table: ResultsTable) -> list[str]:
    return [
        name
        for name, values in table.columns.items()
        if values
        and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values)
        and name != "n_requests"
    ]


def ab_campaign_report(spec, table: ResultsTable) -> str:
    """Multi-seed A/B section: degraded-vs-healthy deltas with verdicts.

    Driven by ``spec.options["ab"]``: ``baseline`` / ``treatment`` are
    device-*name* prefixes that split the grid into two arms (each
    matching device — typically one per seed — contributes one
    replicate per grid cell), and ``metrics`` optionally restricts the
    compared columns.  Cells (workload x method x n_requests) are
    compared independently; each gets per-arm means with 95% confidence
    intervals and a Welch's-t significance verdict on the delta.
    """
    ab = dict(spec.options.get("ab") or {})
    baseline_prefix = str(ab.get("baseline", "healthy"))
    treatment_prefix = str(ab.get("treatment", "degraded"))
    metrics = ab.get("metrics") or _numeric_columns(table)
    rows = table.rows()
    lines = [
        f"## A/B: {treatment_prefix}* vs {baseline_prefix}* (95% confidence)",
        "",
        f"- baseline arm: devices named `{baseline_prefix}*`",
        f"- treatment arm: devices named `{treatment_prefix}*`",
        "",
    ]
    cell_axes = ("workload", "method", "n_requests")
    cells = list(dict.fromkeys(tuple(r.get(a) for a in cell_axes) for r in rows))
    compared = 0
    for cell in cells:
        cell_rows = [r for r in rows if tuple(r.get(a) for a in cell_axes) == cell]
        arm_a = [r for r in cell_rows if str(r.get("device", "")).startswith(baseline_prefix)]
        arm_b = [r for r in cell_rows if str(r.get("device", "")).startswith(treatment_prefix)]
        if not arm_a or not arm_b:
            continue
        compared += 1
        label = ", ".join(f"{a}={v}" for a, v in zip(cell_axes, cell))
        out_rows = []
        for metric in metrics:
            if metric not in table.columns:
                continue
            a_values = [float(r[metric]) for r in arm_a]
            b_values = [float(r[metric]) for r in arm_b]
            summary_a = seed_summary(a_values)
            summary_b = seed_summary(b_values)
            verdict = ab_verdict(a_values, b_values)
            out_rows.append(
                {
                    "metric": metric,
                    f"{baseline_prefix} mean": summary_a["mean"],
                    f"{baseline_prefix} ci95": summary_a["ci95"],
                    f"{treatment_prefix} mean": summary_b["mean"],
                    f"{treatment_prefix} ci95": summary_b["ci95"],
                    "delta": verdict["delta"],
                    "delta ci95": verdict["delta_ci95"],
                    "t": verdict["t"],
                    "df": verdict["df"],
                    "verdict": verdict["verdict"],
                }
            )
        lines += [f"### {label}", "", ResultsTable.from_rows(out_rows).to_markdown(), ""]
    if not compared:
        lines += [
            f"(no grid cell contains both `{baseline_prefix}*` and "
            f"`{treatment_prefix}*` devices — nothing to compare)",
            "",
        ]
    return "\n".join(lines)
