"""Shared resilience substrate: error taxonomy, retries, timeouts, heartbeats.

Born in :mod:`repro.campaign.supervise` (PR 9) for fault-tolerant
campaign execution, hoisted here because the streaming reconstruction
service (:mod:`repro.service`) needs exactly the same mechanisms: a
long-running process must decide which failures are worth retrying,
sleep a bounded, *deterministic* backoff between attempts, bound the
wall-clock of any single unit of work, and prove its liveness cheaply.

- :func:`classify_error` — the transient-vs-permanent taxonomy.
  *Transient* failures (I/O hiccups, timeouts, locked databases,
  vanished files) are environmental and worth retrying; *permanent*
  ones (type/value/assertion errors) are properties of the computation
  and every retry would fail identically.
- :class:`RetryPolicy` — capped exponential backoff whose jitter is
  hashed from the work key and attempt number, so different work items
  desynchronise while any one item's schedule is reproducible across
  reruns and test assertions.
- :func:`retry_call` — the generic retry loop over the two: run a
  callable, retry transients through the policy, re-raise permanents
  (and transients that exhaust the budget) to the caller's quarantine
  path.
- :class:`time_limit` — a real-interval ``SIGALRM`` guard so work stuck
  in a pure-Python loop *or* a blocking syscall is interrupted.
- :func:`write_heartbeat` / :func:`heartbeat_age_s` — liveness as a
  file mtime: one ``utime`` per beat, readable by any supervisor.

:mod:`repro.campaign.supervise` re-exports everything here, so the
historical ``from repro.campaign.supervise import RetryPolicy`` import
paths keep working.
"""

from __future__ import annotations

import hashlib
import os
import signal
import sqlite3
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any, TypeVar

__all__ = [
    "PermanentPointError",
    "PointTimeout",
    "RetryPolicy",
    "TransientPointError",
    "classify_error",
    "heartbeat_age_s",
    "retry_call",
    "time_limit",
    "write_heartbeat",
]

_T = TypeVar("_T")


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------


class TransientPointError(RuntimeError):
    """A failure worth retrying (environment, not computation)."""


class PermanentPointError(RuntimeError):
    """A failure retrying cannot fix (the computation is wrong)."""


class PointTimeout(TransientPointError):
    """Work exceeded its wall-clock budget (hang or pathological cost)."""


#: Exception types retried without further inspection.  ``TimeoutError``
#: and friends are ``OSError`` subclasses, listed for documentation.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TransientPointError,
    TimeoutError,
    ConnectionError,
    InterruptedError,
    BlockingIOError,
    OSError,
    sqlite3.OperationalError,
)

#: Exception types quarantined immediately: they are properties of the
#: work item's computation, so every retry would fail identically.
_PERMANENT_TYPES: tuple[type[BaseException], ...] = (
    PermanentPointError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    AssertionError,
    ZeroDivisionError,
    NotImplementedError,
    MemoryError,
)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"permanent"`` for one failure.

    The explicit marker classes win, then the permanent types (bugs in
    or triggered by the computation), then the transient types
    (environmental).  Unknown exception types default to *transient*:
    the retry budget bounds the cost of optimism, while misclassifying
    a recoverable hiccup as permanent would quarantine good work.
    """
    if isinstance(exc, PermanentPointError):
        return "permanent"
    if isinstance(exc, TransientPointError):
        return "transient"
    if isinstance(exc, _PERMANENT_TYPES):
        return "permanent"
    if isinstance(exc, _TRANSIENT_TYPES):
        return "transient"
    return "transient"


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` is the *total* number of tries a work item gets
    (so 1 means no retries).  The delay before retry ``k`` (0-based)
    is::

        min(base_delay_s * multiplier**k, max_delay_s) * (1 + jitter * u)

    where ``u ∈ [0, 1)`` is hashed from the work key and attempt number
    — different items desynchronise (no thundering herd on a shared
    resource) while the same item's schedule is reproducible across
    reruns and test assertions.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, key: str, attempt: int) -> float:
        """The backoff before retry ``attempt`` (0-based) of ``key``."""
        raw = min(self.base_delay_s * self.multiplier**attempt, self.max_delay_s)
        digest = hashlib.sha1(f"{key}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        return raw * (1.0 + self.jitter * fraction)

    def delays(self, key: str) -> list[float]:
        """Every backoff the policy would sleep for ``key``, in order."""
        return [self.delay_s(key, k) for k in range(self.max_attempts - 1)]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (ships to worker processes in the context)."""
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "multiplier": self.multiplier,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return cls(**data)


def retry_call(
    fn: Callable[[], _T],
    key: str,
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run ``fn`` under ``policy``: retry transients, re-raise the rest.

    Permanent failures re-raise immediately; transient ones sleep the
    policy's deterministic backoff (keyed by ``key`` and the attempt
    number) and retry until ``max_attempts`` is spent, then the final
    exception propagates.  ``KeyboardInterrupt``/``SystemExit`` always
    propagate — the operator outranks the policy.  ``sleep`` is
    injectable for deterministic tests.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn()
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - the taxonomy decides
            if classify_error(exc) == "permanent" or attempts >= policy.max_attempts:
                raise
            sleep(policy.delay_s(key, attempts - 1))


# ----------------------------------------------------------------------
# Wall-clock timeouts
# ----------------------------------------------------------------------


class time_limit:
    """Context manager: raise :class:`PointTimeout` after ``seconds``.

    Armed with ``signal.setitimer`` (real time), so work stuck in a
    pure-Python loop *or* a blocking syscall is interrupted.  A ``None``
    or non-positive budget, a non-main thread, or a platform without
    ``SIGALRM`` all degrade to a no-op — an external heartbeat deadline
    is the backstop there.
    """

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self._armed = False
        self._previous: Any = None

    def _usable(self) -> bool:
        return (
            self.seconds is not None
            and self.seconds > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )

    def __enter__(self) -> "time_limit":
        if self._usable():
            def _on_alarm(signum: int, frame: Any) -> None:
                raise PointTimeout(f"point exceeded {self.seconds}s wall-clock budget")

            self._previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, float(self.seconds))
            self._armed = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
            self._armed = False


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------


def write_heartbeat(path: Path) -> None:
    """Record liveness: create the file once, then bump its mtime.

    The beat is the mtime, not the contents, so a beat after creation
    is one ``utime`` syscall — cheap enough to fire at every work-item
    boundary.
    """
    try:
        os.utime(path)
    except FileNotFoundError:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(str(os.getpid()), encoding="utf-8")
    except OSError:
        pass


def heartbeat_age_s(path: Path, now: float | None = None) -> float:
    """Seconds since the last beat (infinite when the file is missing)."""
    try:
        mtime = path.stat().st_mtime
    except OSError:
        return float("inf")
    return max(0.0, (now if now is not None else time.time()) - mtime)
