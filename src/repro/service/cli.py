"""``repro-serve``: run and inspect the streaming reconstruction daemon.

Two subcommands:

``repro-serve run``
    Start a daemon: tail a file, watch a segment directory, or listen
    on a socket, reconstructing for a target device as records arrive.
    Blocks until end-of-stream (``--until-idle``), SIGTERM drain, or
    permanent failure; exit code 0 for ``finished``/``stopped``, 1 for
    ``failed``.

``repro-serve status``
    Print the daemon's last published ``status.json`` with the
    heartbeat age — runnable from anywhere the work directory is
    visible, whether or not the daemon is alive.

Examples::

    repro-serve run --source file:old.csv --workdir /var/run/stream \\
        --device new-node --until-idle 1.0
    repro-serve run --source tcp:127.0.0.1:0 --workdir /var/run/stream \\
        --device hdd --policy shed --queue-high 16
    repro-serve status --workdir /var/run/stream
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from ..campaign.devices import build_device
from ..resilience import heartbeat_age_s
from .daemon import ServiceConfig, StreamingReconstructionService
from .sources import parse_source_spec

__all__ = ["main"]


def _parse_device_params(pairs: list[str]) -> dict[str, Any]:
    params: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"bad --device-param {pair!r}: expected key=value")
        try:
            params[key] = json.loads(value)
        except ValueError:
            params[key] = value
    return params


def _cmd_run(args: argparse.Namespace) -> int:
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    source = parse_source_spec(args.source, workdir)
    device = build_device(args.device, _parse_device_params(args.device_param))
    config = ServiceConfig(
        fmt=args.fmt,
        chunk_requests=args.chunk_requests,
        queue_high=args.queue_high,
        queue_low=args.queue_low,
        queue_policy=args.policy,
        until_idle_s=args.until_idle,
        status_interval_s=args.status_interval,
        name=args.name,
    )
    service = StreamingReconstructionService(source, device, workdir, config)
    metrics = service.run()
    outcome = service.outcome
    if outcome == "failed":
        print(f"repro-serve: failed: see {service.status_path}", file=sys.stderr)
        return 1
    summary = {"outcome": outcome, "workdir": str(workdir)}
    if metrics is not None:
        summary["n_requests"] = metrics.n_requests
        summary["new_duration_us"] = metrics.new_duration_us
    print(json.dumps(summary, sort_keys=True))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    workdir = Path(args.workdir)
    status_path = workdir / "status.json"
    try:
        status = json.loads(status_path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"repro-serve: no status at {status_path}", file=sys.stderr)
        return 1
    age = heartbeat_age_s(workdir / "heartbeat")
    status["heartbeat_age_s"] = None if age == float("inf") else age
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-serve`` argument parser (run / status)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Always-on streaming trace reconstruction service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start a streaming reconstruction daemon")
    run.add_argument(
        "--source",
        required=True,
        help="file:PATH | dir:PATH[:GLOB] | tcp:HOST:PORT (or a bare file path)",
    )
    run.add_argument("--workdir", required=True, help="state directory (sink, checkpoint, status)")
    run.add_argument("--fmt", default="internal", help="trace dialect (default: internal)")
    run.add_argument("--device", default="new-node", help="target device kind or preset")
    run.add_argument(
        "--device-param",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="device constructor parameter (repeatable)",
    )
    run.add_argument("--name", default="stream", help="workload name for the trace")
    run.add_argument("--chunk-requests", type=int, default=256, help="rows per chunk")
    run.add_argument("--queue-high", type=int, default=8, help="queue high watermark (chunks)")
    run.add_argument("--queue-low", type=int, default=None, help="queue low watermark (chunks)")
    run.add_argument(
        "--policy", choices=("block", "shed"), default="block", help="backpressure policy"
    )
    run.add_argument(
        "--until-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help="declare end-of-stream after this much source idleness "
        "(default: follow forever, drain on SIGTERM)",
    )
    run.add_argument(
        "--status-interval", type=float, default=1.0, help="status/heartbeat period (s)"
    )
    run.set_defaults(func=_cmd_run)

    status = sub.add_parser("status", help="print a daemon's status page")
    status.add_argument("--workdir", required=True, help="the daemon's state directory")
    status.set_defaults(func=_cmd_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        # stdout reader went away (``repro-serve status | head``) —
        # not an error; suppress the interpreter's close-time complaint.
        sys.stderr.close()
        return 0
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
