"""Always-on streaming reconstruction service (``repro-serve``).

The batch pipeline answers "remaster this trace file"; this package
answers "remaster this trace *as it happens*" — an always-on daemon
that tails a growing file, watches a segment directory, or listens on
a socket, and keeps the reconstructed trace, its metrics, and a
crash-consistent checkpoint continuously up to date on disk.

Pieces:

- :mod:`~repro.service.sources` — pluggable line sources with byte
  cursors and torn-line hold-back;
- :mod:`~repro.service.backpressure` — the bounded chunk queue with
  high/low watermark hysteresis and block/shed policies;
- :mod:`~repro.service.checkpoint` — atomic resume points (source
  cursor + session state + sink length);
- :mod:`~repro.service.daemon` — the service itself: ingest, pipeline,
  quarantine, watchdog, drain;
- :mod:`~repro.service.cli` — the ``repro-serve`` entry point.

The batch pipeline remains the correctness oracle: for the same
content, ``out.csv`` and the final metrics are byte- and bit-identical
to ``pipeline.run_stream(TraceReader(path, chunk_requests=N))`` — even
across SIGKILL and restart.
"""

from .backpressure import BoundedChunkQueue
from .checkpoint import StreamCheckpoint, load_checkpoint, save_checkpoint
from .daemon import ServiceConfig, StreamingReconstructionService
from .sources import (
    DirectoryWatchSource,
    FileTailSource,
    SocketLineSource,
    StreamSource,
    parse_source_spec,
)

__all__ = [
    "BoundedChunkQueue",
    "DirectoryWatchSource",
    "FileTailSource",
    "ServiceConfig",
    "SocketLineSource",
    "StreamCheckpoint",
    "StreamSource",
    "StreamingReconstructionService",
    "load_checkpoint",
    "parse_source_spec",
    "save_checkpoint",
]
