"""Bounded chunk queue with watermark hysteresis: explicit backpressure.

The daemon's ingest thread and pipeline thread meet at this queue.  It
is deliberately *not* ``queue.Queue``: backpressure here is a visible,
configurable policy rather than an implicit block, and the gate uses
**hysteresis** — it closes when depth reaches ``high_watermark`` and
reopens only once the consumer has drained it to ``low_watermark`` —
so a producer racing a slow consumer settles into calm batches instead
of thrashing one-in-one-out at the brim.

Two policies when the gate is closed:

- ``"block"`` — the producer waits (lossless; upstream slows down;
  for the socket source the pause propagates into the kernel receive
  window and blocks the remote sender).
- ``"shed"`` — the put is refused and counted; the caller drops the
  chunk (lossy by contract: freshness over completeness).

Terminal markers (end-of-stream, stop) bypass the gate via
``force=True`` — control flow must never be backpressured behind data.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

__all__ = ["BoundedChunkQueue", "QUEUE_POLICIES"]

#: Valid backpressure policies.
QUEUE_POLICIES = ("block", "shed")


class BoundedChunkQueue:
    """Thread-safe bounded queue with high/low watermark gating."""

    def __init__(
        self,
        high_watermark: int = 8,
        low_watermark: int | None = None,
        policy: str = "block",
    ) -> None:
        if policy not in QUEUE_POLICIES:
            raise ValueError(f"unknown queue policy {policy!r}; choose from {QUEUE_POLICIES}")
        if high_watermark < 1:
            raise ValueError("high_watermark must be at least 1")
        low = max(1, high_watermark // 2) if low_watermark is None else low_watermark
        if not 1 <= low <= high_watermark:
            raise ValueError("low_watermark must be in [1, high_watermark]")
        self.high_watermark = high_watermark
        self.low_watermark = low
        self.policy = policy
        self._items: deque[Any] = deque()
        self._cond = threading.Condition()
        self._gated = False
        self.n_put = 0
        self.n_shed = 0
        self.max_depth = 0

    def _update_gate_locked(self) -> None:
        if len(self._items) >= self.high_watermark:
            self._gated = True
        elif len(self._items) <= self.low_watermark:
            self._gated = False

    def put(
        self,
        item: Any,
        force: bool = False,
        should_abort: Callable[[], bool] | None = None,
        poll_s: float = 0.05,
    ) -> bool:
        """Enqueue ``item``; ``False`` means it was shed or aborted.

        Under ``"block"`` the call waits while the gate is closed,
        checking ``should_abort`` between waits so a drain request can
        pull the producer out mid-block.  Under ``"shed"`` a closed
        gate refuses immediately.  ``force`` ignores the gate entirely
        (terminal markers only).
        """
        with self._cond:
            while True:
                self._update_gate_locked()
                if force or not self._gated:
                    self._items.append(item)
                    self.n_put += 1
                    self.max_depth = max(self.max_depth, len(self._items))
                    self._cond.notify_all()
                    return True
                if self.policy == "shed":
                    self.n_shed += 1
                    return False
                self._cond.wait(poll_s)
                if should_abort is not None and should_abort():
                    return False

    def get(self, timeout: float | None = None) -> Any:
        """Dequeue the oldest item, or ``None`` on timeout."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                return None
            item = self._items.popleft()
            self._update_gate_locked()
            self._cond.notify_all()
            return item

    def depth(self) -> int:
        """Number of items currently queued."""
        with self._cond:
            return len(self._items)

    @property
    def gated(self) -> bool:
        """Whether the gate is currently closed (producer throttled)."""
        with self._cond:
            self._update_gate_locked()
            return self._gated

    def stats(self) -> dict[str, Any]:
        """Counters for the status page."""
        with self._cond:
            return {
                "depth": len(self._items),
                "high_watermark": self.high_watermark,
                "low_watermark": self.low_watermark,
                "policy": self.policy,
                "gated": self._gated,
                "n_put": self.n_put,
                "n_shed": self.n_shed,
                "max_depth": self.max_depth,
            }
