"""Stream sources: where the always-on reconstruction daemon reads from.

A source turns some growing external thing — a file being appended, a
directory filling with segment files, a TCP socket — into a uniform
pull interface the daemon's ingest loop drives:

- :meth:`StreamSource.poll` returns the *complete* lines that arrived
  since the last poll, each paired with a JSON-able **cursor**: the
  source position *after* that line.  Checkpointing the cursor of the
  last line of a processed chunk is all crash recovery needs — a
  restarted daemon re-opens the source at that cursor and re-reads
  exactly the lines that were never committed.
- Torn trailing fragments are never emitted (the tail discipline of
  :func:`repro.trace.io.reader.iter_complete_lines`): a writer caught
  mid-``write`` would otherwise inject a prefix that parses into a
  wrong row.  The fragment is held and re-polled until its newline
  lands.  :meth:`StreamSource.eof_flush` releases a held fragment as a
  final complete line when the daemon declares end-of-stream — at that
  point no writer is coming back to finish it.
- :meth:`StreamSource.idle` says "nothing more right now", which the
  daemon's ``--until-idle`` grace period turns into end-of-stream.

Failure taxonomy follows :mod:`repro.resilience`: a source that is
*momentarily* unreadable (file not created yet, directory vanished
mid-scan) raises :class:`~repro.resilience.TransientPointError` and the
daemon retries with capped backoff; a source that is *irrecoverably*
wrong for streaming (the file shrank — rotation or truncation under a
live cursor) raises :class:`~repro.resilience.PermanentPointError` and
the daemon fails loudly rather than guess at resynchronisation.

The socket source journals every received byte to an append-only
**spool file** and tails the spool, so socket ingest gets file-grade
crash recovery for free: the spool is the durable record, the byte
cursor indexes into it, and a SIGKILLed daemon replays from the spool
without asking clients to resend.
"""

from __future__ import annotations

import fnmatch
import socket
import threading
import time
from pathlib import Path
from typing import Any, Callable

from ..resilience import PermanentPointError, TransientPointError

__all__ = [
    "DirectoryWatchSource",
    "FileTailSource",
    "SocketLineSource",
    "StreamSource",
    "parse_source_spec",
]

#: Bytes per read/recv syscall.
_IO_BLOCK = 1 << 16

#: Cap on bytes consumed per poll, so one poll cannot starve the
#: ingest loop's responsiveness to stop/drain requests.
_POLL_BYTE_BUDGET = 1 << 22


class _TailFile:
    """Byte-cursor tail reader over one file; never emits torn lines.

    Tracks two positions: ``_read_pos`` (next byte to read from disk)
    and ``offset`` (bytes *consumed into complete lines*).  The gap
    between them is the held torn fragment, which stays in ``_buf``
    until its newline arrives.
    """

    def __init__(self, path: Path, offset: int = 0) -> None:
        self.path = Path(path)
        self.offset = int(offset)
        self._read_pos = int(offset)
        self._buf = b""
        self._handle: Any = None

    def size(self) -> int | None:
        """Current file size, or ``None`` when the file is missing."""
        try:
            return self.path.stat().st_size
        except OSError:
            return None

    def has_unread(self) -> bool:
        """Unconsumed bytes on disk (torn fragment bytes don't count)."""
        size = self.size()
        return size is not None and size > self._read_pos

    def poll(self) -> list[tuple[str, int]]:
        """Newly completed lines as ``(text, offset_after_line)``.

        Raises :class:`TransientPointError` when the file is missing
        (it may simply not have been created yet) and
        :class:`PermanentPointError` when it shrank below the cursor —
        the stream identity is gone and resuming would splice garbage.
        """
        size = self.size()
        if size is None:
            self._drop_handle()
            raise TransientPointError(f"{self.path}: source file missing")
        if size < self._read_pos:
            raise PermanentPointError(
                f"{self.path}: file shrank to {size} bytes below the read "
                f"cursor {self._read_pos} (rotated or truncated); the stream "
                "cannot be resumed — restart with a fresh work directory"
            )
        out: list[tuple[str, int]] = []
        if size == self._read_pos:
            return out
        if self._handle is None:
            self._handle = self.path.open("rb")
        self._handle.seek(self._read_pos)
        budget = _POLL_BYTE_BUDGET
        while budget > 0:
            data = self._handle.read(min(_IO_BLOCK, budget))
            if not data:
                break
            budget -= len(data)
            self._read_pos += len(data)
            self._buf += data
            cut = self._buf.rfind(b"\n")
            if cut < 0:
                continue
            complete, self._buf = self._buf[:cut], self._buf[cut + 1 :]
            for raw in complete.split(b"\n"):
                self.offset += len(raw) + 1
                out.append((raw.decode("utf-8", errors="replace"), self.offset))
        return out

    def flush_tail(self) -> tuple[str, int] | None:
        """Release a held torn fragment as a final complete line."""
        if not self._buf:
            return None
        raw, self._buf = self._buf, b""
        self.offset += len(raw)
        return (raw.decode("utf-8", errors="replace"), self.offset)

    def _drop_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def close(self) -> None:
        self._drop_handle()


class StreamSource:
    """Interface every daemon source implements (see module docstring)."""

    kind = "abstract"

    def open(self, cursor: Any = None) -> None:
        """Position the source; ``cursor`` comes from a checkpoint."""
        raise NotImplementedError

    def poll(self) -> list[tuple[str, Any]]:
        """Complete lines since the last poll, as ``(text, cursor)``."""
        raise NotImplementedError

    def idle(self) -> bool:
        """No more data available right now."""
        raise NotImplementedError

    def eof_flush(self) -> list[tuple[str, Any]]:
        """Release held torn fragments at declared end-of-stream."""
        raise NotImplementedError

    def close(self) -> None:
        """Release handles/threads; safe to call more than once."""

    def describe(self) -> str:
        """Human-readable identity for the status page."""
        raise NotImplementedError


class FileTailSource(StreamSource):
    """Tail one growing trace file.  Cursor: consumed byte offset."""

    kind = "file"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._tail: _TailFile | None = None

    def open(self, cursor: Any = None) -> None:
        self._tail = _TailFile(self.path, int(cursor or 0))

    def poll(self) -> list[tuple[str, Any]]:
        assert self._tail is not None, "open() first"
        return self._tail.poll()

    def idle(self) -> bool:
        assert self._tail is not None, "open() first"
        return not self._tail.has_unread()

    def eof_flush(self) -> list[tuple[str, Any]]:
        assert self._tail is not None, "open() first"
        tail = self._tail.flush_tail()
        return [tail] if tail is not None else []

    def close(self) -> None:
        if self._tail is not None:
            self._tail.close()

    def describe(self) -> str:
        return f"file:{self.path}"


class DirectoryWatchSource(StreamSource):
    """Concatenate a directory of segment files, watched in sorted order.

    Files matching ``pattern`` (hidden files excluded) form one logical
    stream in lexicographic filename order — the order log-segment
    writers produce (``seg-000.csv``, ``seg-001.csv``, …).  The last
    file is tailed like :class:`FileTailSource`; a file is *finalised*
    the moment a lexicographically later file appears, at which point
    its held tail (a final line the writer never newline-terminated)
    is released and reading advances.  Cursor: ``[filename, offset]``.
    """

    kind = "dir"

    def __init__(self, directory: str | Path, pattern: str = "*") -> None:
        self.directory = Path(directory)
        self.pattern = pattern
        self._current: str | None = None
        self._tail: _TailFile | None = None

    def open(self, cursor: Any = None) -> None:
        if cursor is None:
            self._current = None
            self._tail = None
        else:
            name, offset = cursor
            self._current = str(name)
            self._tail = _TailFile(self.directory / self._current, int(offset))

    def _files(self) -> list[str]:
        try:
            entries = list(self.directory.iterdir())
        except OSError as exc:
            raise TransientPointError(f"{self.directory}: cannot scan: {exc}") from exc
        return sorted(
            p.name
            for p in entries
            if p.is_file()
            and not p.name.startswith(".")
            and fnmatch.fnmatch(p.name, self.pattern)
        )

    def _advance(self, files: list[str]) -> bool:
        """Move to the next segment file, if one exists."""
        later = [f for f in files if self._current is None or f > self._current]
        if not later:
            return False
        if self._tail is not None:
            self._tail.close()
        self._current = later[0]
        self._tail = _TailFile(self.directory / self._current, 0)
        return True

    def poll(self) -> list[tuple[str, Any]]:
        out: list[tuple[str, Any]] = []
        files = self._files()
        if self._current is None and not self._advance(files):
            return out
        assert self._tail is not None
        while True:
            for text, offset in self._tail.poll():
                out.append((text, [self._current, offset]))
            finalised = any(f > self._current for f in files if self._current)
            if not finalised or self._tail.has_unread():
                break
            # Current file is finalised and fully read: release its
            # held tail (the writer is done with it) and advance.
            tail = self._tail.flush_tail()
            if tail is not None:
                out.append((tail[0], [self._current, tail[1]]))
            if not self._advance(files):
                break
        return out

    def idle(self) -> bool:
        if self._tail is None:
            return not self._files()
        if self._tail.has_unread():
            return False
        return not any(f > self._current for f in self._files() if self._current)

    def eof_flush(self) -> list[tuple[str, Any]]:
        if self._tail is None:
            return []
        tail = self._tail.flush_tail()
        return [(tail[0], [self._current, tail[1]])] if tail is not None else []

    def close(self) -> None:
        if self._tail is not None:
            self._tail.close()

    def describe(self) -> str:
        return f"dir:{self.directory}:{self.pattern}"


class SocketLineSource(StreamSource):
    """Accept line-oriented trace records over TCP, spooled to disk.

    A listener thread appends every received byte verbatim to an
    append-only spool file; the source itself is a :class:`_TailFile`
    over that spool.  The spool *is* the durability story: socket data
    survives a SIGKILLed daemon because it was journaled before the
    pipeline ever saw it, and the checkpoint cursor is a plain byte
    offset into the spool.  Connections are served one at a time (trace
    shippers are sequential by nature); a client disconnect just ends
    that connection — the listener keeps accepting.

    ``paused`` is the backpressure hook: while it returns ``True`` the
    listener stops ``recv``-ing, the kernel receive window fills, and
    the sender blocks — backpressure propagated to the far end of the
    wire without any protocol.

    Cursor: consumed byte offset into the spool file.
    """

    kind = "tcp"

    def __init__(
        self,
        host: str,
        port: int,
        spool_path: str | Path,
        paused: Callable[[], bool] | None = None,
    ) -> None:
        self.host = host
        self.port = port  # rebound to the actual port after open()
        self.spool_path = Path(spool_path)
        self.paused = paused or (lambda: False)
        self._tail: _TailFile | None = None
        self._server: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._closed = threading.Event()
        self._active_connections = 0
        self._n_connections = 0

    def open(self, cursor: Any = None) -> None:
        self.spool_path.parent.mkdir(parents=True, exist_ok=True)
        self.spool_path.touch(exist_ok=True)
        self._tail = _TailFile(self.spool_path, int(cursor or 0))
        self._server = socket.create_server((self.host, self.port))
        self._server.settimeout(0.2)
        self.port = self._server.getsockname()[1]
        self._thread = threading.Thread(
            target=self._serve, name="repro-serve-listener", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        assert self._server is not None
        with self.spool_path.open("ab") as spool:
            while not self._closed.is_set():
                try:
                    conn, _addr = self._server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return  # listener closed under us
                self._active_connections += 1
                self._n_connections += 1
                try:
                    self._pump(conn, spool)
                finally:
                    self._active_connections -= 1
                    try:
                        conn.close()
                    except OSError:
                        pass

    def _pump(self, conn: socket.socket, spool: Any) -> None:
        conn.settimeout(0.2)
        while not self._closed.is_set():
            if self.paused():
                time.sleep(0.05)
                continue
            try:
                data = conn.recv(_IO_BLOCK)
            except socket.timeout:
                continue
            except OSError:
                return
            if not data:
                return  # client finished
            spool.write(data)
            spool.flush()

    def poll(self) -> list[tuple[str, Any]]:
        assert self._tail is not None, "open() first"
        return self._tail.poll()

    def idle(self) -> bool:
        assert self._tail is not None, "open() first"
        return self._active_connections == 0 and not self._tail.has_unread()

    def eof_flush(self) -> list[tuple[str, Any]]:
        assert self._tail is not None, "open() first"
        tail = self._tail.flush_tail()
        return [tail] if tail is not None else []

    def close(self) -> None:
        self._closed.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if self._tail is not None:
            self._tail.close()

    def describe(self) -> str:
        return f"tcp://{self.host}:{self.port} (spool {self.spool_path})"


def parse_source_spec(spec: str, workdir: str | Path) -> StreamSource:
    """Build a source from a CLI spec string.

    - ``file:PATH`` (or a bare path) — tail one file;
    - ``dir:PATH`` / ``dir:PATH:GLOB`` — watch a segment directory;
    - ``tcp:HOST:PORT`` / ``tcp:PORT`` — listen on a socket, spooling
      to ``<workdir>/spool.lines`` (port 0 binds an ephemeral port,
      published on the status page).
    """
    if spec.startswith("file:"):
        return FileTailSource(spec[len("file:") :])
    if spec.startswith("dir:"):
        rest = spec[len("dir:") :]
        path, _, pattern = rest.partition(":")
        return DirectoryWatchSource(path, pattern or "*")
    if spec.startswith("tcp:"):
        rest = spec[len("tcp:") :]
        host, _, port = rest.rpartition(":")
        try:
            port_no = int(port)
        except ValueError:
            raise ValueError(f"bad tcp source spec {spec!r}: port must be an integer")
        spool = Path(workdir) / "spool.lines"
        return SocketLineSource(host or "127.0.0.1", port_no, spool)
    return FileTailSource(spec)
