"""The always-on streaming reconstruction daemon (``repro-serve``).

Three threads around one bounded queue:

- the **ingest** thread polls the :mod:`~repro.service.sources` source,
  filters comment/blank lines (and the internal CSV header), assembles
  fixed-size chunks of ``chunk_requests`` content lines — exactly the
  boundaries :class:`~repro.trace.io.reader.TraceReader` would cut — and
  pushes them through the :class:`~repro.service.backpressure` gate;
- the **pipeline** thread (the caller of :meth:`run`) parses each
  chunk, quarantines poison records, feeds the parsed segment to a
  :class:`~repro.core.stages.StreamingReconstructionSession`, appends
  the emitted piece to the CSV sink, and commits a crash-consistent
  :mod:`~repro.service.checkpoint`;
- the **watchdog** thread publishes ``status.json`` (rolling
  throughput, queue depth, lag, quarantine counters) and beats the
  heartbeat file.

**Parity contract.**  For a well-formed stream the daemon's sink and
metrics are byte- and bit-identical to the batch oracle::

    pipeline.run_stream(TraceReader(path, chunk_requests=N), target)

over the same content — including across a SIGKILL and restart at any
point, because every committed chunk is checkpointed (source cursor +
session state + sink length) and every uncommitted chunk is replayed
from the source on restart.  The batch path stays the correctness
oracle; the daemon adds only robustness around it.

**Poison records** quarantine, they never kill the stream: a chunk
that fails bulk parse is re-parsed line by line and the offenders are
appended to ``quarantine.jsonl`` (dead-letter) with their parse error;
rows that travel backwards in time past an already-emitted boundary —
unsplicable by the carry invariant — are quarantined as ``order``
records.  Source hiccups retry forever with the capped deterministic
backoff of :class:`~repro.resilience.RetryPolicy`; only *permanent*
failures (the taxonomy of :func:`~repro.resilience.classify_error`)
take the daemon down, loudly, through the ``failed`` state.

**Drain semantics.**  SIGTERM/SIGINT stop ingest, let every chunk
already in the queue reconstruct and commit, and exit in ``stopped``
state — the partial tail chunk stays un-cut so a later run (or the
batch oracle) sees the same boundaries.  ``until_idle_s`` declares
end-of-stream after that much sustained source idleness: the daemon
then flushes the partial chunk and held torn fragments, finishes the
session, writes ``metrics.json``, and exits in ``finished`` state.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.pipeline import TraceTracker
from ..core.stages import ReconstructionMetrics, StreamingReconstructionSession
from ..resilience import RetryPolicy, classify_error, retry_call, write_heartbeat
from ..storage.device import StorageDevice
from ..trace.io.bulk import BULK_PARSERS
from ..trace.io.reader import _REBASED_FORMATS
from ..trace.parsers import TraceParseError
from ..trace.trace import BlockTrace
from ..trace.writers import iter_csv_rows
from .backpressure import QUEUE_POLICIES, BoundedChunkQueue
from .checkpoint import StreamCheckpoint, load_checkpoint, save_checkpoint
from .sources import SocketLineSource, StreamSource

__all__ = ["ServiceConfig", "StreamingReconstructionService"]

#: Terminal daemon states, as written to ``status.json``.
TERMINAL_STATES = ("finished", "stopped", "failed")


@dataclass
class ServiceConfig:
    """Knobs of one streaming reconstruction service."""

    fmt: str = "internal"
    chunk_requests: int = 256
    queue_high: int = 8
    queue_low: int | None = None
    queue_policy: str = "block"
    #: ``None`` follows forever (drain on SIGTERM); a number declares
    #: end-of-stream after that much sustained source idleness.
    until_idle_s: float | None = None
    poll_interval_s: float = 0.02
    status_interval_s: float = 1.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    name: str = "stream"

    def __post_init__(self) -> None:
        if self.fmt not in BULK_PARSERS:
            raise ValueError(
                f"unknown stream format {self.fmt!r}; choose from {sorted(BULK_PARSERS)}"
            )
        if self.chunk_requests <= 0:
            raise ValueError("chunk_requests must be positive")
        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(f"queue_policy must be one of {QUEUE_POLICIES}")
        if self.until_idle_s is not None and self.until_idle_s < 0:
            raise ValueError("until_idle_s must be non-negative")


class _Counters:
    """Thread-shared counters (ingest and pipeline write, watchdog reads)."""

    _FIELDS = (
        "rows_polled",       # raw lines seen by ingest this process
        "rows_consumed",     # content lines committed by the pipeline (checkpointed)
        "rows_out",          # reconstructed rows appended to the sink (checkpointed)
        "rows_queued",       # content lines currently resident in the queue
        "rows_buffered",     # content lines in the ingest assembler
        "rows_shed",         # content lines dropped by the shed policy
        "n_chunks_shed",
        "n_quarantined",     # poison records dead-lettered (checkpointed)
        "n_header_repeats",  # repeated internal headers dropped (segment files)
        "source_errors",     # transient source failures retried
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values = {name: 0 for name in self._FIELDS}

    def add(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                self._values[name] += delta

    def set(self, **values: int) -> None:
        with self._lock:
            self._values.update(values)

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._values[name]

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._values)


class _CsvSink:
    """Append-only internal-CSV output, byte-identical to ``write_csv``.

    Opens with a truncate-to-checkpoint so bytes from a chunk whose
    checkpoint never committed are removed before new appends; a failed
    append rolls the file back to its pre-append length so the
    pipeline's retry re-appends cleanly instead of duplicating rows.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle: Any = None
        self.nbytes = 0
        self._has_header = False

    def open(self, truncate_to: int) -> None:
        self.path.touch(exist_ok=True)
        self._handle = self.path.open("r+b")
        self._handle.truncate(truncate_to)
        self._handle.seek(truncate_to)
        self.nbytes = truncate_to
        self._has_header = truncate_to > 0

    def append(self, piece: BlockTrace) -> None:
        assert self._handle is not None, "open() first"
        start = self.nbytes
        try:
            rows = iter_csv_rows(piece)
            header = next(rows)
            if not self._has_header:
                self._write_line(header)
                self._has_header = True
            for row in rows:
                self._write_line(row)
        except Exception:
            self._handle.truncate(start)
            self._handle.seek(start)
            self.nbytes = start
            self._has_header = start > 0
            raise

    def _write_line(self, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        self._handle.write(data)
        self.nbytes += len(data)

    def sync(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _DeadLetterLog:
    """Append-only JSONL of quarantined records, truncate-on-restart."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle: Any = None
        self.nbytes = 0
        self.n_records = 0

    def open(self, truncate_to: int) -> None:
        self.path.touch(exist_ok=True)
        self._handle = self.path.open("r+b")
        self._handle.truncate(truncate_to)
        self._handle.seek(truncate_to)
        self.nbytes = truncate_to

    def record(self, kind: str, **payload: Any) -> None:
        assert self._handle is not None, "open() first"
        doc = {"kind": kind, **payload}
        data = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
        self._handle.write(data)
        self.nbytes += len(data)
        self.n_records += 1

    def sync(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class StreamingReconstructionService:
    """One always-on reconstruction stream (see module docstring).

    Files under ``workdir``:

    - ``out.csv`` — the reconstructed trace (internal CSV), grown
      piece by piece, byte-identical to the batch oracle's output;
    - ``checkpoint.json`` — the crash-consistent resume point;
    - ``quarantine.jsonl`` — dead-letter log of poison records;
    - ``status.json`` — the status endpoint, atomically replaced;
    - ``heartbeat`` — liveness mtime for external supervisors;
    - ``metrics.json`` — final metrics, written on ``finished``.
    """

    def __init__(
        self,
        source: StreamSource,
        target: StorageDevice,
        workdir: str | Path,
        config: ServiceConfig | None = None,
        tracker: TraceTracker | None = None,
    ) -> None:
        self.source = source
        self.target = target
        self.workdir = Path(workdir)
        self.config = config or ServiceConfig()
        self.tracker = tracker or TraceTracker()

        self.sink_path = self.workdir / "out.csv"
        self.checkpoint_path = self.workdir / "checkpoint.json"
        self.quarantine_path = self.workdir / "quarantine.jsonl"
        self.status_path = self.workdir / "status.json"
        self.heartbeat_path = self.workdir / "heartbeat"
        self.metrics_path = self.workdir / "metrics.json"

        self._queue = BoundedChunkQueue(
            self.config.queue_high, self.config.queue_low, self.config.queue_policy
        )
        self._counters = _Counters()
        self._sink = _CsvSink(self.sink_path)
        self._quarantine = _DeadLetterLog(self.quarantine_path)
        self._session: StreamingReconstructionSession | None = None

        self._stop = threading.Event()   # drain requested (signal or API)
        self._done = threading.Event()   # pipeline loop exited
        self._state_lock = threading.Lock()
        self._state = "starting"
        self._header: str | None = None
        self._rebase_offset: float | None = None
        self._last_old_ts: float | None = None
        self._last_cursor: Any = None
        self._last_source_error: str | None = None
        self._fatal: str | None = None
        self._started_at = time.time()
        self._parse = BULK_PARSERS[self.config.fmt]

        # Propagate queue pressure into the socket's receive window.
        if isinstance(self.source, SocketLineSource):
            self.source.paused = lambda: self._queue.gated

    # -- public control ------------------------------------------------

    @property
    def outcome(self) -> str:
        """Terminal state after :meth:`run` ('finished'/'stopped'/'failed')."""
        with self._state_lock:
            return self._state

    def request_stop(self) -> None:
        """Ask the daemon to drain in-flight chunks and exit."""
        with self._state_lock:
            if self._state not in TERMINAL_STATES:
                self._state = "draining"
        self._stop.set()

    # -- lifecycle -------------------------------------------------------

    def run(self, install_signal_handlers: bool = True) -> ReconstructionMetrics | None:
        """Run until end-of-stream, drain, or permanent failure.

        Returns the final :class:`ReconstructionMetrics` when the
        stream ``finished``; ``None`` for ``stopped`` (resumable) and
        ``failed`` (see ``status.json``).  Check :attr:`outcome`.
        """
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._write_status()
        session = self.tracker.stream_session(self.target)
        self._session = session

        cp = load_checkpoint(self.checkpoint_path)
        if cp is not None:
            session.load_state(cp.session_state)
            self._header = cp.header
            self._rebase_offset = cp.rebase_offset
            self._last_old_ts = cp.last_old_ts
            self._last_cursor = cp.source_cursor
            self._counters.set(
                rows_consumed=cp.rows_consumed,
                rows_out=cp.rows_out,
                n_quarantined=cp.n_quarantined,
            )
            self._sink.open(cp.sink_bytes)
            self._quarantine.open(cp.quarantine_bytes)
        else:
            self._sink.open(0)
            self._quarantine.open(0)
        self.source.open(cp.source_cursor if cp is not None else None)

        previous_handlers: dict[int, Any] = {}
        if install_signal_handlers and threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous_handlers[signum] = signal.signal(
                    signum, lambda *_: self.request_stop()
                )

        with self._state_lock:
            if self._state == "starting":
                self._state = "running"
        ingest = threading.Thread(target=self._ingest, name="repro-serve-ingest", daemon=True)
        watchdog = threading.Thread(
            target=self._watchdog, name="repro-serve-watchdog", daemon=True
        )
        ingest.start()
        watchdog.start()
        self._write_status()  # publish the endpoint/port before first tick

        try:
            outcome = self._pipeline_loop(session)
        finally:
            self._stop.set()
            self._done.set()
            ingest.join(timeout=5.0)
            watchdog.join(timeout=5.0)
            self.source.close()
            self._sink.close()
            self._quarantine.close()
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)

        metrics: ReconstructionMetrics | None = None
        if outcome == "finished" and session.n_requests > 0:
            metrics = session.metrics()
            self._write_metrics(metrics)
        with self._state_lock:
            self._state = outcome
        self._write_status()
        return metrics

    # -- pipeline thread -------------------------------------------------

    def _pipeline_loop(self, session: StreamingReconstructionSession) -> str:
        while True:
            item = self._queue.get(timeout=0.2)
            if item is None:
                continue
            kind, rows, cursor = item
            try:
                if kind == "chunk":
                    self._handle_chunk(session, rows, cursor)
                elif kind == "eof":
                    if rows:
                        self._handle_chunk(session, rows, cursor)
                    piece = session.finish()
                    if piece is not None:
                        self._sink.append(piece)
                        self._counters.add(rows_out=len(piece))
                    self._commit(session, cursor if rows else self._last_cursor)
                    return "finished"
                elif kind == "stop":
                    return "stopped"
                elif kind == "fail":
                    self._fatal = str(rows)
                    return "failed"
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - fail loudly, not silently
                self._fatal = f"{type(exc).__name__}: {exc}"
                return "failed"

    def _handle_chunk(
        self,
        session: StreamingReconstructionSession,
        rows: list[tuple[str, Any]],
        cursor: Any,
    ) -> None:
        """Parse, quarantine, reconstruct, append, and checkpoint one chunk."""
        lines = [text for text, _ in rows]
        self._counters.add(rows_queued=-len(rows))
        trace = self._parse_chunk(lines)
        if trace is not None and len(trace) > 0:
            if self.config.fmt in _REBASED_FORMATS:
                if self._rebase_offset is None:
                    self._rebase_offset = float(trace.timestamps[0])
                trace = trace.shifted(-self._rebase_offset)
            trace = self._drop_time_regressions(trace)
        piece: BlockTrace | None = None
        if trace is not None and len(trace) > 0:
            # feed() commits its state only on success, so a raise here
            # leaves the session untouched; it is NOT retried in-process
            # (reconstruction is pure compute — a failure is a bug, not
            # weather) and surfaces as the 'failed' state.
            piece = session.feed(trace)
            self._last_old_ts = float(trace.timestamps[-1])
        if piece is not None:
            # I/O *is* weather: the sink rolls back on failure, so the
            # append + checkpoint pair retries under the policy.
            final_piece = piece
            retry_call(
                lambda: self._sink.append(final_piece),
                key=f"sink@{self._sink.nbytes}",
                policy=self.config.retry,
            )
            self._counters.add(rows_out=len(piece))
        self._counters.add(rows_consumed=len(rows))
        self._commit(session, cursor)

    def _commit(self, session: StreamingReconstructionSession, cursor: Any) -> None:
        """Durably commit the chunk: data files first, then the checkpoint."""
        counters = self._counters.snapshot()
        checkpoint = StreamCheckpoint(
            source_cursor=cursor,
            session_state=session.state_dict(),
            sink_bytes=self._sink.nbytes,
            quarantine_bytes=self._quarantine.nbytes,
            header=self._header,
            rebase_offset=self._rebase_offset,
            last_old_ts=self._last_old_ts,
            rows_consumed=counters["rows_consumed"],
            rows_out=counters["rows_out"],
            n_quarantined=counters["n_quarantined"],
        )

        def _write() -> None:
            self._sink.sync()
            self._quarantine.sync()
            save_checkpoint(self.checkpoint_path, checkpoint)

        retry_call(_write, key=f"checkpoint@{self._sink.nbytes}", policy=self.config.retry)
        self._last_cursor = cursor

    # -- parsing and quarantine ------------------------------------------

    def _body(self, lines: list[str]) -> str:
        if self._header is not None:
            return self._header + "\n" + "\n".join(lines)
        return "\n".join(lines)

    def _parse_chunk(self, lines: list[str]) -> BlockTrace | None:
        """Bulk-parse a chunk; on poison, salvage line by line."""
        try:
            return self._parse(self._body(lines), name=self.config.name, rebase=False)
        except (TraceParseError, ValueError):
            pass
        good: list[str] = []
        for text in lines:
            try:
                self._parse(self._body([text]), name=self.config.name, rebase=False)
            except (TraceParseError, ValueError) as exc:
                self._dead_letter("parse", line=text, error=str(exc))
            else:
                good.append(text)
        if not good:
            return None
        try:
            return self._parse(self._body(good), name=self.config.name, rebase=False)
        except (TraceParseError, ValueError) as exc:
            # Lines that parse alone but poison in aggregate: rare, but
            # quarantine beats killing the stream.
            for text in good:
                self._dead_letter("parse", line=text, error=str(exc))
            return None

    def _drop_time_regressions(self, trace: BlockTrace) -> BlockTrace | None:
        """Quarantine rows that travel back past the emitted boundary.

        The carry invariant needs every new chunk to start no earlier
        than the previous chunk's last request; a batch reader raises
        ``TraceStreamError`` here, an always-on service dead-letters
        the offending rows and keeps going.
        """
        if self._last_old_ts is None:
            return trace
        cut = int(np.searchsorted(trace.timestamps, self._last_old_ts, side="left"))
        if cut == 0:
            return trace
        for i in range(cut):
            self._dead_letter(
                "order",
                timestamp_us=float(trace.timestamps[i]),
                lba=int(trace.lbas[i]),
                size_sectors=int(trace.sizes[i]),
                cutoff_us=self._last_old_ts,
            )
        if cut >= len(trace):
            return None
        return trace.select(slice(cut, None))

    def _dead_letter(self, kind: str, **payload: Any) -> None:
        self._quarantine.record(kind, **payload)
        self._counters.add(n_quarantined=1)

    # -- ingest thread ---------------------------------------------------

    def _ingest(self) -> None:
        cfg = self.config
        assembled: list[tuple[str, Any]] = []
        idle_since: float | None = None
        attempt = 0
        try:
            while True:
                if self._stop.is_set():
                    self._queue.put(("stop", None, None), force=True)
                    return
                try:
                    batch = self.source.poll()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - the taxonomy decides
                    if classify_error(exc) == "permanent":
                        self._queue.put(
                            ("fail", f"source: {type(exc).__name__}: {exc}", None),
                            force=True,
                        )
                        return
                    self._last_source_error = f"{type(exc).__name__}: {exc}"
                    self._counters.add(source_errors=1)
                    # Retry forever — always-on — but with the policy's
                    # *capped* deterministic backoff.
                    delay = cfg.retry.delay_s(
                        "source-poll", min(attempt, cfg.retry.max_attempts - 1)
                    )
                    attempt += 1
                    self._stop.wait(delay)
                    continue
                attempt = 0
                if batch:
                    idle_since = None
                    self._assemble(batch, assembled)
                    continue
                if cfg.until_idle_s is not None and self.source.idle():
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if now - idle_since >= cfg.until_idle_s:
                        for text, cursor in self.source.eof_flush():
                            self._accept_line(text, cursor, assembled)
                        self._flush_full_chunks(assembled)
                        cursor = assembled[-1][1] if assembled else None
                        self._queue.put(("eof", list(assembled), cursor), force=True)
                        self._counters.add(rows_queued=len(assembled))
                        self._counters.set(rows_buffered=0)
                        return
                else:
                    idle_since = None
                self._stop.wait(cfg.poll_interval_s)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - never die silently
            self._queue.put(("fail", f"ingest: {type(exc).__name__}: {exc}", None), force=True)

    def _assemble(self, batch: list[tuple[str, Any]], assembled: list[tuple[str, Any]]) -> None:
        for text, cursor in batch:
            self._accept_line(text, cursor, assembled)
        self._flush_full_chunks(assembled)
        self._counters.set(rows_buffered=len(assembled))

    def _accept_line(
        self, text: str, cursor: Any, assembled: list[tuple[str, Any]]
    ) -> None:
        """Apply the TraceReader line discipline: strip, drop, de-header."""
        self._counters.add(rows_polled=1)
        line = text.strip()
        if not line or line.startswith("#"):
            return
        if self.config.fmt == "internal":
            with self._state_lock:
                if self._header is None:
                    self._header = line
                    return
                header = self._header
            if line == header:
                # Segment sources repeat the header per file.
                self._counters.add(n_header_repeats=1)
                return
        assembled.append((line, cursor))

    def _flush_full_chunks(self, assembled: list[tuple[str, Any]]) -> None:
        n = self.config.chunk_requests
        while len(assembled) >= n and not self._stop.is_set():
            rows = assembled[:n]
            ok = self._queue.put(
                ("chunk", rows, rows[-1][1]), should_abort=self._stop.is_set
            )
            if ok:
                del assembled[:n]
                self._counters.add(rows_queued=len(rows))
            elif self._stop.is_set():
                return  # aborted mid-block; restart re-reads from the cursor
            else:
                del assembled[:n]
                self._counters.add(n_chunks_shed=1, rows_shed=len(rows))

    # -- watchdog thread -------------------------------------------------

    def _watchdog(self) -> None:
        samples: deque[tuple[float, int]] = deque(maxlen=32)
        while not self._done.wait(self.config.status_interval_s):
            samples.append((time.monotonic(), self._counters["rows_out"]))
            self._write_status(self._throughput(samples))
            write_heartbeat(self.heartbeat_path)

    @staticmethod
    def _throughput(samples: deque[tuple[float, int]]) -> float:
        if len(samples) < 2:
            return 0.0
        (t0, r0), (t1, r1) = samples[0], samples[-1]
        return (r1 - r0) / (t1 - t0) if t1 > t0 else 0.0

    def _write_status(self, throughput_rps: float = 0.0) -> None:
        counters = self._counters.snapshot()
        with self._state_lock:
            state = self._state
        session = self._session
        payload: dict[str, Any] = {
            "state": state,
            "pid": os.getpid(),
            "started_at": self._started_at,
            "updated_at": time.time(),
            "source": self.source.describe(),
            "fmt": self.config.fmt,
            "chunk_requests": self.config.chunk_requests,
            "until_idle_s": self.config.until_idle_s,
            "queue": self._queue.stats(),
            "counters": counters,
            "lag_rows": counters["rows_queued"] + counters["rows_buffered"],
            "throughput_rps": throughput_rps,
            "session": {
                "n_chunks": session.n_chunks if session is not None else 0,
                "n_requests": session.n_requests if session is not None else 0,
            },
            "last_source_error": self._last_source_error,
            "fatal": self._fatal,
        }
        if isinstance(self.source, SocketLineSource):
            payload["endpoint"] = {"host": self.source.host, "port": self.source.port}
        tmp = self.status_path.with_name(self.status_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.status_path)

    def _write_metrics(self, metrics: ReconstructionMetrics) -> None:
        payload = {
            "n_requests": metrics.n_requests,
            "old_duration_us": metrics.old_duration_us,
            "new_duration_us": metrics.new_duration_us,
            "slept_idle_us": metrics.slept_idle_us,
            "n_async_gaps": metrics.n_async_gaps,
            "used_measured_tsdev": metrics.used_measured_tsdev,
            "n_chunks": metrics.n_chunks,
        }
        tmp = self.metrics_path.with_name(self.metrics_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.metrics_path)
