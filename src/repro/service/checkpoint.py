"""Crash-consistent stream checkpoints: resume exactly, or not at all.

One checkpoint document captures everything the daemon needs to resume
bit-identically after a SIGKILL:

- the **source cursor** after the last *committed* chunk (sources
  re-read from there, so uncommitted lines are re-polled, never lost);
- the reconstruction session's :meth:`state_dict` (carried request,
  splice point, running aggregates — see
  :class:`~repro.core.stages.StreamingReconstructionSession`);
- the byte lengths of the output sink and the quarantine file at
  commit time.  On restart both files are **truncated back** to these
  lengths, which deletes any bytes appended by a chunk whose
  checkpoint never landed — the other half of exactly-once: the
  cursor replays what was lost, the truncation removes what was
  half-done, and the replayed chunk reproduces it bit-identically
  (replay cold-starts the device, the session state is the committed
  one).

Durability ordering per chunk is append+fsync the data files *first*,
then write the checkpoint via temp-file + ``fsync`` + ``os.replace``
(+ directory fsync): the checkpoint is atomic, and it can only ever
*understate* what is on disk — the recoverable direction.

A checkpoint that fails to parse is quarantined aside as
``checkpoint.json.corrupt`` and treated as absent: the stream restarts
from scratch, consistent by construction (sink truncates to zero).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["CHECKPOINT_VERSION", "StreamCheckpoint", "load_checkpoint", "save_checkpoint"]

#: Version stamp for the on-disk checkpoint document.
CHECKPOINT_VERSION = 1


@dataclass
class StreamCheckpoint:
    """The resume point of one streaming reconstruction (see module doc)."""

    source_cursor: Any
    session_state: dict[str, Any]
    sink_bytes: int = 0
    quarantine_bytes: int = 0
    header: str | None = None
    rebase_offset: float | None = None
    last_old_ts: float | None = None
    rows_consumed: int = 0
    rows_out: int = 0
    n_quarantined: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-able dict (stamped with the format version)."""
        return {
            "version": CHECKPOINT_VERSION,
            "source_cursor": self.source_cursor,
            "session_state": self.session_state,
            "sink_bytes": self.sink_bytes,
            "quarantine_bytes": self.quarantine_bytes,
            "header": self.header,
            "rebase_offset": self.rebase_offset,
            "last_old_ts": self.last_old_ts,
            "rows_consumed": self.rows_consumed,
            "rows_out": self.rows_out,
            "n_quarantined": self.n_quarantined,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StreamCheckpoint":
        """Rebuild from :meth:`to_dict` output; rejects unknown versions."""
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version!r}")
        return cls(
            source_cursor=data["source_cursor"],
            session_state=data["session_state"],
            sink_bytes=int(data["sink_bytes"]),
            quarantine_bytes=int(data["quarantine_bytes"]),
            header=data.get("header"),
            rebase_offset=data.get("rebase_offset"),
            last_old_ts=data.get("last_old_ts"),
            rows_consumed=int(data.get("rows_consumed", 0)),
            rows_out=int(data.get("rows_out", 0)),
            n_quarantined=int(data.get("n_quarantined", 0)),
            extra=dict(data.get("extra", {})),
        )


def save_checkpoint(path: str | Path, checkpoint: StreamCheckpoint) -> None:
    """Atomically persist ``checkpoint`` (temp + fsync + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    payload = json.dumps(checkpoint.to_dict(), sort_keys=True)
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_checkpoint(path: str | Path) -> StreamCheckpoint | None:
    """Read a checkpoint; ``None`` when absent or corrupt.

    Corruption (a crash can tear many things, but not an ``os.replace``
    — a torn document means external interference) is preserved aside
    as ``<name>.corrupt`` for the operator and treated as a fresh
    start.
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    try:
        return StreamCheckpoint.from_dict(json.loads(raw))
    except (ValueError, KeyError, TypeError):
        corrupt = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, corrupt)
        except OSError:
            pass
        return None
