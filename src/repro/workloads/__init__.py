"""Synthetic workload substrate: specs, generation, catalog, idle injection."""

from .catalog import (
    ALL_WORKLOADS,
    FIU_WORKLOADS,
    MSPS_WORKLOADS,
    MSRC_WORKLOADS,
    TABLE1_N_TRACES,
    WORKLOAD_SPECS,
    get_spec,
    spec_variants,
    workload_names,
)
from .generator import (
    IdleProcess,
    IntentStream,
    SizeMix,
    WorkloadSpec,
    collect_trace,
    generate_intents,
)
from .idle_injection import InjectionRecord, inject_idles
from .materialize import collect_trace_cached, spec_key

__all__ = [
    "ALL_WORKLOADS",
    "FIU_WORKLOADS",
    "MSPS_WORKLOADS",
    "MSRC_WORKLOADS",
    "TABLE1_N_TRACES",
    "WORKLOAD_SPECS",
    "get_spec",
    "spec_variants",
    "workload_names",
    "IdleProcess",
    "IntentStream",
    "SizeMix",
    "WorkloadSpec",
    "collect_trace",
    "generate_intents",
    "InjectionRecord",
    "inject_idles",
    "collect_trace_cached",
    "spec_key",
]
