"""The 31-workload catalog: FIU, MSPS, and MSRC families from Table I.

Every workload the paper reconstructs is represented by a
:class:`~repro.workloads.generator.WorkloadSpec` whose parameters are
matched to the published characteristics:

- average request ("data") size per Table I;
- trace counts per workload per Table I (577 block traces overall);
- idle behaviour per Figures 16/17 — MSPS workloads idle *often* but
  *briefly* (average idle ~0.27 s), FIU and MSRC idle rarely but for a
  long time (averages 2.80 s and 2.25 s, with outliers ``madmax``
  ≈ 20.5 s, ``rsrch`` ≈ 69.2 s, ``wdev`` ≈ 403 s);
- plausible read ratios and sequentiality per the workloads' published
  descriptions (web servers read-heavy, MSRC volumes write-heavy, ...).

Absolute trace sizes are scaled down (default 6 000 requests per trace)
so the whole catalog regenerates in seconds; every consumer can rescale
via :meth:`WorkloadSpec.scaled`.
"""

from __future__ import annotations

from .generator import IdleProcess, SizeMix, WorkloadSpec

__all__ = [
    "WORKLOAD_SPECS",
    "EXTRA_SPECS",
    "TABLE1_N_TRACES",
    "MSPS_WORKLOADS",
    "FIU_WORKLOADS",
    "MSRC_WORKLOADS",
    "ALL_WORKLOADS",
    "get_spec",
    "workload_names",
    "spec_variants",
]

#: Default per-trace request count for the scaled-down catalog.
_DEFAULT_N = 6_000

# Idle processes per family, tuned to Figures 16/17:
# log-normal mean = median * exp(sigma^2 / 2).
_MSPS_IDLE = IdleProcess(
    idle_fraction=0.55, idle_median_us=10_000.0, idle_sigma=2.4, cpu_burst_mean_us=45.0
)
_FIU_IDLE = IdleProcess(
    idle_fraction=0.20, idle_median_us=250_000.0, idle_sigma=2.2, cpu_burst_mean_us=35.0
)
_MSRC_IDLE = IdleProcess(
    idle_fraction=0.17, idle_median_us=200_000.0, idle_sigma=2.2, cpu_burst_mean_us=40.0
)


def _spec(
    name: str,
    category: str,
    avg_kb: float,
    read_fraction: float,
    seq: float,
    idle: IdleProcess,
    async_fraction: float = 0.2,
    seed: int = 0,
) -> WorkloadSpec:
    """Catalog entry shorthand."""
    return WorkloadSpec(
        name=name,
        category=category,
        n_requests=_DEFAULT_N,
        read_fraction=read_fraction,
        seq_run_continue=seq,
        size_mix=SizeMix.for_average_kb(avg_kb),
        idle=idle,
        async_fraction=async_fraction,
        seed=seed,
    )


def _long_idle(median_s: float) -> IdleProcess:
    """FIU/MSRC-style idle process with a given median idle (seconds)."""
    return IdleProcess(
        idle_fraction=0.18,
        idle_median_us=median_s * 1e6,
        idle_sigma=2.2,
        cpu_burst_mean_us=38.0,
    )


# ----------------------------------------------------------------------
# Microsoft Production Server (2007): 8 workloads.
# ----------------------------------------------------------------------
_MSPS = {
    "24HR": _spec("24HR", "MSPS", 8.27, 0.55, 0.35, _MSPS_IDLE, seed=101),
    "24HRS": _spec("24HRS", "MSPS", 28.79, 0.50, 0.55, _MSPS_IDLE, seed=102),
    "BS": _spec("BS", "MSPS", 20.73, 0.45, 0.45, _MSPS_IDLE, seed=103),
    "CFS": _spec("CFS", "MSPS", 9.71, 0.60, 0.30, _MSPS_IDLE, seed=104),
    "DADS": _spec("DADS", "MSPS", 28.66, 0.65, 0.55, _MSPS_IDLE, seed=105),
    "DAP": _spec("DAP", "MSPS", 74.42, 0.60, 0.70, _MSPS_IDLE, seed=106),
    "DDR": _spec("DDR", "MSPS", 24.78, 0.70, 0.50, _MSPS_IDLE, seed=107),
    "MSNFS": _spec("MSNFS", "MSPS", 10.71, 0.60, 0.35, _MSPS_IDLE, seed=108),
}

# ----------------------------------------------------------------------
# FIU (SRCMap 2008 + IODedup 2009): 10 workloads.
# ----------------------------------------------------------------------
_FIU = {
    "ikki": _spec("ikki", "FIU", 4.64, 0.25, 0.25, _FIU_IDLE, seed=201),
    "madmax": _spec("madmax", "FIU", 4.11, 0.20, 0.20, _long_idle(1.5), seed=202),
    "online": _spec("online", "FIU", 4.00, 0.30, 0.22, _FIU_IDLE, seed=203),
    "topgun": _spec("topgun", "FIU", 3.87, 0.22, 0.20, _FIU_IDLE, seed=204),
    "webmail": _spec("webmail", "FIU", 4.00, 0.35, 0.25, _FIU_IDLE, seed=205),
    "casa": _spec("casa", "FIU", 4.04, 0.28, 0.22, _FIU_IDLE, seed=206),
    "webresearch": _spec("webresearch", "FIU", 4.00, 0.40, 0.25, _FIU_IDLE, seed=207),
    "webusers": _spec("webusers", "FIU", 4.20, 0.45, 0.28, _FIU_IDLE, seed=208),
    "mail+online": _spec("mail+online", "FIU", 4.00, 0.30, 0.22, _FIU_IDLE, seed=209),
    "homes": _spec("homes", "FIU", 5.23, 0.35, 0.30, _FIU_IDLE, seed=210),
}

# ----------------------------------------------------------------------
# MSR Cambridge (2008): 13 workloads.
# ----------------------------------------------------------------------
_MSRC = {
    "mds": _spec("mds", "MSRC", 33.0, 0.30, 0.50, _MSRC_IDLE, seed=301),
    "prn": _spec("prn", "MSRC", 15.4, 0.25, 0.40, _MSRC_IDLE, seed=302),
    "proj": _spec("proj", "MSRC", 29.6, 0.45, 0.60, _MSRC_IDLE, seed=303),
    "prxy": _spec("prxy", "MSRC", 8.6, 0.05, 0.30, _MSRC_IDLE, seed=304),
    "rsrch": _spec("rsrch", "MSRC", 8.4, 0.10, 0.30, _long_idle(5.0), seed=305),
    "src1": _spec("src1", "MSRC", 35.7, 0.45, 0.60, _MSRC_IDLE, seed=306),
    "src2": _spec("src2", "MSRC", 40.9, 0.30, 0.60, _MSRC_IDLE, seed=307),
    "stg": _spec("stg", "MSRC", 26.2, 0.35, 0.50, _MSRC_IDLE, seed=308),
    "web": _spec("web", "MSRC", 7.0, 0.70, 0.35, _MSRC_IDLE, seed=309),
    "wdev": _spec("wdev", "MSRC", 34.0, 0.20, 0.50, _long_idle(30.0), seed=310),
    "usr": _spec("usr", "MSRC", 38.65, 0.55, 0.60, _MSRC_IDLE, seed=311),
    "hm": _spec("hm", "MSRC", 15.16, 0.35, 0.40, _MSRC_IDLE, seed=312),
    "ts": _spec("ts", "MSRC", 9.0, 0.25, 0.35, _MSRC_IDLE, seed=313),
}

#: Every catalog workload, keyed by name.
WORKLOAD_SPECS: dict[str, WorkloadSpec] = {**_MSPS, **_FIU, **_MSRC}

#: Workloads used by individual figures but not part of the 577-trace
#: Table I inventory.  ``Exchange`` is the Microsoft Exchange server
#: collection (5,000 users) the introduction and Figure 3 use.
EXTRA_SPECS: dict[str, WorkloadSpec] = {
    "Exchange": _spec("Exchange", "MSPS-extra", 32.0, 0.55, 0.40, _MSPS_IDLE, seed=150),
}

#: Block-trace counts per workload, exactly as Table I lists them
#: (they sum to 577).
TABLE1_N_TRACES: dict[str, int] = {
    "24HR": 18, "24HRS": 18, "BS": 96, "CFS": 36, "DADS": 48, "DAP": 48,
    "DDR": 24, "MSNFS": 36,
    "ikki": 20, "madmax": 20, "online": 20, "topgun": 20, "webmail": 20,
    "casa": 20, "webresearch": 28, "webusers": 28,
    "mail+online": 21, "homes": 21,
    "mds": 2, "prn": 2, "proj": 5, "prxy": 2, "rsrch": 3, "src1": 3,
    "src2": 3, "stg": 2, "web": 4, "wdev": 4, "usr": 3, "hm": 1, "ts": 1,
}

MSPS_WORKLOADS: tuple[str, ...] = tuple(_MSPS)
FIU_WORKLOADS: tuple[str, ...] = tuple(_FIU)
MSRC_WORKLOADS: tuple[str, ...] = tuple(_MSRC)
ALL_WORKLOADS: tuple[str, ...] = tuple(WORKLOAD_SPECS)


def get_spec(name: str) -> WorkloadSpec:
    """Look up a catalog workload by name (extras like ``Exchange`` included).

    Raises ``KeyError`` with the list of valid names on a miss.
    """
    if name in WORKLOAD_SPECS:
        return WORKLOAD_SPECS[name]
    if name in EXTRA_SPECS:
        return EXTRA_SPECS[name]
    known = sorted(WORKLOAD_SPECS) + sorted(EXTRA_SPECS)
    raise KeyError(f"unknown workload {name!r}; catalog has {known}")


def workload_names(category: str | None = None) -> tuple[str, ...]:
    """Workload names, optionally filtered by family (``MSPS``/``FIU``/``MSRC``)."""
    if category is None:
        return ALL_WORKLOADS
    names = tuple(n for n, s in WORKLOAD_SPECS.items() if s.category == category)
    if not names:
        raise ValueError(f"unknown category {category!r}; use 'MSPS', 'FIU' or 'MSRC'")
    return names


def spec_variants(name: str, count: int | None = None) -> list[WorkloadSpec]:
    """Per-trace spec variants of one workload (distinct seeds).

    ``count`` defaults to the Table I trace count for the workload —
    asking for the full catalog this way regenerates all 577 traces.
    """
    base = get_spec(name)
    n = TABLE1_N_TRACES.get(name, 1) if count is None else count
    if n <= 0:
        raise ValueError("variant count must be positive")
    return [
        WorkloadSpec(
            name=base.name,
            category=base.category,
            n_requests=base.n_requests,
            read_fraction=base.read_fraction,
            seq_run_continue=base.seq_run_continue,
            size_mix=base.size_mix,
            idle=base.idle,
            async_fraction=base.async_fraction,
            address_space_sectors=base.address_space_sectors,
            seed=base.seed * 1000 + k,
        )
        for k in range(n)
    ]
