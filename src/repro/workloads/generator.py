"""Synthetic workload generation and trace collection.

The paper's verification methodology issues a known request pattern to
an HDD node (producing the "OLD" trace) and to a flash node (producing
the ground-truth "NEW" trace).  We reproduce that exactly, except the
nodes are simulators:

1. a :class:`WorkloadSpec` describes an application's behaviour — size
   mix, read ratio, sequentiality, CPU bursts, user idle process,
   async fraction;
2. :func:`generate_intents` expands the spec into a deterministic
   *intent stream*: the device-independent sequence of requests plus
   the host-side think time preceding each one;
3. :func:`collect_trace` replays the intent stream against any
   :class:`~repro.storage.device.StorageDevice` with proper sync/async
   semantics and records what a block-layer tracer would see.

Because the same intent stream can be collected on different devices,
OLD/NEW trace pairs share their user behaviour by construction — the
property every verification experiment in Section V relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..storage.device import StorageDevice
from ..trace.record import OpType
from ..trace.trace import BlockTrace

__all__ = ["SizeMix", "IdleProcess", "WorkloadSpec", "IntentStream", "generate_intents", "collect_trace"]


@dataclass(frozen=True, slots=True)
class SizeMix:
    """Discrete request-size mixture (sectors, probability weights)."""

    sizes: tuple[int, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.weights) or not self.sizes:
            raise ValueError("sizes and weights must be equal-length and non-empty")
        if any(s <= 0 for s in self.sizes):
            raise ValueError("sizes must be positive")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative with positive sum")

    @property
    def probabilities(self) -> np.ndarray:
        """Normalised weights."""
        w = np.asarray(self.weights, dtype=np.float64)
        return w / w.sum()

    def mean_sectors(self) -> float:
        """Expected request size in sectors."""
        return float(np.dot(self.sizes, self.probabilities))

    def mean_kb(self) -> float:
        """Expected request size in KB."""
        return self.mean_sectors() * 512 / 1024

    @classmethod
    def for_average_kb(cls, avg_kb: float) -> "SizeMix":
        """Construct a plausible mixture with the requested mean size.

        Server traces are dominated by 4 KB pages with a tail of larger
        transfers; we keep a fixed shape — 4 KB, 8 KB, 32 KB, 128 KB
        buckets — and tune the tail weight to hit ``avg_kb``.  At least
        three distinct sizes are always present because the inference
        model needs two per operation type (plus variety for realism).
        """
        if avg_kb < 4.0:
            # Mostly 4 KB with a sliver of sub-page 2 KB requests.
            small_w = min(0.9, (4.0 - avg_kb) / 2.0)
            return cls(sizes=(4, 8, 16), weights=(small_w, 1.0 - small_w, 0.0001))
        buckets_kb = np.array([4.0, 8.0, 32.0, 128.0])
        # Weights: geometric with ratio r; solve r for the mean.  Ratios
        # below 1 give 4 KB-dominated mixes, above 1 large-transfer-heavy
        # ones (the mean spans ~4.6 KB to ~116 KB over this sweep).
        best = None
        for r in np.geomspace(0.01, 12.0, 600):
            w = r ** np.arange(len(buckets_kb), dtype=np.float64)
            mean = float(np.dot(buckets_kb, w) / w.sum())
            err = abs(mean - avg_kb)
            if best is None or err < best[0]:
                best = (err, w)
        assert best is not None
        weights = best[1] / best[1].sum()
        return cls(
            sizes=tuple(int(kb * 2) for kb in buckets_kb),
            weights=tuple(float(x) for x in weights),
        )


@dataclass(frozen=True, slots=True)
class IdleProcess:
    """User/system idleness model.

    With probability ``idle_fraction`` the host inserts a *user idle*
    before preparing the next request; otherwise only a short CPU burst
    (mode switches, buffer copies, address translation — the costs
    Section II attributes to the storage stack) separates requests.

    Idle periods are log-normal: ``exp(N(log(median_us), sigma))``,
    which produces the heavy right tail Figures 16/17 report (most idle
    *time* lives in the >100 ms bucket even when idle *events* are a
    minority).
    """

    idle_fraction: float = 0.2
    idle_median_us: float = 20_000.0
    idle_sigma: float = 1.6
    cpu_burst_mean_us: float = 40.0
    cpu_burst_sigma: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_fraction <= 1.0:
            raise ValueError("idle_fraction must lie in [0, 1]")
        if self.idle_median_us < 0 or self.cpu_burst_mean_us < 0:
            raise ValueError("durations must be non-negative")

    def sample_think(self, rng: np.random.Generator) -> tuple[float, bool]:
        """Draw one think time; returns ``(microseconds, is_user_idle)``."""
        if rng.random() < self.idle_fraction:
            period = float(rng.lognormal(np.log(max(self.idle_median_us, 1e-9)), self.idle_sigma))
            return period, True
        burst = float(rng.lognormal(np.log(max(self.cpu_burst_mean_us, 1e-9)), self.cpu_burst_sigma))
        return burst, False


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """Deterministic description of one synthetic workload.

    Attributes mirror the knobs the paper's workloads differ in; the
    catalog (:mod:`repro.workloads.catalog`) instantiates 31 of these
    from Table I and the idle statistics of Figures 16/17.
    """

    name: str
    category: str = "synthetic"
    n_requests: int = 8_000
    read_fraction: float = 0.6
    seq_run_continue: float = 0.5
    size_mix: SizeMix = field(default_factory=lambda: SizeMix.for_average_kb(8.0))
    idle: IdleProcess = field(default_factory=IdleProcess)
    async_fraction: float = 0.2
    address_space_sectors: int = 200_000_000
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        for label, value in (
            ("read_fraction", self.read_fraction),
            ("seq_run_continue", self.seq_run_continue),
            ("async_fraction", self.async_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must lie in [0, 1]")
        if self.address_space_sectors <= max(self.size_mix.sizes):
            raise ValueError("address space must exceed the largest request size")

    def scaled(self, n_requests: int) -> "WorkloadSpec":
        """Copy with a different request count (same behaviour otherwise)."""
        return replace(self, n_requests=n_requests)


@dataclass(frozen=True, slots=True)
class IntentStream:
    """Device-independent request stream with ground-truth host behaviour.

    Columns (all length ``n``):

    - ``ops``, ``lbas``, ``sizes`` — the block requests;
    - ``thinks`` — host-side delay (µs) *before* each request is ready,
      relative to the moment the host became free;
    - ``is_idle`` — whether that delay was a user idle (vs a CPU burst);
    - ``syncs`` — whether the host blocks on this request's completion.
    """

    ops: np.ndarray
    lbas: np.ndarray
    sizes: np.ndarray
    thinks: np.ndarray
    is_idle: np.ndarray
    syncs: np.ndarray
    spec: WorkloadSpec

    def __len__(self) -> int:
        return len(self.ops)

    def idle_count(self) -> int:
        """Number of user-idle gaps in the stream."""
        return int(self.is_idle.sum())

    def total_idle_us(self) -> float:
        """Summed user-idle time (µs)."""
        return float(self.thinks[self.is_idle].sum())


def generate_intents(spec: WorkloadSpec) -> IntentStream:
    """Expand a :class:`WorkloadSpec` into its deterministic intent stream.

    The spatial process alternates sequential runs and random jumps:
    after each request the stream continues sequentially with
    probability ``seq_run_continue``, otherwise it jumps to a uniform
    random aligned address.  Sequential continuations keep the current
    operation type (real streams are homogeneous); jumps re-draw it.
    """
    rng = np.random.default_rng(spec.seed)
    n = spec.n_requests
    sizes_choices = np.asarray(spec.size_mix.sizes, dtype=np.int64)
    probs = spec.size_mix.probabilities
    ops = np.empty(n, dtype=np.int8)
    lbas = np.empty(n, dtype=np.int64)
    sizes = rng.choice(sizes_choices, size=n, p=probs)
    thinks = np.empty(n, dtype=np.float64)
    is_idle = np.empty(n, dtype=bool)
    syncs = rng.random(n) >= spec.async_fraction
    current_op = int(OpType.READ if rng.random() < spec.read_fraction else OpType.WRITE)
    cursor = int(rng.integers(0, spec.address_space_sectors // 2))
    for i in range(n):
        if i == 0 or rng.random() >= spec.seq_run_continue:
            # Random jump: new aligned location, re-draw the op type.
            cursor = int(rng.integers(0, spec.address_space_sectors - int(sizes[i])))
            cursor -= cursor % 8  # 4 KB alignment, as filesystems issue
            current_op = int(OpType.READ if rng.random() < spec.read_fraction else OpType.WRITE)
        ops[i] = current_op
        lbas[i] = cursor
        cursor += int(sizes[i])
        think, idle_flag = spec.idle.sample_think(rng)
        thinks[i] = think
        is_idle[i] = idle_flag
    # The first request has no preceding gap to model.
    thinks[0] = 0.0
    is_idle[0] = False
    return IntentStream(
        ops=ops, lbas=lbas, sizes=sizes, thinks=thinks, is_idle=is_idle, syncs=syncs, spec=spec
    )


def collect_trace(
    intents: IntentStream,
    device: StorageDevice,
    record_device_times: bool = True,
    record_sync_flags: bool = False,
    name: str | None = None,
) -> BlockTrace:
    """Issue an intent stream to a device and record the block trace.

    Submission semantics follow the paper's Figure 2b:

    - the host becomes *free* at the previous request's completion when
      it was synchronous, or at its channel acknowledgement when it was
      asynchronous;
    - the next request is submitted ``think`` microseconds after the
      host became free (CPU burst or user idle);
    - the tracer records the submit time below the block layer, plus
      issue/completion stamps when ``record_device_times`` (an MSPS or
      MSRC style collection; pass ``False`` for an FIU-style trace).

    The device is reset before collection so runs are reproducible.

    Devices that are single-FIFO servers with gap-invariant service
    times (``fifo_single_server`` and a successful ``service_batch``)
    are collected through a closed-form clock recurrence over the
    pre-priced stream — bit-identical stamps at a fraction of the cost.
    Other devices take the request-by-request ``submit`` path.
    """
    device.reset()
    metadata = {
        "category": intents.spec.category,
        "collected_on": device.name,
        "n_user_idles": intents.idle_count(),
        "total_user_idle_us": intents.total_idle_us(),
    }
    trace_name = name if name is not None else intents.spec.name
    svc = (
        device.service_batch(intents.ops, intents.lbas, intents.sizes)
        if device.fifo_single_server
        else None
    )
    if svc is not None:
        return _collect_fifo(
            intents, device, svc, record_device_times, record_sync_flags, trace_name, metadata
        )
    # Request-by-request path for gap-sensitive devices: the same
    # arithmetic StorageDevice.submit performs (channel hand-off, then
    # _service), with per-request conversions hoisted out of the loop.
    n = len(intents)
    ops = [OpType.READ if op == 0 else OpType.WRITE for op in intents.ops.tolist()]
    lbas = intents.lbas.tolist()
    sizes = intents.sizes.tolist()
    thinks = intents.thinks.tolist()
    syncs = intents.syncs.tolist()
    t_cdel = device.channel.delay_batch_us(intents.ops, intents.sizes).tolist()
    service = device._service
    submits = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    host_free = 0.0
    for i in range(n):
        op = ops[i]
        # Driver-level issue stamp (MSPS/MSRC tracing semantics): the
        # recorded device time includes channel + queueing.
        submit = host_free + thinks[i]
        ack = submit + t_cdel[i]
        __, finish = service(op, lbas[i], sizes[i], ack)
        submits[i] = submit
        finishes[i] = finish
        host_free = finish if syncs[i] else ack
    return BlockTrace(
        timestamps=submits,
        lbas=intents.lbas,
        sizes=intents.sizes,
        ops=intents.ops,
        issues=submits.copy() if record_device_times else None,
        completes=finishes if record_device_times else None,
        syncs=intents.syncs if record_sync_flags else None,
        name=trace_name,
        metadata=metadata,
    )


def _collect_fifo(
    intents: IntentStream,
    device: StorageDevice,
    svc: np.ndarray,
    record_device_times: bool,
    record_sync_flags: bool,
    name: str,
    metadata: dict,
) -> BlockTrace:
    """Clock recurrence for single-FIFO, gap-invariant devices.

    Per request: ``ack = submit + T_cdel``, ``start = max(ack, busy)``,
    ``finish = start + svc`` — the exact arithmetic ``submit``/
    ``_service`` performs on such devices, with the service times priced
    up front by ``service_batch``.
    """
    n = len(intents)
    t_cdel = device.channel.delay_batch_us(intents.ops, intents.sizes).tolist()
    thinks = intents.thinks.tolist()
    syncs = intents.syncs.tolist()
    svc_list = svc.tolist()
    submits = np.empty(n, dtype=np.float64)
    finishes = np.empty(n, dtype=np.float64)
    host_free = 0.0
    busy = 0.0
    for i in range(n):
        submit = host_free + thinks[i]
        ack = submit + t_cdel[i]
        start = ack if ack >= busy else busy
        finish = start + svc_list[i]
        submits[i] = submit
        finishes[i] = finish
        busy = finish
        host_free = finish if syncs[i] else ack
    return BlockTrace(
        timestamps=submits,
        lbas=intents.lbas,
        sizes=intents.sizes,
        ops=intents.ops,
        issues=submits.copy() if record_device_times else None,
        completes=finishes if record_device_times else None,
        syncs=intents.syncs if record_sync_flags else None,
        name=name,
        metadata=metadata,
    )
