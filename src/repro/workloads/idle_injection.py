"""Ground-truth idle injection for verification (Section V-A).

The paper verifies the inference model by injecting known idle periods
into traces ("we inject :math:`T_{idle}` in random places with various
idle periods, ranging from 100 us to 100 ms ... injected
:math:`T_{idle}` accounts for 10% of the total I/O instructions") and
then checking whether the model detects them and recovers their length.

:func:`inject_idles` performs that transformation and returns both the
modified trace and an :class:`InjectionRecord` with the exact ground
truth, which :mod:`repro.metrics.verification` scores against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.trace import BlockTrace

__all__ = ["InjectionRecord", "inject_idles"]


@dataclass(frozen=True, slots=True)
class InjectionRecord:
    """Ground truth of one idle-injection pass.

    Attributes
    ----------
    gap_indices:
        Indices of the inter-arrival gaps that received extra idle
        (gap ``i`` sits between requests ``i`` and ``i + 1``).
    periods_us:
        The injected idle length per selected gap, aligned with
        ``gap_indices``.
    n_gaps:
        Total number of gaps in the trace (``len(trace) - 1``).
    """

    gap_indices: np.ndarray
    periods_us: np.ndarray
    n_gaps: int

    def __post_init__(self) -> None:
        if len(self.gap_indices) != len(self.periods_us):
            raise ValueError("indices and periods must align")

    def __len__(self) -> int:
        return len(self.gap_indices)

    def mask(self) -> np.ndarray:
        """Boolean gap mask: True where idle was injected."""
        out = np.zeros(self.n_gaps, dtype=bool)
        out[self.gap_indices] = True
        return out

    def period_of_gap(self) -> np.ndarray:
        """Injected period per gap (0 where nothing was injected)."""
        out = np.zeros(self.n_gaps, dtype=np.float64)
        out[self.gap_indices] = self.periods_us
        return out

    def total_injected_us(self) -> float:
        """Summed injected idle time."""
        return float(self.periods_us.sum())


def inject_idles(
    trace: BlockTrace,
    period_us: float | tuple[float, float],
    fraction: float = 0.10,
    seed: int = 7,
) -> tuple[BlockTrace, InjectionRecord]:
    """Insert extra idle time into a fraction of a trace's gaps.

    Parameters
    ----------
    trace:
        The trace to perturb (left untouched; a shifted copy is
        returned).
    period_us:
        Either a fixed idle period or a ``(low, high)`` range sampled
        log-uniformly per injection — the paper sweeps 100 µs to 100 ms.
    fraction:
        Fraction of gaps receiving an injection (paper: 10%).
    seed:
        RNG seed for site selection and period sampling.

    Every timestamp after an injected gap is shifted right by the
    injected amount, so the request pattern and all other gaps are
    preserved exactly.  Issue/completion stamps shift along with their
    requests (device behaviour is unchanged by host idleness).
    """
    if len(trace) < 2:
        raise ValueError("need at least two requests to inject idle time")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must lie in (0, 1]")
    n_gaps = len(trace) - 1
    rng = np.random.default_rng(seed)
    n_inject = max(1, int(round(fraction * n_gaps)))
    gap_indices = np.sort(rng.choice(n_gaps, size=n_inject, replace=False))
    if isinstance(period_us, tuple):
        lo, hi = period_us
        if lo <= 0 or hi < lo:
            raise ValueError("period range must satisfy 0 < low <= high")
        periods = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n_inject))
    else:
        if period_us <= 0:
            raise ValueError("injected period must be positive")
        periods = np.full(n_inject, float(period_us))
    # Cumulative shift: gap i pushes every request after index i.
    shift = np.zeros(len(trace), dtype=np.float64)
    np.add.at(shift, gap_indices + 1, periods)
    shift = np.cumsum(shift)
    shifted = BlockTrace(
        timestamps=trace.timestamps + shift,
        lbas=trace.lbas,
        sizes=trace.sizes,
        ops=trace.ops,
        issues=None if trace.issues is None else trace.issues + shift,
        completes=None if trace.completes is None else trace.completes + shift,
        syncs=trace.syncs,
        name=trace.name,
        metadata={**trace.metadata, "injected_idles": n_inject},
    )
    record = InjectionRecord(
        gap_indices=gap_indices, periods_us=periods, n_gaps=n_gaps
    )
    return shifted, record
