"""Materialise catalog traces through the binary trace store.

:func:`collect_trace_cached` is the cached front door to
``collect_trace(generate_intents(spec), device, ...)``: the trace is
keyed by everything that determines its bytes — the full workload-spec
parameters, the device fingerprint, and the collection flags — and
stored once in the content-keyed :class:`~repro.trace.io.cache.
TraceStore`.  Later calls (including calls from other worker
processes) load the columns straight from the ``.npz`` store instead
of re-running the Python-loop intent generation and collection.

The cache is exact, not approximate: generation is deterministic in
the spec (all seeds are spec fields) and collection is deterministic
in ``(intent stream, device fingerprint)``, so a hit reproduces the
miss bit-for-bit.  With the default store disabled (no
``$REPRO_TRACE_STORE_DIR`` / ``$REPRO_TRACE_STORE``), the function
degrades to plain generate-and-collect.
"""

from __future__ import annotations

import functools
import hashlib
from collections.abc import Callable
from pathlib import Path

from ..storage.device import StorageDevice
from ..trace.io.cache import TraceStore, get_default_store
from ..trace.trace import BlockTrace
from .generator import IntentStream, WorkloadSpec, collect_trace, generate_intents

__all__ = ["spec_key", "generation_fingerprint", "collect_trace_cached"]


@functools.cache
def generation_fingerprint() -> str:
    """Content hash of the code that determines a collected trace's bytes.

    The spec and device fingerprints capture *parameters*; this
    captures *semantics* — the generator and the device models.  It is
    folded into every cache key so a behaviour change in
    ``generate_intents``/``collect_trace`` or any storage model can
    never be papered over by a stale store entry, while edits to
    unrelated layers (figures, analysis, metrics) leave the store warm.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha1()
    for relative in ("workloads/generator.py", "trace/record.py", "trace/trace.py"):
        digest.update(relative.encode())
        digest.update((package_root / relative).read_bytes())
    for path in sorted((package_root / "storage").glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:12]


def spec_key(spec: WorkloadSpec) -> str:
    """Stable content description of a workload spec.

    ``WorkloadSpec`` and its nested ``SizeMix``/``IdleProcess`` are
    frozen dataclasses of primitives, so their ``repr`` enumerates
    every parameter (including every seed) deterministically.
    """
    return repr(spec)


def collect_trace_cached(
    spec: WorkloadSpec,
    device: StorageDevice,
    record_device_times: bool = True,
    record_sync_flags: bool = False,
    name: str | None = None,
    store: TraceStore | None = None,
    intents_factory: Callable[[], IntentStream] | None = None,
) -> BlockTrace:
    """Collect ``spec`` on ``device``, through the binary trace store.

    Parameters match :func:`~repro.workloads.generator.collect_trace`
    except that the intent stream is derived from ``spec`` (or from
    ``intents_factory``, which lets OLD/NEW pair construction share
    one generated stream across two devices while still skipping
    generation entirely when both collections hit the store).

    ``store`` defaults to the process-wide store from
    :func:`~repro.trace.io.cache.get_default_store`.
    """
    active = store if store is not None else get_default_store()
    key = active.key_for(
        "collect",
        generation_fingerprint(),
        spec_key(spec),
        device.fingerprint(),
        f"dev_times={record_device_times}",
        f"sync_flags={record_sync_flags}",
        f"name={name if name is not None else spec.name}",
    )

    def build() -> BlockTrace:
        intents = intents_factory() if intents_factory is not None else generate_intents(spec)
        return collect_trace(
            intents,
            device,
            record_device_times=record_device_times,
            record_sync_flags=record_sync_flags,
            name=name,
        )

    return active.get_or_build(key, build)
