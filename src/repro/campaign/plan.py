"""Deterministic expansion of a campaign spec into grid points.

:func:`expand` resolves the workload selectors, takes the cross-product
of the four axes in a fixed order (workloads, then devices, then
methods, then trace sizes), applies the spec's ``exclude`` filters and
``limit``, and returns a :class:`CampaignPlan` of :class:`RunPoint`\\ s.

Every point has a stable **run key** — a SHA-1 over the canonical JSON
of everything that determines its result (action, options, the point's
axis values, and the source-device description).  Run keys are the unit
of checkpointing: the engine records each completed key on disk, and a
resumed campaign recomputes exactly the keys that are missing.  The
campaign *name* is deliberately not part of the key, so renaming a spec
(or running two specs that share grid points into the same output
directory) reuses completed work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from ..workloads.catalog import get_spec, workload_names
from .spec import CampaignSpec, DeviceSpec

__all__ = ["CampaignPlan", "RunPoint", "expand", "resolve_workloads", "run_key"]


@dataclass(frozen=True)
class RunPoint:
    """One grid point: a (workload, device, method, size) combination."""

    workload: str
    device: DeviceSpec
    method: str
    n_requests: int

    def axis_values(self) -> dict[str, Any]:
        """The point's coordinates, keyed by axis name."""
        return {
            "workload": self.workload,
            "device": self.device.name,
            "method": self.method,
            "n_requests": self.n_requests,
        }


def resolve_workloads(selectors: tuple[str, ...]) -> tuple[str, ...]:
    """Expand workload selectors into concrete catalog names.

    ``"all"`` is the whole Table I catalog; ``"family:FIU"`` (or
    ``MSPS``/``MSRC``) one collection family; anything else must be a
    catalog name (validated eagerly so typos fail at planning time,
    not three shards into a run).  Order is preserved, duplicates are
    dropped.
    """
    out: list[str] = []
    for selector in selectors:
        if selector == "all":
            names: tuple[str, ...] = workload_names()
        elif selector.startswith("family:"):
            names = workload_names(selector.split(":", 1)[1])
        else:
            get_spec(selector)  # raises KeyError with the catalog listing
            names = (selector,)
        for name in names:
            if name not in out:
                out.append(name)
    return tuple(out)


def run_key(spec: CampaignSpec, point: RunPoint) -> str:
    """Stable content key for one grid point's result.

    Covers the action, the shared options, the source device, and the
    point's full description (including device parameters, not just
    its display name) — everything :func:`~repro.campaign.engine.
    run_point` reads.  Campaign name and description are excluded on
    purpose; see the module docstring.
    """
    payload = {
        "action": spec.action,
        "options": spec.options,
        "source_device": spec.source_device.to_dict(),
        "workload": point.workload,
        "device": point.device.to_dict(),
        "method": point.method,
        "n_requests": point.n_requests,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()[:20]


def _excluded(point: RunPoint, filters: tuple[dict[str, Any], ...]) -> bool:
    values = point.axis_values()
    for entry in filters:
        if entry and all(values.get(axis) == wanted for axis, wanted in entry.items()):
            return True
    return False


@dataclass(frozen=True)
class CampaignPlan:
    """The expanded, filtered grid of a campaign."""

    spec: CampaignSpec
    points: tuple[RunPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def keys(self) -> list[str]:
        """Run keys in plan order."""
        return [run_key(self.spec, point) for point in self.points]

    def shards(self, n_shards: int, indices: list[int] | None = None) -> list[list[int]]:
        """Split point indices into ``n_shards`` round-robin shards.

        ``indices`` restricts the split to a subset (the engine passes
        the still-pending points of a resumed campaign); the default is
        every point.  Round-robin (rather than contiguous chunks)
        spreads each workload's sizes across shards, which balances
        wall-clock when axis values have very different costs.  Empty
        shards are dropped.
        """
        if n_shards < 1:
            raise ValueError("need at least one shard")
        pool = list(range(len(self.points))) if indices is None else list(indices)
        shards = [pool[i::n_shards] for i in range(n_shards)]
        return [s for s in shards if s]

    def chunks(self, chunk_size: int, indices: list[int] | None = None) -> list[list[int]]:
        """Split point indices into contiguous chunks of ``chunk_size``.

        The work-stealing scheduler's unit of dispatch: unlike
        :meth:`shards`, which pre-assigns every point to a worker,
        chunks are queued and pulled by whichever worker frees up
        first, so one pathologically slow point delays only its own
        chunk.  Contiguous (rather than strided) slicing keeps each
        chunk's points adjacent in plan order, which preserves the
        per-worker memo locality of actions like ``method_gap`` whose
        fastest-varying axis benefits from neighbouring points landing
        on the same process.  Empty chunks cannot occur; the final
        chunk may be short.
        """
        if chunk_size < 1:
            raise ValueError("chunk size must be at least 1")
        pool = list(range(len(self.points))) if indices is None else list(indices)
        return [pool[i : i + chunk_size] for i in range(0, len(pool), chunk_size)]


def expand(spec: CampaignSpec) -> CampaignPlan:
    """Cross-product expansion with filters: the campaign's plan."""
    workloads = resolve_workloads(spec.workloads)
    points = [
        RunPoint(workload=w, device=d, method=m, n_requests=n)
        for w in workloads
        for d in spec.devices
        for m in spec.methods
        for n in spec.n_requests
    ]
    points = [p for p in points if not _excluded(p, spec.exclude)]
    if spec.limit is not None:
        points = points[: spec.limit]
    if not points:
        raise ValueError(f"campaign {spec.name!r} expands to zero grid points")
    return CampaignPlan(spec=spec, points=tuple(points))
