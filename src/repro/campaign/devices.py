"""Device registry: small parameter dicts to concrete simulators.

A campaign names its device grid declaratively; this module owns the
mapping from those descriptions to :class:`~repro.storage.device.
StorageDevice` instances.  Kinds:

``hdd``
    :class:`~repro.storage.hdd.HDDModel` — geometry knobs (``rpm``,
    ``avg_seek_ms``, ``track_to_track_ms``, ``sectors_per_track``,
    ``heads``, ``total_sectors``) plus ``write_back_cache_kb`` and
    ``seed``.
``flash``
    A single :class:`~repro.storage.flash.FlashSSD` — any
    :class:`~repro.storage.flash.FlashGeometry` field as a knob.
``flash_array``
    :class:`~repro.storage.array.FlashArray` — ``n_ssds``,
    ``stripe_kb``, plus per-member flash-geometry knobs.
``raid0``
    :class:`~repro.storage.raid.Raid0` over ``n`` members described by
    a nested ``member`` dict (any other kind); HDD members get
    distinct derived seeds so their rotational phases are independent.

Presets reproduce the evaluation-node factories of
:mod:`repro.experiments.nodes` parameter-for-parameter (``old-node``,
``new-node``, ``calibration-disk``), so a campaign device resolves to
a simulator with the *same fingerprint* as the hand-built node — which
is what lets the figure sweeps run through the campaign path while
hitting the same trace-store entries bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..storage import (
    PCIE3_X4,
    SATA_300,
    SATA_600,
    FlashArray,
    FlashGeometry,
    FlashSSD,
    HDDGeometry,
    HDDModel,
    Raid0,
    StorageDevice,
)

__all__ = ["DEVICE_KINDS", "DEVICE_PRESETS", "build_device"]

#: Named host-interface channels a device description may reference.
_CHANNELS = {"sata300": SATA_300, "sata600": SATA_600, "pcie3x4": PCIE3_X4}

_HDD_GEOMETRY_KEYS = (
    "rpm", "avg_seek_ms", "track_to_track_ms", "sectors_per_track", "heads", "total_sectors",
)
_FLASH_GEOMETRY_KEYS = (
    "channels", "dies_per_channel", "planes_per_die", "page_kb", "read_us",
    "program_us", "channel_mb_s", "write_buffer_kb", "buffer_write_us",
)

#: Preset device descriptions matching :mod:`repro.experiments.nodes`.
DEVICE_PRESETS: dict[str, dict[str, Any]] = {
    # The decade-old HDD collection node (old_node()).
    "old-node": {"kind": "hdd", "seed": 42},
    # The four-SSD all-flash target (new_node()).
    "new-node": {"kind": "flash_array", "n_ssds": 4, "stripe_kb": 128},
    # The enterprise disk of the T_movd calibration (calibration_disk()).
    "calibration-disk": {
        "kind": "hdd",
        "rpm": 7200.0,
        "avg_seek_ms": 8.9,
        "track_to_track_ms": 2.0,
        "sectors_per_track": 2000,
        "heads": 4,
        "seed": 7,
    },
}


def _channel(params: dict[str, Any], default: Any) -> Any:
    name = params.pop("channel", None)
    if name is None:
        return default
    try:
        return _CHANNELS[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown channel {name!r}; known channels: {sorted(_CHANNELS)}"
        ) from None


def _reject_unknown(kind: str, params: dict[str, Any]) -> None:
    if params:
        raise ValueError(f"unknown parameter(s) for device kind {kind!r}: {sorted(params)}")


def _build_hdd(params: dict[str, Any]) -> HDDModel:
    geometry_kwargs = {k: params.pop(k) for k in _HDD_GEOMETRY_KEYS if k in params}
    channel = _channel(params, SATA_300)
    cache_kb = int(params.pop("write_back_cache_kb", 0))
    seed = int(params.pop("seed", 42))
    _reject_unknown("hdd", params)
    return HDDModel(
        geometry=HDDGeometry(**geometry_kwargs),
        channel=channel,
        write_back_cache_kb=cache_kb,
        seed=seed,
    )


def _flash_geometry(params: dict[str, Any]) -> FlashGeometry:
    geometry_kwargs = {k: params.pop(k) for k in _FLASH_GEOMETRY_KEYS if k in params}
    return FlashGeometry(**geometry_kwargs)


def _build_flash(params: dict[str, Any]) -> FlashSSD:
    geometry = _flash_geometry(params)
    channel = _channel(params, PCIE3_X4)
    _reject_unknown("flash", params)
    return FlashSSD(geometry=geometry, channel=channel)


def _build_flash_array(params: dict[str, Any]) -> FlashArray:
    n_ssds = int(params.pop("n_ssds", 4))
    stripe_kb = int(params.pop("stripe_kb", 128))
    geometry = _flash_geometry(params)
    channel = _channel(params, PCIE3_X4)
    _reject_unknown("flash_array", params)
    return FlashArray(n_ssds=n_ssds, stripe_kb=stripe_kb, geometry=geometry, channel=channel)


def _build_raid0(params: dict[str, Any]) -> Raid0:
    n = int(params.pop("n", 2))
    stripe_kb = int(params.pop("stripe_kb", 64))
    member = dict(params.pop("member", {"kind": "hdd"}))
    _reject_unknown("raid0", params)
    if n <= 0:
        raise ValueError("raid0 needs at least one member")
    # Resolve a preset member (e.g. "old-node") down to its base kind
    # first, so the per-spindle seed derivation below sees "hdd" and
    # the members really do get independent rotational phases.
    member_kind = member.pop("kind", "hdd")
    if member_kind in DEVICE_PRESETS:
        preset = dict(DEVICE_PRESETS[member_kind])
        member_kind = preset.pop("kind")
        member = {**preset, **member}
    members: list[StorageDevice] = []
    for i in range(n):
        desc = dict(member)
        if member_kind == "hdd":
            # Distinct rotational-phase seeds per spindle.
            desc["seed"] = int(desc.get("seed", 42)) + i
        members.append(build_device(member_kind, desc))
    return Raid0(members, stripe_kb=stripe_kb)


DEVICE_KINDS = {
    "hdd": _build_hdd,
    "flash": _build_flash,
    "flash_array": _build_flash_array,
    "raid0": _build_raid0,
}


def build_device(kind: str, params: Mapping[str, Any] | None = None) -> StorageDevice:
    """Build a storage device from a ``(kind, params)`` description.

    ``kind`` may also be a preset name (``old-node``, ``new-node``,
    ``calibration-disk``), in which case ``params`` override the
    preset's defaults.  Unknown parameters raise ``ValueError`` — a
    typo in a campaign spec must not silently fall back to a default.
    """
    merged = dict(params or {})
    if kind in DEVICE_PRESETS:
        preset = dict(DEVICE_PRESETS[kind])
        preset_kind = preset.pop("kind")
        merged = {**preset, **merged}
        kind = preset_kind
    try:
        builder = DEVICE_KINDS[kind]
    except KeyError:
        known = sorted(DEVICE_KINDS) + sorted(DEVICE_PRESETS)
        raise ValueError(f"unknown device kind {kind!r}; known kinds: {known}") from None
    return builder(merged)
