"""Device registry: small parameter dicts to concrete simulators.

A campaign names its device grid declaratively; this module owns the
mapping from those descriptions to :class:`~repro.storage.device.
StorageDevice` instances.  Kinds:

``hdd``
    :class:`~repro.storage.hdd.HDDModel` — geometry knobs (``rpm``,
    ``avg_seek_ms``, ``track_to_track_ms``, ``sectors_per_track``,
    ``heads``, ``total_sectors``) plus ``write_back_cache_kb`` and
    ``seed``.
``flash``
    A single :class:`~repro.storage.flash.FlashSSD` — any
    :class:`~repro.storage.flash.FlashGeometry` field as a knob.
``flash_array``
    :class:`~repro.storage.array.FlashArray` — ``n_ssds``,
    ``stripe_kb``, plus per-member flash-geometry knobs.
``raid0`` / ``raid1``
    :class:`~repro.storage.raid.Raid0` / :class:`~repro.storage.raid.
    Raid1` over ``n`` members described by a nested ``member`` dict
    (any other kind); HDD members get distinct derived seeds so their
    rotational phases are independent.
``nvme_mq``
    :class:`~repro.storage.mq.MultiQueueDevice` — ``n_queues``
    round-robin FIFO submission queues fronting a flash die array
    (flash-geometry knobs apply).
``tiered``
    :class:`~repro.storage.tiered.TieredHybrid` — ``flash_mb`` of
    flash front tier (nested ``flash`` dict for its geometry) spilling
    to disk (nested ``hdd`` dict).
``smr``
    :class:`~repro.storage.smr.SMRModel` — HDD geometry knobs plus
    ``zone_mb`` and ``append_penalty_us``.

Fault parameters (:data:`FAULT_PARAMS`) degrade a device declaratively:
``latency_factor``/``latency_extra_us`` and ``stall_every``/``stall_us``
wrap any kind in the :mod:`~repro.storage.faults` service injectors;
``throttle_factor`` and ``offline_at``/``offline_channels`` reshape the
flash family (scaled channel bandwidth, channels taken offline
mid-trace via :class:`~repro.storage.faults.MidTraceSwitch`);
``failed_member``/``rebuild_every``/``rebuild_chunk`` turn a ``raid1``
into a :class:`~repro.storage.faults.DegradedRaid1`.  A fault parameter
on a kind that does not support it is rejected — at spec-validation
time, before anything runs.

Presets reproduce the evaluation-node factories of
:mod:`repro.experiments.nodes` parameter-for-parameter (``old-node``,
``new-node``, ``calibration-disk``), so a campaign device resolves to
a simulator with the *same fingerprint* as the hand-built node — which
is what lets the figure sweeps run through the campaign path while
hitting the same trace-store entries bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import replace
from typing import Any

from ..storage import (
    PCIE3_X4,
    SATA_300,
    SATA_600,
    DegradedRaid1,
    FlashArray,
    FlashGeometry,
    FlashSSD,
    HDDGeometry,
    HDDModel,
    LatencyInflation,
    MidTraceSwitch,
    MultiQueueDevice,
    Raid0,
    Raid1,
    SMRModel,
    StorageDevice,
    TieredHybrid,
    TransientStalls,
)

__all__ = [
    "DEVICE_KINDS",
    "DEVICE_PRESETS",
    "FAULT_PARAMS",
    "build_device",
    "device_zoo",
    "fault_params_for",
    "valid_params_for",
    "validate_device_description",
]

#: Named host-interface channels a device description may reference.
_CHANNELS = {"sata300": SATA_300, "sata600": SATA_600, "pcie3x4": PCIE3_X4}

_HDD_GEOMETRY_KEYS = (
    "rpm", "avg_seek_ms", "track_to_track_ms", "sectors_per_track", "heads", "total_sectors",
)
_FLASH_GEOMETRY_KEYS = (
    "channels", "dies_per_channel", "planes_per_die", "page_kb", "read_us",
    "program_us", "channel_mb_s", "write_buffer_kb", "buffer_write_us",
)

#: Non-fault constructor knobs per registry kind (error messages and
#: spec validation introspect this).
_KIND_PARAMS: dict[str, tuple[str, ...]] = {
    "hdd": _HDD_GEOMETRY_KEYS + ("channel", "write_back_cache_kb", "seed"),
    "flash": _FLASH_GEOMETRY_KEYS + ("channel",),
    "flash_array": ("n_ssds", "stripe_kb") + _FLASH_GEOMETRY_KEYS + ("channel",),
    "raid0": ("n", "stripe_kb", "member"),
    "raid1": ("n", "member"),
    "nvme_mq": ("n_queues",) + _FLASH_GEOMETRY_KEYS + ("channel",),
    "tiered": ("flash_mb", "flash", "hdd", "channel"),
    "smr": _HDD_GEOMETRY_KEYS + ("channel", "seed", "zone_mb", "append_penalty_us"),
}

_ALL_KINDS = frozenset(_KIND_PARAMS)
_FLASH_FAMILY = frozenset({"flash", "flash_array", "nvme_mq"})

#: Fault parameter -> the registry kinds that understand it.  The
#: service injectors wrap any device; the structural faults need the
#: matching model family.
FAULT_PARAMS: dict[str, frozenset[str]] = {
    "latency_factor": _ALL_KINDS,
    "latency_extra_us": _ALL_KINDS,
    "stall_every": _ALL_KINDS,
    "stall_us": _ALL_KINDS,
    "throttle_factor": _FLASH_FAMILY,
    "offline_at": _FLASH_FAMILY,
    "offline_channels": _FLASH_FAMILY,
    "failed_member": frozenset({"raid1"}),
    "rebuild_every": frozenset({"raid1"}),
    "rebuild_chunk": frozenset({"raid1"}),
}

#: Preset device descriptions matching :mod:`repro.experiments.nodes`.
DEVICE_PRESETS: dict[str, dict[str, Any]] = {
    # The decade-old HDD collection node (old_node()).
    "old-node": {"kind": "hdd", "seed": 42},
    # The four-SSD all-flash target (new_node()).
    "new-node": {"kind": "flash_array", "n_ssds": 4, "stripe_kb": 128},
    # The enterprise disk of the T_movd calibration (calibration_disk()).
    "calibration-disk": {
        "kind": "hdd",
        "rpm": 7200.0,
        "avg_seek_ms": 8.9,
        "track_to_track_ms": 2.0,
        "sectors_per_track": 2000,
        "heads": 4,
        "seed": 7,
    },
}


def _channel(params: dict[str, Any], default: Any) -> Any:
    name = params.pop("channel", None)
    if name is None:
        return default
    try:
        return _CHANNELS[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown channel {name!r}; known channels: {sorted(_CHANNELS)}"
        ) from None


def valid_params_for(kind: str) -> list[str]:
    """Every parameter name device kind ``kind`` accepts (incl. faults)."""
    if kind not in _KIND_PARAMS:
        raise ValueError(_unknown_kind_message(kind))
    faults = [name for name, kinds in FAULT_PARAMS.items() if kind in kinds]
    return sorted(set(_KIND_PARAMS[kind]) | set(faults))


def _reject_unknown(kind: str, params: dict[str, Any]) -> None:
    if params:
        raise ValueError(
            f"unknown parameter(s) for device kind {kind!r}: {sorted(params)}; "
            f"valid parameters: {valid_params_for(kind)}"
        )


def _unknown_kind_message(kind: str) -> str:
    known = sorted(_KIND_PARAMS) + sorted(DEVICE_PRESETS)
    return f"unknown device kind {kind!r}; known kinds: {known}"


# ----------------------------------------------------------------------
# fault-parameter plumbing
# ----------------------------------------------------------------------


def _pop_wrapper_faults(params: dict[str, Any]) -> dict[str, Any]:
    """Split the kind-agnostic service-injector knobs out of ``params``."""
    keys = ("latency_factor", "latency_extra_us", "stall_every", "stall_us")
    return {k: params.pop(k) for k in keys if k in params}


def _apply_wrapper_faults(device: StorageDevice, fault: dict[str, Any]) -> StorageDevice:
    """Wrap ``device`` in the requested service injectors (inner first)."""
    if "latency_factor" in fault or "latency_extra_us" in fault:
        device = LatencyInflation(
            device,
            factor=float(fault.get("latency_factor", 1.0)),
            extra_us=float(fault.get("latency_extra_us", 0.0)),
        )
    if "stall_every" in fault or "stall_us" in fault:
        if "stall_every" not in fault:
            raise ValueError("'stall_us' requires 'stall_every'")
        device = TransientStalls(
            device,
            every=int(fault["stall_every"]),
            stall_us=float(fault.get("stall_us", 1000.0)),
        )
    return device


def _pop_flash_faults(kind: str, params: dict[str, Any]) -> dict[str, Any]:
    """Split the flash-family structural fault knobs out of ``params``."""
    fault: dict[str, Any] = {}
    if "throttle_factor" in params:
        fault["throttle"] = float(params.pop("throttle_factor"))
        if fault["throttle"] < 1.0:
            raise ValueError("throttle_factor must be >= 1")
    if "offline_at" in params:
        fault["offline_at"] = int(params.pop("offline_at"))
        if fault["offline_at"] < 0:
            raise ValueError("offline_at must be a non-negative request index")
    if "offline_channels" in params:
        fault["offline_channels"] = int(params.pop("offline_channels"))
        if "offline_at" not in fault:
            raise ValueError(f"{kind}: 'offline_channels' requires 'offline_at'")
    return fault


def _throttled_geometry(geometry: FlashGeometry, fault: dict[str, Any]) -> FlashGeometry:
    if "throttle" not in fault:
        return geometry
    return replace(geometry, channel_mb_s=geometry.channel_mb_s / fault["throttle"])


def _offline_geometry(geometry: FlashGeometry, fault: dict[str, Any]) -> FlashGeometry:
    down = int(fault.get("offline_channels", 1))
    if not 1 <= down < geometry.channels:
        raise ValueError(
            f"offline_channels must be in [1, {geometry.channels - 1}] "
            f"for a {geometry.channels}-channel geometry, got {down}"
        )
    return replace(geometry, channels=geometry.channels - down)


def _with_offline_switch(make, geometry: FlashGeometry, fault: dict[str, Any]):
    """``make(geometry)`` device, switched to a reduced-channel twin."""
    device = make(geometry)
    if "offline_at" not in fault:
        return device
    degraded = make(_offline_geometry(geometry, fault))
    return MidTraceSwitch(device, degraded, at_request=fault["offline_at"])


# ----------------------------------------------------------------------
# per-kind builders
# ----------------------------------------------------------------------


def _build_hdd(params: dict[str, Any]) -> HDDModel:
    geometry_kwargs = {k: params.pop(k) for k in _HDD_GEOMETRY_KEYS if k in params}
    channel = _channel(params, SATA_300)
    cache_kb = int(params.pop("write_back_cache_kb", 0))
    seed = int(params.pop("seed", 42))
    _reject_unknown("hdd", params)
    return HDDModel(
        geometry=HDDGeometry(**geometry_kwargs),
        channel=channel,
        write_back_cache_kb=cache_kb,
        seed=seed,
    )


def _flash_geometry(params: dict[str, Any]) -> FlashGeometry:
    geometry_kwargs = {k: params.pop(k) for k in _FLASH_GEOMETRY_KEYS if k in params}
    return FlashGeometry(**geometry_kwargs)


def _build_flash(params: dict[str, Any]) -> StorageDevice:
    fault = _pop_flash_faults("flash", params)
    geometry = _throttled_geometry(_flash_geometry(params), fault)
    channel = _channel(params, PCIE3_X4)
    _reject_unknown("flash", params)
    return _with_offline_switch(
        lambda g: FlashSSD(geometry=g, channel=channel), geometry, fault
    )


def _build_flash_array(params: dict[str, Any]) -> StorageDevice:
    fault = _pop_flash_faults("flash_array", params)
    n_ssds = int(params.pop("n_ssds", 4))
    stripe_kb = int(params.pop("stripe_kb", 128))
    geometry = _throttled_geometry(_flash_geometry(params), fault)
    channel = _channel(params, PCIE3_X4)
    _reject_unknown("flash_array", params)
    return _with_offline_switch(
        lambda g: FlashArray(n_ssds=n_ssds, stripe_kb=stripe_kb, geometry=g, channel=channel),
        geometry,
        fault,
    )


def _build_nvme_mq(params: dict[str, Any]) -> MultiQueueDevice:
    fault = _pop_flash_faults("nvme_mq", params)
    n_queues = int(params.pop("n_queues", 8))
    geometry = _throttled_geometry(_flash_geometry(params), fault)
    channel = _channel(params, PCIE3_X4)
    _reject_unknown("nvme_mq", params)
    # The mid-trace switch sits *inside* the queue front-end so the
    # per-queue FIFO gate spans the reconfiguration — which is what
    # keeps completions within a queue ordered across the fault.
    inner = _with_offline_switch(
        lambda g: FlashSSD(geometry=g, channel=channel), geometry, fault
    )
    return MultiQueueDevice(inner, n_queues=n_queues)


def _resolve_member(member: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    """Resolve a nested member description's preset down to a base kind."""
    member_kind = member.pop("kind", "hdd")
    if member_kind in DEVICE_PRESETS:
        preset = dict(DEVICE_PRESETS[member_kind])
        member_kind = preset.pop("kind")
        member = {**preset, **member}
    return member_kind, member


def _build_members(member_kind: str, member: dict[str, Any], n: int) -> list[StorageDevice]:
    """``n`` member devices; HDD members get derived per-spindle seeds."""
    members: list[StorageDevice] = []
    for i in range(n):
        desc = dict(member)
        if member_kind in ("hdd", "smr"):
            # Distinct rotational-phase seeds per spindle.
            desc["seed"] = int(desc.get("seed", 42)) + i
        members.append(build_device(member_kind, desc))
    return members


def _build_raid0(params: dict[str, Any]) -> Raid0:
    n = int(params.pop("n", 2))
    stripe_kb = int(params.pop("stripe_kb", 64))
    member = dict(params.pop("member", {"kind": "hdd"}))
    _reject_unknown("raid0", params)
    if n <= 0:
        raise ValueError("raid0 needs at least one member")
    member_kind, member = _resolve_member(member)
    return Raid0(_build_members(member_kind, member, n), stripe_kb=stripe_kb)


def _build_raid1(params: dict[str, Any]) -> StorageDevice:
    n = int(params.pop("n", 2))
    member = dict(params.pop("member", {"kind": "hdd"}))
    failed = params.pop("failed_member", None)
    rebuild_every = int(params.pop("rebuild_every", 0))
    rebuild_chunk = int(params.pop("rebuild_chunk", 128))
    _reject_unknown("raid1", params)
    if n < 2:
        raise ValueError("a mirror needs at least two members")
    member_kind, member = _resolve_member(member)
    members = _build_members(member_kind, member, n)
    if failed is None:
        if rebuild_every:
            raise ValueError("'rebuild_every' requires 'failed_member'")
        return Raid1(members)
    return DegradedRaid1(
        members,
        failed_index=int(failed),
        rebuild_every=rebuild_every,
        rebuild_chunk=rebuild_chunk,
    )


def _build_tiered(params: dict[str, Any]) -> TieredHybrid:
    flash_mb = int(params.pop("flash_mb", 1024))
    flash_desc = dict(params.pop("flash", {}) or {})
    hdd_desc = dict(params.pop("hdd", {}) or {})
    channel = _channel(params, PCIE3_X4)
    _reject_unknown("tiered", params)
    if flash_mb <= 0:
        raise ValueError("tiered flash capacity must be positive")
    # Tiers go through build_device so nested descriptions may carry
    # their own fault parameters (e.g. a throttled flash front tier).
    return TieredHybrid(
        build_device("flash", flash_desc),
        build_device("hdd", hdd_desc),
        flash_sectors=flash_mb * 2048,
        channel=channel,
    )


def _build_smr(params: dict[str, Any]) -> SMRModel:
    geometry_kwargs = {k: params.pop(k) for k in _HDD_GEOMETRY_KEYS if k in params}
    channel = _channel(params, SATA_300)
    seed = int(params.pop("seed", 42))
    zone_mb = int(params.pop("zone_mb", 256))
    penalty = float(params.pop("append_penalty_us", 15000.0))
    _reject_unknown("smr", params)
    return SMRModel(
        geometry=HDDGeometry(**geometry_kwargs),
        channel=channel,
        seed=seed,
        zone_mb=zone_mb,
        append_penalty_us=penalty,
    )


DEVICE_KINDS = {
    "hdd": _build_hdd,
    "flash": _build_flash,
    "flash_array": _build_flash_array,
    "raid0": _build_raid0,
    "raid1": _build_raid1,
    "nvme_mq": _build_nvme_mq,
    "tiered": _build_tiered,
    "smr": _build_smr,
}


def _resolve_kind(kind: str, params: Mapping[str, Any] | None) -> tuple[str, dict[str, Any]]:
    """Resolve presets and validate the kind name."""
    merged = dict(params or {})
    if kind in DEVICE_PRESETS:
        preset = dict(DEVICE_PRESETS[kind])
        preset_kind = preset.pop("kind")
        merged = {**preset, **merged}
        kind = preset_kind
    if kind not in DEVICE_KINDS:
        raise ValueError(_unknown_kind_message(kind))
    return kind, merged


def fault_params_for(kind: str) -> list[str]:
    """Fault parameters device kind (or preset) ``kind`` supports."""
    kind, __ = _resolve_kind(kind, {})
    return sorted(name for name, kinds in FAULT_PARAMS.items() if kind in kinds)


def validate_device_description(kind: str, params: Mapping[str, Any] | None = None) -> None:
    """Cheap validation of a ``(kind, params)`` description.

    Raises ``ValueError`` for an unknown kind or for a fault parameter
    the kind does not support — without building the device, so
    campaign specs can be rejected at load time rather than mid-sweep.
    """
    kind, merged = _resolve_kind(kind, params)
    for name in merged:
        kinds = FAULT_PARAMS.get(name)
        if kinds is not None and kind not in kinds:
            raise ValueError(
                f"device kind {kind!r} does not support fault parameter {name!r}; "
                f"supported by kinds: {sorted(kinds)}"
            )


def build_device(kind: str, params: Mapping[str, Any] | None = None) -> StorageDevice:
    """Build a storage device from a ``(kind, params)`` description.

    ``kind`` may also be a preset name (``old-node``, ``new-node``,
    ``calibration-disk``), in which case ``params`` override the
    preset's defaults.  Unknown parameters raise ``ValueError`` — a
    typo in a campaign spec must not silently fall back to a default.
    """
    kind, merged = _resolve_kind(kind, params)
    validate_device_description(kind, merged)
    wrapper_fault = _pop_wrapper_faults(merged)
    device = DEVICE_KINDS[kind](merged)
    return _apply_wrapper_faults(device, wrapper_fault)


def device_zoo() -> dict[str, dict[str, Any]]:
    """Small, fast descriptions covering every registry kind.

    Keys are zoo entry names; values are ``(kind, params)`` description
    dicts (``kind`` plus knobs, the :class:`~repro.campaign.spec.
    DeviceSpec` flat form).  The zoo spans every kind in
    :data:`DEVICE_KINDS` — healthy and degraded — with deliberately
    tiny geometries, and the differential identity harness
    (`tests/test_device_zoo_identity.py`) iterates it, so adding a kind
    here (the coverage test fails until it appears) automatically locks
    the new model into the scalar/columnar bit-identity matrix.
    """
    tiny_flash = {
        "channels": 3,
        "dies_per_channel": 2,
        "planes_per_die": 2,
        "page_kb": 4,
        "write_buffer_kb": 32,
    }
    return {
        # -- healthy shapes -------------------------------------------
        "hdd": {"kind": "hdd", "seed": 3},
        "hdd-wbc": {"kind": "hdd", "seed": 4, "write_back_cache_kb": 256},
        "flash": {"kind": "flash", **tiny_flash},
        "flash-nobuf": {"kind": "flash", **tiny_flash, "write_buffer_kb": 0},
        "flash-array": {"kind": "flash_array", "n_ssds": 2, "stripe_kb": 16, **tiny_flash},
        "raid0": {"kind": "raid0", "n": 2, "stripe_kb": 16, "member": {"kind": "hdd"}},
        "raid1": {"kind": "raid1", "n": 2, "member": {"kind": "hdd"}},
        "nvme-mq": {"kind": "nvme_mq", "n_queues": 3, **tiny_flash},
        "tiered": {
            "kind": "tiered",
            "flash_mb": 4,
            "flash": dict(tiny_flash),
            "hdd": {"seed": 5},
        },
        "smr": {"kind": "smr", "zone_mb": 1, "append_penalty_us": 4000.0, "seed": 9},
        # -- degraded shapes ------------------------------------------
        "flash-slow": {"kind": "flash", **tiny_flash, "latency_factor": 2.5, "latency_extra_us": 40.0},
        "flash-stall": {"kind": "flash", **tiny_flash, "stall_every": 7, "stall_us": 1500.0},
        "flash-throttled": {"kind": "flash", **tiny_flash, "throttle_factor": 4.0},
        "flash-offline": {"kind": "flash", **tiny_flash, "offline_at": 24, "offline_channels": 1},
        "array-offline": {
            "kind": "flash_array", "n_ssds": 2, "stripe_kb": 16, **tiny_flash,
            "offline_at": 16, "offline_channels": 1,
        },
        "nvme-mq-offline": {
            "kind": "nvme_mq", "n_queues": 3, **tiny_flash,
            "offline_at": 20, "offline_channels": 1,
        },
        "raid1-failed": {"kind": "raid1", "n": 2, "member": {"kind": "hdd"}, "failed_member": 0},
        "raid1-rebuild": {
            "kind": "raid1", "n": 3, "member": {"kind": "hdd"},
            "failed_member": 1, "rebuild_every": 8, "rebuild_chunk": 64,
        },
        "raid0-slow": {
            "kind": "raid0", "n": 2, "stripe_kb": 16, "member": {"kind": "hdd"},
            "latency_extra_us": 120.0,
        },
        "smr-slow": {"kind": "smr", "zone_mb": 1, "seed": 9, "latency_factor": 1.5},
        "tiered-stall": {
            "kind": "tiered", "flash_mb": 4, "flash": dict(tiny_flash), "hdd": {"seed": 5},
            "stall_every": 5, "stall_us": 900.0,
        },
    }
