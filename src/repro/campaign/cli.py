"""The ``repro-campaign`` command line interface.

Three subcommands over the campaign engine:

``repro-campaign run <spec> [--out-dir D] [--jobs N] [--limit N] ...``
    Execute a campaign spec (YAML/JSON), sharded over the process
    pool, checkpointing every completed run key under
    ``<out_dir>/runs/``.  Re-running the same command after an
    interruption resumes from the checkpoints; the final table lands
    in ``results.npz``/``results.csv``/``report.md``.

``repro-campaign plan <spec> [--limit N]``
    Print the expanded grid (one line per point with its run key)
    without executing anything — the dry-run for new specs.

``repro-campaign report <out_dir> [--format md|csv]``
    Re-render the aggregated table of a finished (or partial) campaign
    directory.

Exit status is non-zero on bad specs, unknown paths, or a grid point
failure (already-completed points stay checkpointed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..perf import PerfRecorder
from .engine import CHECKPOINT_FORMATS, SCHEDULERS, CampaignEngine, _scan_checkpoints
from .plan import expand, run_key
from .results import ResultsTable
from .spec import CampaignSpec, load_spec
from .supervise import ChaosSpec, Resilience, RetryPolicy

__all__ = ["main"]


def default_out_dir(spec: CampaignSpec) -> Path:
    """``campaign-out/<name>`` under the current working directory."""
    return Path("campaign-out") / spec.name


def _resilience_from_args(args: argparse.Namespace) -> "Resilience | None":
    """Build the engine's fault policy from the run flags.

    ``None`` (no resilience flags given) keeps the historical
    raise-through contract.  ``--chaos`` forces the supervised
    scheduler's worker isolation, so it implies a policy even when the
    retry knobs are left at their defaults.
    """
    if (
        args.retries is None
        and args.point_timeout is None
        and args.chaos is None
    ):
        return None
    retry = RetryPolicy() if args.retries is None else RetryPolicy(max_attempts=args.retries)
    return Resilience(
        retry=retry,
        point_timeout_s=args.point_timeout,
        chaos=ChaosSpec.parse(args.chaos) if args.chaos else None,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    if args.limit is not None:
        spec = spec.with_limit(args.limit)
    out_dir = Path(args.out_dir) if args.out_dir else default_out_dir(spec)
    perf = PerfRecorder(enabled=args.perf)
    resilience = _resilience_from_args(args)
    scheduler = args.scheduler
    if args.chaos and scheduler != "supervised":
        # Chaos kills workers; only the supervised scheduler survives
        # that, so injecting into a bare pool would just crash the run.
        scheduler = "supervised"
        print("[campaign] --chaos forces --scheduler supervised", file=sys.stderr)
    engine = CampaignEngine(
        spec,
        out_dir=out_dir,
        jobs=args.jobs,
        use_trace_store=not args.no_trace_store,
        trace_store_dir=args.trace_store_dir,
        resume=not args.no_resume,
        checkpoint_format=args.checkpoint_format,
        scheduler=scheduler,
        lake=args.lake,
        perf=perf,
        resilience=resilience,
        hang_timeout_s=args.hang_timeout,
        respawn_budget=args.respawn_budget,
    )
    result = engine.run(log=None if args.quiet else sys.stderr)
    if args.perf:
        for line in perf.summary_lines():
            print(f"[perf] {line}", file=sys.stderr)
    lake_note = f", {result.n_lake_hits} from lake" if args.lake else ""
    print(
        f"campaign {spec.name!r}: {len(result.plan)} point(s) "
        f"({result.n_resumed} resumed, {result.n_computed} computed{lake_note})"
    )
    if result.n_quarantined:
        print(
            f"quarantined: {result.n_quarantined} point(s) exhausted their "
            f"retry budget (rows carry status/error/attempts)"
        )
    if result.n_degraded:
        print(f"degraded: {result.n_degraded} absorbed failure(s), see {out_dir / 'degraded.log'}")
    print(f"results: {out_dir / 'results.csv'}")
    print(f"report:  {out_dir / 'report.md'}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    if args.limit is not None:
        spec = spec.with_limit(args.limit)
    plan = expand(spec)
    print(f"campaign {spec.name!r} [{spec.action}]: {len(plan)} point(s)")
    for point in plan.points:
        key = run_key(spec, point)
        print(
            f"  {key}  workload={point.workload} device={point.device.name} "
            f"method={point.method} n={point.n_requests}"
        )
    return 0


def _partial_table(out_dir: Path) -> tuple[ResultsTable, int, int] | None:
    """Rebuild a table from an interrupted campaign's checkpoints.

    Needs the ``spec.json`` the engine writes when work starts; returns
    ``(table, completed, total)`` in plan order, or ``None`` when the
    directory holds no usable campaign state.
    """
    spec_path = out_dir / "spec.json"
    if not spec_path.exists():
        return None
    spec = CampaignSpec.from_dict(json.loads(spec_path.read_text(encoding="utf-8")))
    plan = expand(spec)
    completed = _scan_checkpoints(out_dir, plan.keys())
    rows = [completed[key] for key in plan.keys() if key in completed]
    return ResultsTable.from_rows(rows), len(rows), len(plan)


def _cmd_report(args: argparse.Namespace) -> int:
    import os
    import zipfile

    out_dir = Path(args.out_dir)
    table_path = out_dir / "results.npz"
    table = None
    if table_path.exists():
        try:
            table = ResultsTable.load_npz(table_path)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            # A truncated/corrupt aggregate is not fatal: quarantine it
            # and rebuild the table from the per-point checkpoints (the
            # durable source of truth).
            bad = table_path.with_name(table_path.name + ".bad")
            try:
                os.replace(table_path, bad)
                note = f"moved to {bad.name}"
            except OSError:
                note = "left in place"
            print(
                f"warning: corrupt results.npz ({type(exc).__name__}: {exc}); "
                f"{note}, rebuilding from checkpoints",
                file=sys.stderr,
            )
    if table is None:
        partial = _partial_table(out_dir)
        if partial is None or len(partial[0]) == 0:
            print(f"no campaign results under {out_dir}", file=sys.stderr)
            return 1
        table, completed, total = partial
        print(
            f"partial campaign: {completed}/{total} point(s) checkpointed "
            f"(re-run `repro-campaign run` to finish)",
            file=sys.stderr,
        )
    if args.format == "csv":
        print(table.to_csv(), end="")
    else:
        print(table.to_markdown())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Declarative device x workload sweep campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign spec (resumes from checkpoints)")
    run.add_argument("spec", help="path to a .yaml/.json campaign spec")
    run.add_argument("--out-dir", default=None, help="output directory (default campaign-out/<name>)")
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1: inline)")
    run.add_argument("--limit", type=int, default=None, help="cap the grid at N points (smoke runs)")
    run.add_argument("--no-resume", action="store_true", help="ignore existing checkpoints")
    run.add_argument(
        "--no-trace-store", action="store_true",
        help="regenerate traces in memory; skip the binary trace store",
    )
    run.add_argument(
        "--trace-store-dir", default=None,
        help="binary trace-store directory (default: $REPRO_TRACE_STORE_DIR or ~/.cache)",
    )
    run.add_argument(
        "--checkpoint-format", choices=CHECKPOINT_FORMATS, default="segments",
        help="per-shard append-only segments (default) or one JSON file per point",
    )
    run.add_argument(
        "--scheduler", choices=SCHEDULERS, default="stealing",
        help="dynamic chunk queue pulled by idle workers (default), static "
        "round-robin shards, or supervised (heartbeats, lease reclaim, respawn)",
    )
    run.add_argument(
        "--lake", default=None,
        help="result-lake catalog database: skip points any prior campaign "
        "computed and record new ones (see repro-lake)",
    )
    run.add_argument(
        "--perf", action="store_true",
        help="print plan/resume/compute/aggregate stage timings to stderr",
    )
    run.add_argument(
        "--retries", type=int, default=None,
        help="total attempts per point before quarantine (enables the "
        "retry/backoff/quarantine policy; default: off, failures raise)",
    )
    run.add_argument(
        "--point-timeout", type=float, default=None,
        help="per-point wall-clock budget in seconds (a hung point raises "
        "a transient timeout and retries; enables the retry policy)",
    )
    run.add_argument(
        "--hang-timeout", type=float, default=30.0,
        help="supervised scheduler: heartbeat staleness (s) before a "
        "worker is declared hung and its lease reclaimed (default 30)",
    )
    run.add_argument(
        "--respawn-budget", type=int, default=None,
        help="supervised scheduler: total replacement workers (default 2x jobs)",
    )
    run.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. 'kill@3,hang@5,exc@2,"
        "poison@7,corrupt@4' (kind@plan-index); forces --scheduler supervised",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress logging")
    run.set_defaults(func=_cmd_run)

    plan = sub.add_parser("plan", help="print the expanded grid without running it")
    plan.add_argument("spec", help="path to a .yaml/.json campaign spec")
    plan.add_argument("--limit", type=int, default=None, help="cap the grid at N points")
    plan.set_defaults(func=_cmd_plan)

    report = sub.add_parser("report", help="re-render a campaign directory's results table")
    report.add_argument("out_dir", help="campaign output directory")
    report.add_argument("--format", choices=("md", "csv"), default="md")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the ``repro-campaign`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
