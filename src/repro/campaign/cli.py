"""The ``repro-campaign`` command line interface.

Three subcommands over the campaign engine:

``repro-campaign run <spec> [--out-dir D] [--jobs N] [--limit N] ...``
    Execute a campaign spec (YAML/JSON), sharded over the process
    pool, checkpointing every completed run key under
    ``<out_dir>/runs/``.  Re-running the same command after an
    interruption resumes from the checkpoints; the final table lands
    in ``results.npz``/``results.csv``/``report.md``.

``repro-campaign plan <spec> [--limit N]``
    Print the expanded grid (one line per point with its run key)
    without executing anything — the dry-run for new specs.

``repro-campaign report <out_dir> [--format md|csv]``
    Re-render the aggregated table of a finished (or partial) campaign
    directory.

Exit status is non-zero on bad specs, unknown paths, or a grid point
failure (already-completed points stay checkpointed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..perf import PerfRecorder
from .engine import CHECKPOINT_FORMATS, SCHEDULERS, CampaignEngine, _scan_checkpoints
from .plan import expand, run_key
from .results import ResultsTable
from .spec import CampaignSpec, load_spec

__all__ = ["main"]


def default_out_dir(spec: CampaignSpec) -> Path:
    """``campaign-out/<name>`` under the current working directory."""
    return Path("campaign-out") / spec.name


def _cmd_run(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    if args.limit is not None:
        spec = spec.with_limit(args.limit)
    out_dir = Path(args.out_dir) if args.out_dir else default_out_dir(spec)
    perf = PerfRecorder(enabled=args.perf)
    engine = CampaignEngine(
        spec,
        out_dir=out_dir,
        jobs=args.jobs,
        use_trace_store=not args.no_trace_store,
        trace_store_dir=args.trace_store_dir,
        resume=not args.no_resume,
        checkpoint_format=args.checkpoint_format,
        scheduler=args.scheduler,
        lake=args.lake,
        perf=perf,
    )
    result = engine.run(log=None if args.quiet else sys.stderr)
    if args.perf:
        for line in perf.summary_lines():
            print(f"[perf] {line}", file=sys.stderr)
    lake_note = f", {result.n_lake_hits} from lake" if args.lake else ""
    print(
        f"campaign {spec.name!r}: {len(result.plan)} point(s) "
        f"({result.n_resumed} resumed, {result.n_computed} computed{lake_note})"
    )
    print(f"results: {out_dir / 'results.csv'}")
    print(f"report:  {out_dir / 'report.md'}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    if args.limit is not None:
        spec = spec.with_limit(args.limit)
    plan = expand(spec)
    print(f"campaign {spec.name!r} [{spec.action}]: {len(plan)} point(s)")
    for point in plan.points:
        key = run_key(spec, point)
        print(
            f"  {key}  workload={point.workload} device={point.device.name} "
            f"method={point.method} n={point.n_requests}"
        )
    return 0


def _partial_table(out_dir: Path) -> tuple[ResultsTable, int, int] | None:
    """Rebuild a table from an interrupted campaign's checkpoints.

    Needs the ``spec.json`` the engine writes when work starts; returns
    ``(table, completed, total)`` in plan order, or ``None`` when the
    directory holds no usable campaign state.
    """
    spec_path = out_dir / "spec.json"
    if not spec_path.exists():
        return None
    spec = CampaignSpec.from_dict(json.loads(spec_path.read_text(encoding="utf-8")))
    plan = expand(spec)
    completed = _scan_checkpoints(out_dir, plan.keys())
    rows = [completed[key] for key in plan.keys() if key in completed]
    return ResultsTable.from_rows(rows), len(rows), len(plan)


def _cmd_report(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    table_path = out_dir / "results.npz"
    if table_path.exists():
        table = ResultsTable.load_npz(table_path)
    else:
        partial = _partial_table(out_dir)
        if partial is None or len(partial[0]) == 0:
            print(f"no campaign results under {out_dir}", file=sys.stderr)
            return 1
        table, completed, total = partial
        print(
            f"partial campaign: {completed}/{total} point(s) checkpointed "
            f"(re-run `repro-campaign run` to finish)",
            file=sys.stderr,
        )
    if args.format == "csv":
        print(table.to_csv(), end="")
    else:
        print(table.to_markdown())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Declarative device x workload sweep campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a campaign spec (resumes from checkpoints)")
    run.add_argument("spec", help="path to a .yaml/.json campaign spec")
    run.add_argument("--out-dir", default=None, help="output directory (default campaign-out/<name>)")
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1: inline)")
    run.add_argument("--limit", type=int, default=None, help="cap the grid at N points (smoke runs)")
    run.add_argument("--no-resume", action="store_true", help="ignore existing checkpoints")
    run.add_argument(
        "--no-trace-store", action="store_true",
        help="regenerate traces in memory; skip the binary trace store",
    )
    run.add_argument(
        "--trace-store-dir", default=None,
        help="binary trace-store directory (default: $REPRO_TRACE_STORE_DIR or ~/.cache)",
    )
    run.add_argument(
        "--checkpoint-format", choices=CHECKPOINT_FORMATS, default="segments",
        help="per-shard append-only segments (default) or one JSON file per point",
    )
    run.add_argument(
        "--scheduler", choices=SCHEDULERS, default="stealing",
        help="dynamic chunk queue pulled by idle workers (default) or static round-robin shards",
    )
    run.add_argument(
        "--lake", default=None,
        help="result-lake catalog database: skip points any prior campaign "
        "computed and record new ones (see repro-lake)",
    )
    run.add_argument(
        "--perf", action="store_true",
        help="print plan/resume/compute/aggregate stage timings to stderr",
    )
    run.add_argument("--quiet", action="store_true", help="suppress progress logging")
    run.set_defaults(func=_cmd_run)

    plan = sub.add_parser("plan", help="print the expanded grid without running it")
    plan.add_argument("spec", help="path to a .yaml/.json campaign spec")
    plan.add_argument("--limit", type=int, default=None, help="cap the grid at N points")
    plan.set_defaults(func=_cmd_plan)

    report = sub.add_parser("report", help="re-render a campaign directory's results table")
    report.add_argument("out_dir", help="campaign output directory")
    report.add_argument("--format", choices=("md", "csv"), default="md")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (the ``repro-campaign`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
