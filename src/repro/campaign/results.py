"""Columnar results table aggregated from campaign run points.

Each completed grid point yields one flat row (axis values plus the
action's metrics); :class:`ResultsTable` holds the aggregate
column-wise, mirroring the columnar trace containers: one list per
column, equal lengths, order = plan order.  The table round-trips
losslessly through ``.npz`` (NumPy-native columns plus a JSON-encoded
fallback for mixed columns), renders to CSV and markdown for reports,
and compares exactly — the property the resume tests rely on
(interrupted-then-resumed must equal uninterrupted).
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["ResultsTable", "canonical_row_json"]


def canonical_row_json(row: Mapping[str, Any]) -> str:
    """One grid-point row as canonical (key-sorted, compact) JSON.

    This is the byte representation the result lake stores and compares
    — a live-recorded catalog and a ``--rescan`` rebuild must encode the
    same row to the same bytes, so everything that persists a row as
    JSON goes through here.
    """
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


class ResultsTable:
    """An ordered, columnar table of campaign results.

    Built from rows (:meth:`from_rows`); columns appear in
    first-encountered key order, and rows missing a column hold
    ``None`` there.
    """

    def __init__(self, columns: dict[str, list[Any]]) -> None:
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns: {lengths}")
        self.columns: dict[str, list[Any]] = {k: list(v) for k, v in columns.items()}

    # -- construction --------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]]) -> "ResultsTable":
        """Assemble a table from dict rows (column order = key order)."""
        names: list[str] = []
        for row in rows:
            for key in row:
                if key not in names:
                    names.append(key)
        columns: dict[str, list[Any]] = {name: [] for name in names}
        for row in rows:
            for name in names:
                columns[name].append(row.get(name))
        return cls(columns)

    # -- access --------------------------------------------------------

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultsTable):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        return f"ResultsTable({len(self)} rows x {len(self.columns)} columns)"

    def column(self, name: str) -> list[Any]:
        """One column as a list (plan order)."""
        return list(self.columns[name])

    def rows(self) -> list[dict[str, Any]]:
        """The table as dict rows (plan order)."""
        names = list(self.columns)
        return [
            {name: self.columns[name][i] for name in names} for i in range(len(self))
        ]

    def quarantined(self) -> "ResultsTable":
        """Only the quarantined rows (empty table when there are none)."""
        if "status" not in self.columns:
            return ResultsTable({name: [] for name in self.columns})
        return self.select(status="quarantined")

    def without_quarantined(self) -> "ResultsTable":
        """The table minus quarantined rows *and* their marker columns.

        Quarantine adds ``status``/``error``/``attempts`` keys that only
        quarantined rows carry; once those rows are dropped the marker
        columns are all-``None`` noise, so they are dropped too.  The
        result of a disturbed-but-recovered campaign therefore compares
        equal (``==``, column-for-column) to an undisturbed run's table
        — the chaos harness's oracle property.
        """
        if "status" not in self.columns:
            return ResultsTable(self.columns)
        keep = [
            i for i in range(len(self)) if self.columns["status"][i] != "quarantined"
        ]
        pruned = {
            name: [values[i] for i in keep] for name, values in self.columns.items()
        }
        for marker in ("status", "error", "attempts"):
            values = pruned.get(marker)
            if values is not None and all(v is None for v in values):
                del pruned[marker]
        return ResultsTable(pruned)

    def select(self, **conditions: Any) -> "ResultsTable":
        """Rows whose columns equal every given value (exact match)."""
        keep = [
            i
            for i in range(len(self))
            if all(self.columns[k][i] == v for k, v in conditions.items())
        ]
        return ResultsTable(
            {name: [values[i] for i in keep] for name, values in self.columns.items()}
        )

    # -- rendering -----------------------------------------------------

    @staticmethod
    def _cell(value: Any) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            if value != value or value in (float("inf"), float("-inf")):
                return str(value)
            if value == int(value) and abs(value) < 1e15:
                return f"{value:.1f}"
            return f"{value:.6g}"
        return str(value)

    def to_csv(self, path: str | Path | None = None) -> str:
        """CSV text (and write it to ``path`` when given)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(list(self.columns))
        for row in self.rows():
            writer.writerow([self._cell(v) for v in row.values()])
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_markdown(self) -> str:
        """A GitHub-flavoured markdown table of the results."""
        names = list(self.columns)
        if not names:
            return "(empty table)"
        lines = [
            "| " + " | ".join(names) + " |",
            "| " + " | ".join("---" for _ in names) + " |",
        ]
        for row in self.rows():
            lines.append("| " + " | ".join(self._cell(v) for v in row.values()) + " |")
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------

    def save_npz(self, path: str | Path) -> None:
        """Persist column-wise to a ``.npz`` file.

        Numeric and string columns are stored as native NumPy arrays;
        columns with ``None`` or mixed types fall back to per-cell JSON
        strings.  :meth:`load_npz` restores the exact Python values.
        """
        arrays: dict[str, np.ndarray] = {}
        for name, values in self.columns.items():
            if all(isinstance(v, bool) for v in values):
                arrays[f"b:{name}"] = np.asarray(values, dtype=bool)
            elif all(isinstance(v, int) and not isinstance(v, bool) for v in values):
                arrays[f"i:{name}"] = np.asarray(values, dtype=np.int64)
            elif all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
                arrays[f"f:{name}"] = np.asarray(values, dtype=np.float64)
            elif all(isinstance(v, str) for v in values):
                arrays[f"s:{name}"] = np.asarray(values, dtype=np.str_)
            else:
                arrays[f"j:{name}"] = np.asarray(
                    [json.dumps(v, sort_keys=True) for v in values], dtype=np.str_
                )
        arrays["order"] = np.asarray(list(self.columns), dtype=np.str_)
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(target, **arrays)

    @classmethod
    def load_npz(cls, path: str | Path) -> "ResultsTable":
        """Load a table previously written by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as data:
            order = [str(name) for name in data["order"]]
            decoded: dict[str, list[Any]] = {}
            for stored in data.files:
                if stored == "order":
                    continue
                tag, name = stored.split(":", 1)
                values = data[stored]
                if tag == "b":
                    decoded[name] = [bool(v) for v in values]
                elif tag == "i":
                    decoded[name] = [int(v) for v in values]
                elif tag == "f":
                    decoded[name] = [float(v) for v in values]
                elif tag == "s":
                    decoded[name] = [str(v) for v in values]
                else:
                    decoded[name] = [json.loads(str(v)) for v in values]
        return cls({name: decoded[name] for name in order})
