"""Declarative campaign specifications and their YAML/JSON loaders.

A campaign is described by data, not code: which **action** to run
(``reconstruct``, ``idle``, ``target_diff``, ``method_gap``), across
which **axes** (workloads x devices x methods x trace sizes), with
which shared **options**.  The cross-product of the axes — minus
anything matched by ``exclude`` filters, capped by ``limit`` — is the
campaign's plan (:mod:`~repro.campaign.plan`).

Specs round-trip through plain dicts (:meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict`), which is what lets the engine ship
them to worker processes and the CLI load them from ``.yaml`` /
``.json`` files.  YAML support is gated on :mod:`yaml` being
importable; JSON always works.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

__all__ = ["ACTIONS", "CampaignSpec", "DeviceSpec", "load_spec", "loads_spec"]

#: The actions the engine knows how to run at a grid point.
ACTIONS: tuple[str, ...] = ("reconstruct", "idle", "target_diff", "method_gap", "synthetic")


@dataclass(frozen=True)
class DeviceSpec:
    """A named device description inside a campaign.

    ``kind`` is a registry kind or preset name
    (:mod:`~repro.campaign.devices`); ``params`` hold every other
    constructor knob.  The spec is pure data — :meth:`build` resolves
    it to a fresh simulator instance (devices are stateful, so every
    use site builds its own).
    """

    name: str
    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def build(self):
        """A fresh :class:`~repro.storage.device.StorageDevice`."""
        from .devices import build_device

        return build_device(self.kind, self.params)

    def to_dict(self) -> dict[str, Any]:
        """Flat dict form (``name``/``kind`` plus the parameter knobs)."""
        return {"name": self.name, "kind": self.kind, **self.params}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "DeviceSpec":
        """Parse a device entry.

        Accepts the flat dict form or a bare preset/kind string
        (``"new-node"``), whose name defaults to the kind.
        """
        if isinstance(data, str):
            return cls(name=data, kind=data)
        entry = dict(data)
        kind = entry.pop("kind", None)
        name = entry.pop("name", kind)
        if kind is None:
            kind = name
        if name is None:
            raise ValueError(f"device entry needs a 'kind' or 'name': {data!r}")
        return cls(name=str(name), kind=str(kind), params=entry)


def _device_tuple(entries: Sequence[Mapping[str, Any] | str | DeviceSpec]) -> tuple[DeviceSpec, ...]:
    out = []
    for entry in entries:
        out.append(entry if isinstance(entry, DeviceSpec) else DeviceSpec.from_dict(entry))
    names = [d.name for d in out]
    if len(set(names)) != len(names):
        raise ValueError(f"device names must be unique, got {names}")
    return tuple(out)


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative device x workload sweep.

    Attributes
    ----------
    name:
        Campaign identifier (used for default output locations).
    action:
        What to compute at each grid point; one of :data:`ACTIONS`.
    workloads:
        Workload axis — catalog names, ``"family:FIU"``-style
        selectors, or ``"all"`` (resolved at planning time).
    devices:
        Device axis.  For ``reconstruct``/``target_diff``/
        ``method_gap`` these are reconstruction *targets*; for
        ``idle`` they are the collection devices.
    source_device:
        The OLD collection node used by pair-building actions.
    methods:
        Reconstruction-method axis; strings such as ``tracetracker``,
        ``revision``, ``dynamic``, ``acceleration:100``,
        ``fixed-th:10000`` (threshold in µs).
    n_requests:
        Trace-size axis.
    options:
        Action-specific knobs shared by every point (e.g.
        ``min_idle_us`` for ``idle``, ``device_times`` for collection).
    exclude:
        Partial-match filters; a grid point matching *all* keys of any
        entry (``workload``/``device``/``method``/``n_requests``) is
        dropped.
    limit:
        Keep only the first N points of the expansion (smoke runs).
    description:
        Free-form documentation carried into reports.
    """

    name: str
    action: str = "reconstruct"
    workloads: tuple[str, ...] = ("MSNFS",)
    devices: tuple[DeviceSpec, ...] = (DeviceSpec(name="new-node", kind="new-node"),)
    source_device: DeviceSpec = DeviceSpec(name="old-node", kind="old-node")
    methods: tuple[str, ...] = ("tracetracker",)
    n_requests: tuple[int, ...] = (4_000,)
    options: dict[str, Any] = field(default_factory=dict)
    exclude: tuple[dict[str, Any], ...] = ()
    limit: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown action {self.action!r}; known actions: {list(ACTIONS)}")
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.devices:
            raise ValueError("campaign needs at least one device")
        if not self.methods:
            raise ValueError("campaign needs at least one method")
        if not self.n_requests or any(n <= 0 for n in self.n_requests):
            raise ValueError("n_requests axis must be positive")
        if self.limit is not None and self.limit <= 0:
            raise ValueError("limit must be positive (or omitted)")
        # Device descriptions are checked up front — an unknown kind or
        # a fault parameter on a kind that does not support it must be
        # rejected when the spec is loaded, not mid-sweep.
        from .devices import validate_device_description

        for device in (*self.devices, self.source_device):
            validate_device_description(device.kind, device.params)

    def with_limit(self, limit: int | None) -> "CampaignSpec":
        """Copy with a different point cap (CLI smoke-run override)."""
        return replace(self, limit=limit)

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-able dict form; ``from_dict`` round-trips it exactly."""
        return {
            "name": self.name,
            "action": self.action,
            "description": self.description,
            "workloads": list(self.workloads),
            "devices": [d.to_dict() for d in self.devices],
            "source_device": self.source_device.to_dict(),
            "methods": list(self.methods),
            "n_requests": list(self.n_requests),
            "options": dict(self.options),
            "exclude": [dict(e) for e in self.exclude],
            "limit": self.limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from the dict form (as loaded from YAML/JSON)."""
        entry = dict(data)
        unknown = set(entry) - {
            "name", "action", "description", "workloads", "devices", "source_device",
            "methods", "n_requests", "options", "exclude", "limit",
        }
        if unknown:
            raise ValueError(f"unknown campaign spec field(s): {sorted(unknown)}")
        if "name" not in entry:
            raise ValueError("campaign spec needs a 'name'")
        workloads = entry.get("workloads", ["MSNFS"])
        if isinstance(workloads, str):
            workloads = [workloads]
        n_requests = entry.get("n_requests", [4_000])
        if isinstance(n_requests, int):
            n_requests = [n_requests]
        methods = entry.get("methods", ["tracetracker"])
        if isinstance(methods, str):
            methods = [methods]
        return cls(
            name=str(entry["name"]),
            action=str(entry.get("action", "reconstruct")),
            description=str(entry.get("description", "")),
            workloads=tuple(str(w) for w in workloads),
            devices=_device_tuple(entry.get("devices", ["new-node"])),
            source_device=DeviceSpec.from_dict(entry.get("source_device", "old-node")),
            methods=tuple(str(m) for m in methods),
            n_requests=tuple(int(n) for n in n_requests),
            options=dict(entry.get("options", {}) or {}),
            exclude=tuple(dict(e) for e in entry.get("exclude", []) or []),
            limit=entry.get("limit"),
        )


def loads_spec(text: str) -> CampaignSpec:
    """Parse a campaign spec from YAML (when available) or JSON text."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - yaml is present in the dev image
        yaml = None
    if yaml is not None:
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                "PyYAML is not installed and the spec is not valid JSON; "
                "install pyyaml or provide a .json spec"
            ) from exc
    if not isinstance(data, Mapping):
        raise ValueError(f"campaign spec must be a mapping, got {type(data).__name__}")
    return CampaignSpec.from_dict(data)


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec from a ``.yaml``/``.yml``/``.json`` file."""
    return loads_spec(Path(path).read_text(encoding="utf-8"))
