"""Fault-tolerant campaign execution: supervision, retries, quarantine, chaos.

The campaign engine's original failure model was "a grid point raises →
the campaign raises" and "a worker dies → the pool raises".  At the
ROADMAP's production scale (10^4+ points, long wall-clocks, shared
lake databases) that is not a model, it is an outage.  This module is
the resilience substrate threaded through
:class:`~repro.campaign.engine.CampaignEngine`:

- **error taxonomy + retry policy** — :func:`classify_error` splits
  point failures into *transient* (I/O hiccups, timeouts, locked
  databases — worth retrying) and *permanent* (type/value/assertion
  errors — retrying reruns the same bug).  :class:`RetryPolicy` turns
  transient failures into bounded exponential backoff with
  *deterministic* jitter (hashed from the run key and attempt number,
  so reruns sleep the same schedule and tests need no randomness
  control).  Both now live in :mod:`repro.resilience` — shared with
  the streaming service — and are re-exported here so historical
  import paths keep working.
- **per-point wall-clock timeouts** — :func:`time_limit` arms a real
  interval timer around each point; a hung computation raises
  :class:`PointTimeout` (transient) instead of stalling its worker
  forever.
- **poison-point quarantine** — :func:`run_point_resilient` retries a
  point through its policy and, when attempts are exhausted (or the
  failure is permanent), returns a *quarantine row* — ``status:
  "quarantined"`` plus the error and attempt count — instead of
  raising.  The row is checkpointed like any result, so a poison point
  costs its retries exactly once per campaign directory and never
  sinks the run.
- **worker supervision** — :class:`SupervisedExecutor` replaces the
  bare process pool for the ``supervised`` scheduler: every worker
  process owns a heartbeat file it touches at each point boundary; the
  supervisor loop in the parent detects dead workers (SIGKILL, OOM
  kill) and hung workers (stale heartbeat past a deadline), reclaims
  their leased chunks back onto the queue (salvaging any points the
  dead worker already checkpointed), and respawns workers up to a
  budget.
- **chaos harness** — :class:`ChaosSpec` describes deterministic fault
  injections (``kill@3,hang@5,exc@2,poison@7,corrupt@4`` — kind at
  plan index) that :class:`ChaosInjector` fires from inside the
  workers, exactly once each (claimed through ``O_EXCL`` marker
  files), so ``tests/chaos`` can assert a disturbed campaign's results
  are bit-identical to an undisturbed oracle's.

Everything here is dependency-free and deliberately synchronous: the
supervisor is a poll loop, heartbeats are file mtimes, leases are a
dict in the parent.  Plain mechanisms survive the failure modes they
monitor.
"""

from __future__ import annotations

import os
import queue
import signal
import time
from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..resilience import (
    PermanentPointError,
    PointTimeout,
    RetryPolicy,
    TransientPointError,
    classify_error,
    heartbeat_age_s,
    retry_call,
    time_limit,
    write_heartbeat,
)

__all__ = [
    "CHAOS_KINDS",
    "QUARANTINED",
    "ChaosError",
    "ChaosSpec",
    "ChaosInjector",
    "PermanentPointError",
    "PointTimeout",
    "Resilience",
    "RetryPolicy",
    "SupervisedExecutor",
    "SupervisionError",
    "TransientPointError",
    "classify_error",
    "heartbeat_age_s",
    "quarantine_row",
    "retry_call",
    "run_point_resilient",
    "time_limit",
    "write_heartbeat",
]

#: The ``status`` value a quarantined point's row carries.
QUARANTINED = "quarantined"

#: Row keys only quarantined points carry (normal rows never set them).
QUARANTINE_COLUMNS = ("status", "error", "attempts")


# ----------------------------------------------------------------------
# Campaign-specific error types
# ----------------------------------------------------------------------


class ChaosError(TransientPointError):
    """An injected transient failure (the chaos harness's ``exc`` kind)."""


class SupervisionError(RuntimeError):
    """The supervisor ran out of workers/respawns with work still pending."""


# ----------------------------------------------------------------------
# Chaos injection
# ----------------------------------------------------------------------

#: Injection kinds the harness understands, and where they fire:
#:
#: - ``exc``     — raise a transient :class:`ChaosError` once, before
#:   the point computes (the retry path must absorb it);
#: - ``poison``  — raise a transient error on *every* attempt (the
#:   quarantine path must absorb it);
#: - ``kill``    — ``SIGKILL`` the worker process once, before the
#:   point computes (the supervisor must reclaim and respawn);
#: - ``hang``    — sleep far past every deadline once (the point
#:   timeout or the supervisor's heartbeat deadline must fire);
#: - ``corrupt`` — truncate the point's checkpoint file right after it
#:   is written (the resume scan must tolerate and recompute).
CHAOS_KINDS = ("exc", "poison", "kill", "hang", "corrupt")

#: How long an injected hang sleeps; far beyond any sane deadline.
_HANG_SLEEP_S = 3600.0


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic fault-injection schedule over plan indices."""

    injections: tuple[tuple[str, int], ...] = ()

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse ``"kill@3,hang@5,exc@2"`` (kind ``@`` plan index)."""
        out: list[tuple[str, int]] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            kind, sep, index = part.partition("@")
            kind = kind.strip().lower()
            if not sep or kind not in CHAOS_KINDS:
                raise ValueError(
                    f"bad chaos injection {part!r}; use kind@index with kind in {CHAOS_KINDS}"
                )
            out.append((kind, int(index)))
        return cls(injections=tuple(out))

    def to_text(self) -> str:
        """The canonical ``kind@index,...`` form (round-trips parse)."""
        return ",".join(f"{kind}@{index}" for kind, index in self.injections)

    def at(self, index: int) -> list[str]:
        """Every injection kind scheduled at one plan index."""
        return [kind for kind, i in self.injections if i == index]


class ChaosInjector:
    """Worker-side firing of a :class:`ChaosSpec`.

    One-shot kinds (``exc``/``kill``/``hang``/``corrupt``) are claimed
    through ``O_EXCL`` marker files under a directory shared by every
    worker, so each fires exactly once per campaign directory no matter
    how many processes race past it — which is what makes the recovery
    deterministic enough to compare bit-for-bit against an oracle run.
    ``poison`` fires on every attempt by design.
    """

    def __init__(self, spec: ChaosSpec, markers_dir: str | Path) -> None:
        self.spec = spec
        self.markers_dir = Path(markers_dir)

    def _claim(self, kind: str, index: int) -> bool:
        """True exactly once per (kind, index) across all processes."""
        self.markers_dir.mkdir(parents=True, exist_ok=True)
        path = self.markers_dir / f"{kind}-{index}.fired"
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        os.write(fd, str(os.getpid()).encode())
        os.close(fd)
        return True

    def before_point(self, index: int) -> None:
        """Fire any pre-compute injections scheduled at ``index``."""
        for kind in self.spec.at(index):
            if kind == "poison":
                raise ChaosError(f"injected poison at point {index}")
            if kind == "exc" and self._claim(kind, index):
                raise ChaosError(f"injected transient failure at point {index}")
            if kind == "kill" and self._claim(kind, index):
                os.kill(os.getpid(), signal.SIGKILL)
            if kind == "hang" and self._claim(kind, index):
                time.sleep(_HANG_SLEEP_S)

    def after_checkpoint(self, index: int, checkpoint: Path | None) -> None:
        """Fire any post-checkpoint injections scheduled at ``index``.

        ``corrupt`` truncates the checkpoint file to half its size —
        tearing the final line of a segment, or leaving a ``<key>.json``
        undecodable — which is exactly the damage a crash mid-write (or
        a bad disk) leaves behind.
        """
        if checkpoint is None:
            return
        for kind in self.spec.at(index):
            if kind == "corrupt" and self._claim(kind, index):
                try:
                    size = checkpoint.stat().st_size
                    with open(checkpoint, "r+b") as handle:
                        handle.truncate(max(size // 2, 1))
                except OSError:
                    pass


# ----------------------------------------------------------------------
# Resilient point execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Resilience:
    """The engine's per-point fault-handling configuration.

    ``None`` anywhere in the engine means the historical behaviour
    (raise through); a :class:`Resilience` means retry + quarantine.
    ``chaos_dir`` is resolved by the engine (markers live next to the
    checkpoints) so workers reconstruct an identical injector.
    """

    retry: RetryPolicy = RetryPolicy()
    point_timeout_s: float | None = None
    chaos: ChaosSpec | None = None
    chaos_dir: str | None = None

    def injector(self) -> ChaosInjector | None:
        """This configuration's chaos injector (``None`` when chaos-free)."""
        if self.chaos is None or not self.chaos.injections or self.chaos_dir is None:
            return None
        return ChaosInjector(self.chaos, self.chaos_dir)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (ships to worker processes in the context)."""
        return {
            "retry": self.retry.to_dict(),
            "point_timeout_s": self.point_timeout_s,
            "chaos": self.chaos.to_text() if self.chaos is not None else None,
            "chaos_dir": self.chaos_dir,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Resilience":
        """Rebuild a configuration from :meth:`to_dict` output."""
        chaos = data.get("chaos")
        return cls(
            retry=RetryPolicy.from_dict(data["retry"]),
            point_timeout_s=data.get("point_timeout_s"),
            chaos=ChaosSpec.parse(chaos) if chaos else None,
            chaos_dir=data.get("chaos_dir"),
        )


def quarantine_row(
    axis_values: dict[str, Any], exc: BaseException, attempts: int
) -> dict[str, Any]:
    """The result row recorded for a point that exhausted its retries.

    Carries the point's axis values (so the table stays rectangular and
    filterable), a ``status`` marker, the final error rendered as
    ``Type: message`` (truncated — checkpoints are not log files), and
    the attempt count.
    """
    row = dict(axis_values)
    message = f"{type(exc).__name__}: {exc}"
    row["status"] = QUARANTINED
    row["error"] = message[:500]
    row["attempts"] = attempts
    return row


def run_point_resilient(
    run_point_fn: Callable[[Any, Any], dict[str, Any]],
    spec: Any,
    point: Any,
    index: int,
    key: str,
    resilience: Resilience,
    injector: ChaosInjector | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[dict[str, Any], bool]:
    """Run one grid point under the full fault-handling policy.

    Returns ``(row, quarantined)``.  Transient failures retry with the
    policy's backoff; permanent failures, and transient ones that
    exhaust ``max_attempts``, quarantine — the returned row is the
    :func:`quarantine_row` and ``quarantined`` is ``True``.
    ``KeyboardInterrupt``/``SystemExit`` always propagate (the operator
    outranks the policy).  ``sleep`` is injectable for deterministic
    tests.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            if injector is not None:
                injector.before_point(index)
            with time_limit(resilience.point_timeout_s):
                return run_point_fn(spec, point), False
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - the taxonomy decides
            if (
                classify_error(exc) == "permanent"
                or attempts >= resilience.retry.max_attempts
            ):
                return quarantine_row(point.axis_values(), exc, attempts), True
            sleep(resilience.retry.delay_s(key, attempts - 1))


# ----------------------------------------------------------------------
# Supervised execution
# ----------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side state of one supervised worker process."""

    __slots__ = ("worker_id", "process", "task_queue", "heartbeat", "lease")

    def __init__(self, worker_id: int, process: Any, task_queue: Any, heartbeat: Path) -> None:
        self.worker_id = worker_id
        self.process = process
        self.task_queue = task_queue
        self.heartbeat = heartbeat
        self.lease: int | None = None  # chunk id currently leased, if any


def _supervised_worker_main(
    worker_id: int,
    heartbeat: Path,
    task_queue: Any,
    result_queue: Any,
    worker_fn: Callable[[Any, list[Any]], list[Any]],
    context: Any,
    initializer: Callable[[], None] | None,
) -> None:
    """Worker process body: beat, pull a chunk lease, run it point-wise.

    Each chunk item runs through ``worker_fn`` individually with a beat
    after every item, so the heartbeat's staleness bounds *point* (not
    chunk) duration and a mid-chunk death loses at most the in-flight
    point.  A ``None`` lease is the shutdown sentinel.
    """
    if initializer is not None:
        initializer()
    write_heartbeat(heartbeat)
    while True:
        message = task_queue.get()
        if message is None:
            return
        chunk_id, items = message
        write_heartbeat(heartbeat)
        out: list[Any] = []
        for item in items:
            out.extend(worker_fn(context, [item]))
            write_heartbeat(heartbeat)
        result_queue.put((worker_id, chunk_id, out))


class SupervisedExecutor:
    """A self-healing process pool: leases, heartbeats, reclaim, respawn.

    Parameters
    ----------
    jobs:
        Worker processes to keep alive (subject to the respawn budget).
    worker_fn:
        ``worker_fn(context, [item]) -> list[result]`` — the campaign
        engine passes its chunk worker; called one item at a time so
        heartbeats track point boundaries.
    context:
        Opaque per-run state handed to every ``worker_fn`` call
        (workers inherit it by fork; nothing is pickled).
    hearts_dir:
        Directory for the per-worker heartbeat files.
    hang_timeout_s:
        A leased worker whose heartbeat is older than this is declared
        hung, SIGKILLed, and its chunk reclaimed.  Must exceed the
        worst legitimate single-point wall time.
    respawn_budget:
        Total replacement workers the run may spawn; exhausted + no
        live workers + pending work raises :class:`SupervisionError`.
    reclaim:
        ``reclaim(items) -> (salvaged, remaining)`` called when a
        worker's lease is reclaimed: ``salvaged`` results (e.g. points
        the dead worker already checkpointed) merge straight into the
        output; ``remaining`` items are re-queued.  Defaults to
        recomputing the whole chunk.
    initializer:
        Optional per-worker setup (the engine installs the shared
        trace store here).
    poll_s:
        Supervisor loop cadence: how often results are drained and
        health is checked.
    """

    def __init__(
        self,
        jobs: int,
        worker_fn: Callable[[Any, list[Any]], list[Any]],
        context: Any,
        hearts_dir: str | Path,
        hang_timeout_s: float = 30.0,
        respawn_budget: int | None = None,
        reclaim: Callable[[list[Any]], tuple[list[Any], list[Any]]] | None = None,
        initializer: Callable[[], None] | None = None,
        poll_s: float = 0.1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.worker_fn = worker_fn
        self.context = context
        self.hearts_dir = Path(hearts_dir)
        self.hang_timeout_s = hang_timeout_s
        self.respawn_budget = respawn_budget if respawn_budget is not None else 2 * jobs
        self.reclaim = reclaim
        self.initializer = initializer
        self.poll_s = poll_s
        #: Counters exposed for reporting/tests: deaths seen, hangs
        #: seen, workers respawned, chunks reclaimed, points salvaged.
        self.stats: dict[str, int] = {
            "dead": 0, "hung": 0, "respawned": 0, "reclaimed": 0, "salvaged": 0,
        }

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, ctx: Any, result_queue: Any, worker_id: int) -> _WorkerHandle:
        task_queue = ctx.Queue()
        heartbeat = self.hearts_dir / f"worker-{worker_id}.hb"
        heartbeat.unlink(missing_ok=True)
        process = ctx.Process(
            target=_supervised_worker_main,
            args=(
                worker_id, heartbeat, task_queue, result_queue,
                self.worker_fn, self.context, self.initializer,
            ),
            daemon=True,
        )
        process.start()
        return _WorkerHandle(worker_id, process, task_queue, heartbeat)

    @staticmethod
    def _kill(worker: _WorkerHandle) -> None:
        try:
            worker.process.kill()
        except (OSError, ValueError):
            pass
        worker.process.join(timeout=5.0)
        worker.task_queue.close()

    # -- the supervisor loop -------------------------------------------

    def run(self, chunks: list[list[Any]]) -> Iterable[list[Any]]:
        """Execute every chunk under supervision; yields result payloads.

        Output order is completion order (the campaign engine merges by
        run key, so ordering is immaterial).  Raises
        :class:`SupervisionError` only when every worker is gone, the
        respawn budget is spent, and work is still pending — by which
        point everything completed is already checkpointed by the
        worker function itself.
        """
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.hearts_dir.mkdir(parents=True, exist_ok=True)
        result_queue = ctx.Queue()
        chunk_items: dict[int, list[Any]] = dict(enumerate(chunks))
        pending: deque[int] = deque(chunk_items)
        closed: set[int] = set()
        next_chunk_id = len(chunks)
        workers: dict[int, _WorkerHandle] = {}
        next_worker_id = 0
        respawns_left = self.respawn_budget
        for _ in range(min(self.jobs, max(1, len(chunks)))):
            workers[next_worker_id] = self._spawn(ctx, result_queue, next_worker_id)
            next_worker_id += 1
        try:
            while len(closed) < len(chunk_items):
                # Dispatch pending chunks to idle, live workers.
                for worker in workers.values():
                    if not pending:
                        break
                    if worker.lease is None and worker.process.is_alive():
                        chunk_id = pending.popleft()
                        worker.lease = chunk_id
                        worker.task_queue.put((chunk_id, chunk_items[chunk_id]))
                # Drain one completion (or time out into a health check).
                try:
                    worker_id, chunk_id, payload = result_queue.get(timeout=self.poll_s)
                except queue.Empty:
                    pass
                else:
                    worker = workers.get(worker_id)
                    if worker is not None and worker.lease == chunk_id:
                        worker.lease = None
                    if chunk_id not in closed:
                        closed.add(chunk_id)
                        yield payload
                    continue  # dispatch freed workers before health checks
                # Health-check every worker; reclaim leases of the lost.
                now = time.time()
                for worker_id in list(workers):
                    worker = workers[worker_id]
                    alive = worker.process.is_alive()
                    if worker.lease is None:
                        if not alive:
                            self.stats["dead"] += 1
                            del workers[worker_id]
                        continue
                    hung = alive and heartbeat_age_s(worker.heartbeat, now) > self.hang_timeout_s
                    if alive and not hung:
                        continue
                    self.stats["hung" if hung else "dead"] += 1
                    self._kill(worker)
                    del workers[worker_id]
                    lease = worker.lease
                    if lease in closed:
                        continue  # its result landed before the death was seen
                    items = chunk_items[lease]
                    salvaged, remaining = (
                        self.reclaim(items) if self.reclaim is not None else ([], list(items))
                    )
                    self.stats["reclaimed"] += 1
                    self.stats["salvaged"] += len(salvaged)
                    closed.add(lease)
                    if salvaged:
                        yield salvaged
                    if remaining:
                        chunk_items[next_chunk_id] = remaining
                        pending.append(next_chunk_id)
                        next_chunk_id += 1
                    if respawns_left > 0:
                        workers[next_worker_id] = self._spawn(
                            ctx, result_queue, next_worker_id
                        )
                        next_worker_id += 1
                        respawns_left -= 1
                        self.stats["respawned"] += 1
                if len(closed) < len(chunk_items) and not workers:
                    if respawns_left > 0:
                        workers[next_worker_id] = self._spawn(
                            ctx, result_queue, next_worker_id
                        )
                        next_worker_id += 1
                        respawns_left -= 1
                        self.stats["respawned"] += 1
                    else:
                        raise SupervisionError(
                            f"all workers lost with {len(chunk_items) - len(closed)} "
                            f"chunk(s) unfinished and the respawn budget "
                            f"({self.respawn_budget}) spent; completed points are "
                            f"checkpointed — rerun to resume"
                        )
        finally:
            for worker in workers.values():
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):
                    pass
            for worker in workers.values():
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    self._kill(worker)
            result_queue.close()
            result_queue.cancel_join_thread()
