"""Scenario campaign engine: declarative device x workload sweeps.

The paper's promise is that a reconstructed trace can be re-evaluated
against *any* storage configuration.  This package is the orchestration
layer that makes that practical at scale:

- :mod:`~repro.campaign.spec` — a declarative campaign description
  (:class:`CampaignSpec`), loadable from YAML/JSON, naming the device
  grid, the workload selection, the method and size axes, and the
  action to run at every grid point;
- :mod:`~repro.campaign.devices` — the device registry that turns a
  small parameter dict (``{"kind": "flash_array", "n_ssds": 2}``) into
  a concrete :class:`~repro.storage.device.StorageDevice`;
- :mod:`~repro.campaign.plan` — deterministic cross-product expansion
  into :class:`RunPoint` grid points with stable, content-derived run
  keys (the unit of checkpointing and resumption);
- :mod:`~repro.campaign.engine` — :class:`CampaignEngine`, which shards
  the plan across the experiment runner's process pool, checkpoints
  every completed run key to disk, and resumes interrupted campaigns
  without recomputing anything;
- :mod:`~repro.campaign.results` — :class:`ResultsTable`, the columnar
  aggregate consumed by the ``repro-campaign`` CLI and the reporting
  helpers;
- :mod:`~repro.campaign.supervise` — the fault-tolerance substrate:
  retry/backoff policies with a transient-vs-permanent error taxonomy,
  per-point wall-clock timeouts, poison-point quarantine, the
  heartbeat-and-lease :class:`SupervisedExecutor` behind the
  ``supervised`` scheduler, and the deterministic chaos-injection
  harness the ``tests/chaos`` suite drives.

The paper figures that sweep the workload catalog
(:func:`~repro.experiments.figures.fig13_intt_gap` and friends) are
defined *as* campaign specs, so a new scenario — a RAID-width scan, a
device grid, a queue-depth sweep — is a ten-line YAML file rather than
a new module.  See ``examples/*.yaml`` and ``docs/architecture.md``.
"""

from .devices import DEVICE_KINDS, DEVICE_PRESETS, build_device
from .engine import CampaignEngine, CampaignResult, run_campaign
from .plan import CampaignPlan, RunPoint, expand, run_key
from .results import ResultsTable
from .spec import CampaignSpec, DeviceSpec, load_spec, loads_spec
from .supervise import (
    ChaosSpec,
    PermanentPointError,
    PointTimeout,
    Resilience,
    RetryPolicy,
    SupervisedExecutor,
    SupervisionError,
    TransientPointError,
    classify_error,
)

__all__ = [
    "CampaignEngine",
    "CampaignPlan",
    "CampaignResult",
    "CampaignSpec",
    "ChaosSpec",
    "DEVICE_KINDS",
    "DEVICE_PRESETS",
    "DeviceSpec",
    "PermanentPointError",
    "PointTimeout",
    "Resilience",
    "ResultsTable",
    "RetryPolicy",
    "RunPoint",
    "SupervisedExecutor",
    "SupervisionError",
    "TransientPointError",
    "build_device",
    "classify_error",
    "expand",
    "load_spec",
    "loads_spec",
    "run_campaign",
    "run_key",
]
